//! Integration tests for the serve layer: the acceptance criteria of
//! the service determinism contract, cache correctness property tests,
//! and the single-flight concurrent-duplicate check.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;
use serve::workload::course_week;
use serve::{
    CacheEvent, CostSpec, JobSpec, MrWorkload, ReductionStyleSpec, ScheduleSpec, Service,
    ServiceConfig, Submission,
};

/// The headline acceptance criterion: the full course week — report
/// digests, dispatch orders and final cache state — is bit-identical
/// across 1/2/4/8 workers.
#[test]
fn course_week_is_bit_identical_across_worker_counts() {
    let week = course_week();
    let serve_all = |workers: usize| -> (Vec<u64>, Vec<Vec<usize>>, u64) {
        let service = Service::new(ServiceConfig::with_workers(workers));
        let mut digests = Vec::new();
        let mut dispatches = Vec::new();
        for day in &week {
            let report = service.run_batch(day);
            digests.push(report.digest());
            dispatches.push(report.dispatch.clone());
        }
        (digests, dispatches, service.cache_digest())
    };
    let reference = serve_all(1);
    for workers in [2, 4, 8] {
        assert_eq!(serve_all(workers), reference, "{workers} workers");
    }
}

/// The other headline criterion: the course-week cache hit rate
/// clears 50% (the workload's reuse structure actually gives ~89%).
#[test]
fn course_week_hit_rate_is_at_least_half() {
    let service = Service::new(ServiceConfig::default());
    let mut accepted = 0;
    let mut reused = 0;
    for day in course_week() {
        let report = service.run_batch(&day);
        accepted += report.stats.accepted;
        reused += report.stats.hits + report.stats.joins;
    }
    let rate = reused as f64 / accepted as f64;
    assert!(rate >= 0.5, "hit rate {rate:.3} below the acceptance bar");
}

/// Single-flight under real concurrency: eight threads submit the
/// same job through the live path at once; exactly one computes, the
/// rest join or hit, and every caller gets the same allocation.
#[test]
fn concurrent_duplicate_submissions_compute_once() {
    let service = Service::new(ServiceConfig::default());
    let spec = JobSpec::Replication {
        replicates: 2,
        num_students: 24,
        master_seed: 11,
        permutations: 200,
        bootstrap_reps: 150,
        section_permutations: 100,
    };
    let results: Vec<(Arc<serve::JobResult>, CacheEvent)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(|| service.call(&spec).expect("valid spec")))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    let stats = service.cache_stats();
    assert_eq!(
        stats.misses, 1,
        "exactly one computation claimed: {stats:?}"
    );
    assert_eq!(stats.hits + stats.joins, 7, "{stats:?}");
    let computed: Vec<_> = results
        .iter()
        .filter(|(_, ev)| *ev == CacheEvent::Computed)
        .collect();
    assert_eq!(computed.len(), 1);
    for (result, _) in &results {
        assert!(
            Arc::ptr_eq(result, &results[0].0),
            "all callers share one Arc"
        );
    }
}

/// Cache-hit byte-identity on the live path: a warm call returns the
/// payload AND the embedded metrics snapshot byte-for-byte equal to
/// the cold computation's.
#[test]
fn cache_hit_replays_the_cold_bytes_exactly() {
    let service = Service::new(ServiceConfig::default());
    let spec = JobSpec::MapReduce {
        workload: MrWorkload::InvertedIndex,
        docs: 10,
        seed: 5,
        map_workers: 3,
        reduce_workers: 2,
    };
    let (cold, ev_cold) = service.call(&spec).expect("valid");
    assert_eq!(ev_cold, CacheEvent::Computed);
    let (warm, ev_warm) = service.call(&spec).expect("valid");
    assert_eq!(ev_warm, CacheEvent::Hit);
    assert_eq!(cold.payload, warm.payload);
    assert_eq!(cold.metrics_json, warm.metrics_json);
    assert_eq!(cold.digest(), warm.digest());
}

fn loop_spec(fields: (u64, u8, u64, u64, u8, u32, u32)) -> JobSpec {
    let (iterations, cost_tag, a, b, sched_tag, chunk, threads) = fields;
    let cost = match cost_tag % 3 {
        0 => CostSpec::Uniform { cycles: a },
        1 => CostSpec::Linear { base: a, slope: b },
        _ => CostSpec::Alternating { even: a, odd: b },
    };
    let schedule = match sched_tag % 4 {
        0 => ScheduleSpec::StaticBlock,
        1 => ScheduleSpec::StaticChunk { chunk },
        2 => ScheduleSpec::Dynamic { chunk },
        _ => ScheduleSpec::Guided { min_chunk: chunk },
    };
    JobSpec::LoopSim {
        iterations,
        cost,
        schedule,
        threads,
    }
}

fn other_spec(fields: (u8, u64, u64, u32, u32)) -> JobSpec {
    let (tag, a, b, c, d) = fields;
    match tag % 4 {
        0 => JobSpec::ReductionSim {
            iterations: a,
            iter_cost: b,
            threads: c,
            style: match d % 3 {
                0 => ReductionStyleSpec::SerialCombine,
                1 => ReductionStyleSpec::Tree,
                _ => ReductionStyleSpec::AtomicPerIteration,
            },
        },
        1 => JobSpec::MapReduce {
            workload: match d % 3 {
                0 => MrWorkload::WordCount,
                1 => MrWorkload::InvertedIndex,
                _ => MrWorkload::Grep {
                    pattern: format!("p{a}"),
                },
            },
            docs: c,
            seed: b,
            map_workers: 1 + (a % 8) as u32,
            reduce_workers: 1 + (b % 8) as u32,
        },
        2 => JobSpec::Replication {
            replicates: c,
            num_students: d,
            master_seed: a,
            permutations: (b % 1_000) as u32,
            bootstrap_reps: (a % 1_000) as u32,
            section_permutations: (b % 500) as u32,
        },
        _ => JobSpec::Report {
            artefact: pbl_core::experiments::ARTEFACTS[(a % 20) as usize].to_string(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Digest injectivity over a generated spec space: any two specs
    /// that are structurally different have different canonical bytes
    /// and different digests; equal specs digest equally. (The
    /// encoding is injective by construction — tag bytes plus
    /// fixed-width fields — so a digest collision here would be an
    /// FNV collision over a few dozen bytes: astronomically unlikely
    /// and worth failing loudly on.)
    #[test]
    fn distinct_loop_specs_get_distinct_digests(
        a in (1u64..1_000_000, 0u8..3, 1u64..10_000, 0u64..10_000, 0u8..4, 1u32..512, 1u32..64),
        b in (1u64..1_000_000, 0u8..3, 1u64..10_000, 0u64..10_000, 0u8..4, 1u32..512, 1u32..64),
    ) {
        let (sa, sb) = (loop_spec(a), loop_spec(b));
        if sa == sb {
            prop_assert_eq!(sa.canonical_bytes(), sb.canonical_bytes());
            prop_assert_eq!(sa.digest(), sb.digest());
        } else {
            prop_assert_ne!(sa.canonical_bytes(), sb.canonical_bytes());
            prop_assert_ne!(sa.digest(), sb.digest());
        }
    }

    /// Cross-variant injectivity: specs from different engine families
    /// never collide with each other or with loop specs.
    #[test]
    fn distinct_variants_get_distinct_digests(
        l in (1u64..1_000_000, 0u8..3, 1u64..10_000, 0u64..10_000, 0u8..4, 1u32..512, 1u32..64),
        x in (0u8..4, 0u64..1_000_000, 0u64..1_000_000, 1u32..512, 1u32..512),
        y in (0u8..4, 0u64..1_000_000, 0u64..1_000_000, 1u32..512, 1u32..512),
    ) {
        let (sl, sx, sy) = (loop_spec(l), other_spec(x), other_spec(y));
        prop_assert_ne!(sl.digest(), sx.digest());
        if sx == sy {
            prop_assert_eq!(sx.digest(), sy.digest());
        } else {
            prop_assert_ne!(sx.canonical_bytes(), sy.canonical_bytes());
            prop_assert_ne!(sx.digest(), sy.digest());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cache-hit byte-identity as a property: for any batch of small
    /// loop jobs, serving it twice yields results byte-identical to a
    /// cold recompute on a cache-less service — payloads and embedded
    /// metrics snapshots both.
    #[test]
    fn cache_hits_are_byte_identical_to_cold_recomputes(
        jobs in prop::collection::vec(
            (100u64..3_000, 0u8..3, 1u64..200, 0u64..50, 0u8..4, 1u32..64, 1u32..8),
            1..8,
        ),
    ) {
        let subs: Vec<Submission> = jobs
            .iter()
            .enumerate()
            .map(|(i, &f)| Submission::new(i as u32 % 3, 1 + i as u32 % 2, loop_spec(f)))
            .collect();
        let cached = Service::new(ServiceConfig::default());
        let first = cached.run_batch(&subs);
        let second = cached.run_batch(&subs);
        prop_assert_eq!(second.stats.computed, 0, "second pass must be all hits");
        let cold = Service::new(ServiceConfig::baseline(2));
        let cold_report = cold.run_batch(&subs);
        for (warm, cold) in second.outcomes.iter().zip(&cold_report.outcomes) {
            match (warm, cold) {
                (serve::JobOutcome::Done(w), serve::JobOutcome::Done(c)) => {
                    prop_assert_eq!(&w.result.payload, &c.result.payload);
                    prop_assert_eq!(&w.result.metrics_json, &c.result.metrics_json);
                    prop_assert_eq!(w.result.digest(), c.result.digest());
                }
                _ => prop_assert!(false, "all submissions valid, none should reject"),
            }
        }
        // And the first pass's computed results are what got cached.
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            match (a, b) {
                (serve::JobOutcome::Done(x), serve::JobOutcome::Done(y)) => {
                    prop_assert_eq!(x.result.digest(), y.result.digest());
                }
                _ => prop_assert!(false, "unexpected rejection"),
            }
        }
    }
}

/// The workload's unique-spec structure survives a serve pass: jobs
/// computed across the week equal the number of distinct digests.
#[test]
fn computed_jobs_equal_distinct_digests() {
    let week = course_week();
    let unique: HashSet<u64> = week.iter().flatten().map(|s| s.spec.digest()).collect();
    let service = Service::new(ServiceConfig::default());
    let computed: u64 = week
        .iter()
        .map(|day| service.run_batch(day).stats.computed)
        .sum();
    assert_eq!(computed, unique.len() as u64);
}

// ---------------------------------------------------------------
// Cluster layer: consistent-hash ring properties and the semester
// determinism matrix.
// ---------------------------------------------------------------

use serve::cluster::{self, Cluster, ClusterConfig, HashRing};
use serve::workload::SemesterConfig;

/// Ring balance: 20k keys over 8 shards land within ±20% of uniform
/// for every shard — the virtual nodes do their smoothing job.
#[test]
fn ring_distributes_keys_within_twenty_percent_of_uniform() {
    const KEYS: u64 = 20_000;
    const SHARDS: u32 = 8;
    let ring = HashRing::new(SHARDS, 128);
    let mut counts = [0u64; SHARDS as usize];
    for key in 0..KEYS {
        // Spread the sample over the keyspace the way real route keys
        // are: digests, not consecutive integers.
        counts[ring.route(key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize] += 1;
    }
    let uniform = KEYS as f64 / SHARDS as f64;
    for (shard, &count) in counts.iter().enumerate() {
        let ratio = count as f64 / uniform;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "shard {shard} holds {count} of {KEYS} keys ({ratio:.3}x uniform)"
        );
    }
}

/// Ring monotonicity: growing N shards to N+1 remaps only keys that
/// now belong to the new shard — nothing shuffles between survivors —
/// and the remapped share is ~1/(N+1) of the sample.
#[test]
fn ring_growth_remaps_about_one_nth_of_keys_to_the_new_shard_only() {
    const KEYS: u64 = 20_000;
    let keys: Vec<u64> = (0..KEYS)
        .map(|k| k.wrapping_mul(0x2545_F491_4F6C_DD1D))
        .collect();
    for shards in 1u32..=7 {
        let before = HashRing::new(shards, 128);
        let after = HashRing::new(shards + 1, 128);
        let mut remapped = 0u64;
        for &key in &keys {
            let old = before.route(key);
            let new = after.route(key);
            if old != new {
                assert_eq!(
                    new, shards,
                    "key {key:#x} moved between surviving shards {old}->{new}"
                );
                remapped += 1;
            }
        }
        let expected = KEYS as f64 / (shards + 1) as f64;
        let ratio = remapped as f64 / expected;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "{shards}->{} shards remapped {remapped} keys ({ratio:.3}x the 1/N share)",
            shards + 1
        );
    }
}

/// The tentpole's acceptance oracle at test scale: a small semester
/// served by every (shards × workers) cell in {1,2,4}×{1,4} produces
/// one semantic digest (the semester digest), and within each shard
/// count the full digest is worker-invariant.
#[test]
fn semester_digest_matrix_is_bit_identical() {
    let cfg = SemesterConfig {
        tenants: 40,
        days: 7,
        ..SemesterConfig::smoke()
    };
    let run = |shards: u32, workers: usize| {
        let mut cc = ClusterConfig::with_shards(shards, workers);
        cc.l1_capacity = 48;
        cc.l2_capacity_per_shard = 128;
        cluster::run_semester(&Cluster::new(cc), &cfg)
    };
    let mut semantic = HashSet::new();
    for shards in [1u32, 2, 4] {
        let a = run(shards, 1);
        let b = run(shards, 4);
        assert_eq!(
            a.full_digest, b.full_digest,
            "full digest varies with workers at {shards} shards"
        );
        assert_eq!(a.stats, b.stats, "stats vary with workers");
        semantic.insert(a.semantic_digest);
        semantic.insert(b.semantic_digest);
    }
    assert_eq!(
        semantic.len(),
        1,
        "semantic digest must be one value across the whole matrix"
    );
}
