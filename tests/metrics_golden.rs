//! Golden-snapshot integration test: the end-to-end observability
//! layer exports byte-identical `MetricsSnapshot` JSON across repeated
//! runs and across replication thread counts — the cross-crate
//! statement of the observability determinism invariant in DESIGN.md.

use pbl_core::experiments::metrics_snapshot;
use pbl_core::replicate::{run_replication, run_replication_with_metrics, ReplicationConfig};

fn small_config(threads: usize) -> ReplicationConfig {
    ReplicationConfig {
        replicates: 6,
        threads,
        num_students: 40,
        master_seed: 20_180_824,
        permutations: 300,
        bootstrap_reps: 200,
        section_permutations: 200,
    }
}

#[test]
fn metrics_snapshot_json_is_golden_across_runs_and_thread_counts() {
    let golden = metrics_snapshot(1).to_json();
    for threads in [1, 2, 4, 8] {
        let snap = metrics_snapshot(threads);
        assert_eq!(golden, snap.to_json(), "threads = {threads}");
        assert_eq!(
            snap.digest(),
            metrics_snapshot(threads).digest(),
            "rerun at threads = {threads}"
        );
    }
    // The golden export speaks the stable schema and covers every
    // instrumented layer.
    assert!(golden.starts_with("{\n  \"schema\": \"pbl-obs/v1\""));
    for layer in ["pi_sim/", "parallel_rt/", "mapreduce/", "replicate/"] {
        assert!(golden.contains(layer), "missing {layer} metrics");
    }
    // Nothing wall-domain leaks into the deterministic export.
    assert!(!golden.contains("\"domain\": \"wall\""));
}

#[test]
fn instrumentation_does_not_perturb_the_replication_batch() {
    let plain = run_replication(&small_config(4));
    for threads in [1, 8] {
        let registry = obs::Registry::new();
        let instrumented = run_replication_with_metrics(&small_config(threads), &registry);
        assert_eq!(
            plain.summaries, instrumented.summaries,
            "threads = {threads}"
        );
        assert_eq!(plain.digest(), instrumented.digest());
    }
}
