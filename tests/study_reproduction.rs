//! Integration test: the full study pipeline reproduces every published
//! artefact's shape — the cross-crate statement of EXPERIMENTS.md.

use classroom::response::Category;
use classroom::Element;
use pbl_core::published;
use pbl_core::{experiments, hypotheses, PblStudy, StudyReport};
use stats::EffectSizeBand;

fn report() -> StudyReport {
    PblStudy::new().run()
}

#[test]
fn table1_reproduces_sign_significance_and_magnitude() {
    let r = report();
    // Our convention is second − first; the paper prints first − second.
    assert!(
        (r.emphasis_ttest.mean_difference - (-published::TABLE1_EMPHASIS.mean_difference)).abs()
            < 0.05
    );
    assert!(
        (r.growth_ttest.mean_difference - (-published::TABLE1_GROWTH.mean_difference)).abs() < 0.05
    );
    assert!(r.emphasis_ttest.significant_at(0.05));
    assert!(r.growth_ttest.significant_at(0.05));
    // Growth is the stronger effect in both t and mean difference.
    assert!(r.growth_ttest.t > r.emphasis_ttest.t);
}

#[test]
fn table2_reproduces_the_medium_effect() {
    let r = report();
    assert!(
        (r.emphasis_d.d - published::TABLE2.d).abs() < 0.12,
        "d = {}",
        r.emphasis_d.d
    );
    assert_eq!(r.emphasis_d.band(), EffectSizeBand::Medium);
    assert!((r.emphasis_d.mean_first - published::TABLE2.mean1).abs() < 0.05);
    assert!((r.emphasis_d.mean_second - published::TABLE2.mean2).abs() < 0.05);
    assert!((r.emphasis_d.sd_first - published::TABLE2.sd1).abs() < 0.05);
    assert!((r.emphasis_d.sd_second - published::TABLE2.sd2).abs() < 0.05);
}

#[test]
fn table3_reproduces_the_large_effect() {
    let r = report();
    assert!(
        (r.growth_d.d - published::TABLE3.d).abs() < 0.12,
        "d = {}",
        r.growth_d.d
    );
    assert_eq!(r.growth_d.band(), EffectSizeBand::Large);
    assert!((r.growth_d.mean_first - published::TABLE3.mean1).abs() < 0.05);
    assert!((r.growth_d.mean_second - published::TABLE3.mean2).abs() < 0.05);
}

#[test]
fn table4_reproduces_every_correlation_within_sampling_noise() {
    let r = report();
    for row in &r.correlations {
        let t1 = published::table4_r(row.element, 1);
        let t2 = published::table4_r(row.element, 2);
        assert!(
            (row.first_half.r - t1).abs() < 0.15,
            "{:?} wave1: {} vs {}",
            row.element,
            row.first_half.r,
            t1
        );
        assert!(
            (row.second_half.r - t2).abs() < 0.15,
            "{:?} wave2: {} vs {}",
            row.element,
            row.second_half.r,
            t2
        );
        assert!(row.first_half.p_two_sided < 0.001);
        assert!(row.second_half.p_two_sided < 0.001);
    }
}

#[test]
fn tables5_and_6_reproduce_the_rank_structure() {
    let r = report();
    // Robust rank facts from the paper.
    for ranking in [
        &r.emphasis_ranking.0,
        &r.emphasis_ranking.1,
        &r.growth_ranking.0,
        &r.growth_ranking.1,
    ] {
        assert_eq!(ranking[0].label, "Teamwork");
        assert_eq!(ranking[1].label, "Implementation");
    }
    // EDM last in both first-half rankings; Information Gathering last
    // in the second-half emphasis ranking.
    assert_eq!(
        r.emphasis_ranking.0.last().unwrap().label,
        "Evaluation and Decision Making"
    );
    assert_eq!(
        r.growth_ranking.0.last().unwrap().label,
        "Evaluation and Decision Making"
    );
    assert_eq!(
        r.emphasis_ranking.1.last().unwrap().label,
        "Information Gathering"
    );
    // Every element's score rises wave 1 → wave 2 in both categories.
    for (a, _) in r.emphasis_ranking.0.iter().zip(&r.emphasis_ranking.1) {
        let second = r
            .emphasis_ranking
            .1
            .iter()
            .find(|b| b.label == a.label)
            .unwrap();
        assert!(second.score > a.score - 0.05, "{}", a.label);
    }
}

#[test]
fn element_means_reproduce_tables_5_and_6_cells() {
    let r = report();
    for &e in &classroom::ALL_ELEMENTS {
        for wave in [1usize, 2] {
            let (pub_e, pub_g) = published::table56_means(e, wave);
            let got_e = r.element_mean(Category::ClassEmphasis, e, wave);
            let got_g = r.element_mean(Category::PersonalGrowth, e, wave);
            assert!(
                (got_e - pub_e).abs() < 0.15,
                "{e:?} emphasis wave {wave}: {got_e} vs {pub_e}"
            );
            assert!(
                (got_g - pub_g).abs() < 0.15,
                "{e:?} growth wave {wave}: {got_g} vs {pub_g}"
            );
        }
    }
}

#[test]
fn discussion_implementation_gap_is_the_small_one() {
    let r = report();
    let gap = r.emphasis_growth_gap(Element::Implementation, 2);
    assert!(
        gap.abs() < published::EMPHASIS_GROWTH_GAP_THRESHOLD,
        "implementation gap {gap}"
    );
    // Teamwork's correlation is the improvement target the paper names.
    let teamwork = r
        .correlations
        .iter()
        .find(|c| c.element == Element::Teamwork)
        .unwrap();
    let min_r = r
        .correlations
        .iter()
        .map(|c| c.first_half.r)
        .fold(f64::MAX, f64::min);
    assert_eq!(teamwork.first_half.r, min_r);
}

#[test]
fn all_hypotheses_supported_and_full_report_renders() {
    let r = report();
    for v in hypotheses::evaluate_all(&r) {
        assert!(v.supported, "H{}: {}", v.hypothesis, v.evidence);
    }
    let text = experiments::full_report(&r);
    assert!(
        text.len() > 4_000,
        "report is substantial: {} chars",
        text.len()
    );
    for table in [
        "Table 1.", "Table 2.", "Table 3.", "Table 4.", "Table 5.", "Table 6.",
    ] {
        assert!(text.contains(table));
    }
}

#[test]
fn different_seeds_preserve_the_qualitative_conclusions() {
    // The headline findings must not hinge on the calibrated seed.
    for seed in [1u64, 99, 1234] {
        let r = PblStudy::with_config(classroom::StudyConfig {
            num_students: 124,
            seed,
        })
        .run();
        assert!(r.growth_ttest.significant_at(0.05), "seed {seed}");
        assert!(r.growth_d.d > 0.5, "seed {seed}: d {}", r.growth_d.d);
        assert!(r
            .correlations
            .iter()
            .all(|c| c.first_half.r > 0.0 && c.second_half.r > 0.0));
        assert_eq!(r.emphasis_ranking.0[0].label, "Teamwork", "seed {seed}");
    }
}
