//! Integration test: the replication engine is deterministic across
//! thread counts, end to end — the cross-crate statement of the
//! replicate-level determinism invariant in DESIGN.md.

use classroom::{CohortData, StudyConfig};
use pbl_core::replicate::{run_replication, run_replication_batched, ReplicationConfig};
use replicate::{ReplicationEngine, StreamSeeder};

fn small_config(threads: usize) -> ReplicationConfig {
    ReplicationConfig {
        replicates: 6,
        threads,
        num_students: 40,
        master_seed: 20_180_824,
        permutations: 300,
        bootstrap_reps: 200,
        section_permutations: 200,
    }
}

#[test]
fn full_replication_batch_is_bit_identical_for_threads_1_2_4_8() {
    let reference = run_replication(&small_config(1));
    assert_eq!(reference.summaries.len(), 6);
    for threads in [2, 4, 8] {
        let got = run_replication(&small_config(threads));
        // ReplicateSummary is PartialEq over every reported float, so
        // this is a bit-for-bit comparison of the whole batch.
        assert_eq!(reference.summaries, got.summaries, "threads = {threads}");
        assert_eq!(reference.digest(), got.digest());
    }
}

#[test]
fn batched_replication_matches_the_scalar_digest_for_threads_1_2_4_8() {
    // The batch-major path (SoA lockstep kernels over whole chunks)
    // must reproduce the scalar engine bit for bit at every thread
    // count — the batched-vs-scalar bit-identity invariant in
    // DESIGN.md, stated end to end across crates.
    let reference = run_replication(&small_config(1));
    for threads in [1, 2, 4, 8] {
        let got = run_replication_batched(&small_config(threads));
        assert_eq!(reference.summaries, got.summaries, "threads = {threads}");
        assert_eq!(reference.digest(), got.digest(), "threads = {threads}");
    }
}

#[test]
fn cohort_batches_share_the_engine_seed_schedule() {
    // The classroom batch and a raw engine run over the same master
    // seed must see the same per-replicate stream seeds.
    let config = StudyConfig {
        num_students: 20,
        seed: 99,
    };
    let cohorts = CohortData::generate_batch(&config, 4, 2);
    let seeds = ReplicationEngine::new(2).run(4, config.seed, |ctx| ctx.seed);
    let seeder = StreamSeeder::new(config.seed);
    for (i, seed) in seeds.iter().enumerate() {
        assert_eq!(*seed, seeder.split_seed(i as u64));
        let direct = CohortData::generate(&StudyConfig {
            num_students: 20,
            seed: *seed,
        });
        assert_eq!(direct.wave1, cohorts[i].wave1);
    }
}

#[test]
fn replication_conclusions_are_stable_across_master_seeds() {
    // Two disjoint small batches at the scaled cohort size still agree
    // on the ordinal conclusion (growth effect > emphasis effect).
    for master in [1u64, 2] {
        let report = run_replication(&ReplicationConfig {
            master_seed: master,
            ..small_config(4)
        });
        assert!(
            report.growth_effect_larger_fraction() > 0.5,
            "master = {master}"
        );
    }
}
