//! Property-based tests (proptest) on the OS layer's three pillars:
//!
//! * **Preemption determinism** — any `(scheduler, timeslice, seed)`
//!   triple replays bit-identically (same report digest, same report).
//! * **Work conservation** — the total retired work of a cohort is
//!   scheduler-invariant: schedulers move work in time, never create
//!   or destroy it.
//! * **Bounded waiting** — under round-robin with free context
//!   switches and compute-only programs, no ready process ever waits
//!   longer than `timeslice × nprocs` for a core.

use proptest::prelude::*;

use os::kernel::{Os, OsConfig, OsReport};
use os::process::ProcProgram;
use os::study::SchedKind;

/// splitmix64 — the workspace's cheap deterministic stream expander.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seed-derived mixed workload: compute bursts, strided memory,
/// yields, and short sleeps, 2–5 processes with split priorities.
fn workload(seed: u64) -> Vec<(ProcProgram, u8)> {
    let nprocs = 2 + (mix(seed) % 4) as usize;
    (0..nprocs)
        .map(|i| {
            let mut prog = ProcProgram::new();
            let h = mix(seed ^ (i as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
            let chunks = 2 + (h % 4);
            for c in 0..chunks {
                let hc = mix(h ^ c);
                prog = prog.compute(10_000 + hc % 90_000);
                match hc % 3 {
                    0 => prog = prog.read_stride((i as u64 + 1) << 22, 64, 32 + hc % 96),
                    1 => prog = prog.yield_cpu(),
                    _ => prog = prog.sleep(5_000 + hc % 45_000),
                }
            }
            (prog.exit(0), (i % 2) as u8)
        })
        .collect()
}

fn run(kind: SchedKind, timeslice: u64, seed: u64) -> OsReport {
    let mut cfg = OsConfig::pi();
    cfg.timeslice = timeslice;
    Os::new(cfg).run(workload(seed), kind.make())
}

fn kind_from(k: u8) -> SchedKind {
    SchedKind::ALL[(k as usize) % SchedKind::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pillar 1: the run is a pure function of (scheduler, timeslice,
    /// workload) — two executions are bit-identical down to every
    /// per-process counter, not merely digest-equal.
    #[test]
    fn any_scheduler_timeslice_seed_replays_bit_identically(
        k in 0u8..3,
        timeslice in 5_000u64..120_000,
        seed in 0u64..0xFFFF_FFFF_FFFF,
    ) {
        let kind = kind_from(k);
        let a = run(kind, timeslice, seed);
        let b = run(kind, timeslice, seed);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a, b);
    }

    /// Pillar 2: schedulers decide *when* work runs, never *how much*
    /// of it exists. Retired work (compute cycles + memory ops) is
    /// identical across all three schedulers for the same cohort and
    /// equals the per-program sum.
    #[test]
    fn total_retired_work_is_scheduler_invariant(
        timeslice in 5_000u64..120_000,
        seed in 0u64..0xFFFF_FFFF_FFFF,
    ) {
        let expected: u64 = workload(seed)
            .iter()
            .map(|(p, _)| p.work_units())
            .sum();
        for kind in SchedKind::ALL {
            let r = run(kind, timeslice, seed);
            prop_assert_eq!(
                r.retired_work, expected,
                "{} retired {} of {}", kind.label(), r.retired_work, expected
            );
            prop_assert!(r.procs.iter().all(|p| p.exit_code == Some(0)));
        }
    }

    /// Pillar 3: round-robin bounded waiting. With compute-only
    /// programs (no blocking, no contention variance) and free context
    /// switches, a FIFO queue guarantees no ready process waits longer
    /// than one full rotation: `timeslice × nprocs`.
    #[test]
    fn round_robin_never_starves_beyond_one_rotation(
        cores in 1usize..=4,
        nprocs in 2usize..=6,
        timeslice in 2_000u64..40_000,
        seed in 0u64..0xFFFF_FFFF_FFFF,
    ) {
        let mut cfg = OsConfig::pi_with_cores(cores);
        cfg.timeslice = timeslice;
        cfg.context_switch_cost = 0;
        let procs = (0..nprocs)
            .map(|i| {
                let h = mix(seed ^ i as u64);
                (ProcProgram::new().compute(20_000 + h % 180_000), 0)
            })
            .collect();
        let r = Os::new(cfg).run(procs, SchedKind::RoundRobin.make());
        let bound = timeslice * nprocs as u64;
        for p in &r.procs {
            prop_assert!(
                p.max_ready_wait <= bound,
                "pid {} waited {} > bound {} (cores {cores}, nprocs {nprocs}, timeslice {timeslice})",
                p.pid, p.max_ready_wait, bound
            );
        }
    }
}

/// The oversubscription acceptance row from the issue, as a plain
/// integration test: C = 4, P = 5 under each scheduler produces a
/// digest that is bit-identical across reruns.
#[test]
fn oversubscription_cells_replay_bit_identically() {
    for kind in SchedKind::ALL {
        let a = os::study::run_oversub(4, 5, kind);
        let b = os::study::run_oversub(4, 5, kind);
        assert_eq!(a.digest(), b.digest(), "{} drifted", kind.label());
        assert_eq!(a, b);
    }
}
