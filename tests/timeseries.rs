//! Property tests for the telemetry pipeline's determinism contract:
//!
//! * sharding is a view, not a semantic: rolling up per-shard series
//!   sets merged shard-by-shard is bit-identical to rolling up one set
//!   fed the same points as a single `(window, shard, series)`-ordered
//!   stream, at every cluster width in {1, 2, 4, 8};
//! * the alert evaluator is pure: evaluating a series set neither
//!   perturbs the set nor varies between invocations.

use obs::{AlertPolicy, AnomalyRule, BurnRateSlo, SeriesSet};
use proptest::prelude::*;

/// One synthetic telemetry event. The routing key decides the shard
/// (`key % shards`), mirroring how the cluster routes by content
/// digest; the series index picks one of a counter, a gauge and a
/// histogram.
#[derive(Debug, Clone)]
struct Event {
    series: u8,
    key: u64,
    window: u64,
    value: u64,
}

const EDGES: [u64; 4] = [10, 100, 1_000, 10_000];

fn record(set: &mut SeriesSet, shard: u32, ev: &Event) {
    let series = match ev.series % 3 {
        0 => set.counter("ev/count", shard, false),
        1 => set.gauge("ev/gauge", shard, false),
        _ => set.histogram("ev/lat", shard, false, &EDGES),
    };
    series.record(ev.window, ev.value);
}

fn series_name(ev: &Event) -> &'static str {
    match ev.series % 3 {
        0 => "ev/count",
        1 => "ev/gauge",
        _ => "ev/lat",
    }
}

/// Raw event tuples (series, key, window, value); the vendored
/// proptest has no `prop_map`, so conversion to [`Event`] happens in
/// the test body.
fn event_strategy() -> impl Strategy<Value = Vec<(u8, u64, u64, u64)>> {
    prop::collection::vec((0u8..3, 0u64..64, 0u64..20, 0u64..20_000), 0..200)
}

fn events_of(raw: &[(u8, u64, u64, u64)]) -> Vec<Event> {
    raw.iter()
        .map(|&(series, key, window, value)| Event {
            series,
            key,
            window,
            value,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merged_rollup_is_bit_identical_to_ordered_concatenation_rollup(
        raw in event_strategy(),
    ) {
        // The cluster feeds each series ascending virtual time (one
        // day after another); the ring intentionally drops samples
        // older than its oldest retained window, so the bit-identity
        // contract is over window-ordered feeds. Stable sort keeps
        // same-window relative order (gauge last-write-wins intact).
        let mut events = events_of(&raw);
        events.sort_by_key(|ev| ev.window);
        for shards in [1u32, 2, 4, 8] {
            // Way A: one series set per shard, each fed only its own
            // events (the cluster's per-shard collection), merged then
            // rolled up.
            let mut parts: Vec<SeriesSet> =
                (0..shards).map(|_| SeriesSet::new(1, 32)).collect();
            for ev in &events {
                let shard = (ev.key % u64::from(shards)) as u32;
                record(&mut parts[shard as usize], shard, ev);
            }
            let merged = SeriesSet::merge(parts).rollup();

            // Way B: one set fed the identical points as a single
            // stream, ordered by (window, shard, series).
            let mut ordered = events.clone();
            ordered.sort_by_key(|ev| {
                (ev.window, ev.key % u64::from(shards), series_name(ev))
            });
            let mut single = SeriesSet::new(1, 32);
            for ev in &ordered {
                let shard = (ev.key % u64::from(shards)) as u32;
                record(&mut single, shard, ev);
            }
            let concatenated = single.rollup();

            prop_assert_eq!(
                merged.to_json(),
                concatenated.to_json(),
                "rollup bytes diverge at {} shard(s)",
                shards
            );
            prop_assert_eq!(merged.digest(), concatenated.digest());
        }
    }

    #[test]
    fn alert_evaluation_is_pure(raw in event_strategy()) {
        let events = events_of(&raw);
        let mut set = SeriesSet::new(1, 32);
        for ev in &events {
            let shard = (ev.key % 4) as u32;
            record(&mut set, shard, ev);
        }
        let policy = AlertPolicy {
            slos: vec![BurnRateSlo {
                name: "count-burn".into(),
                bad_series: "ev/gauge".into(),
                total_series: "ev/count".into(),
                budget_per_mille: 20,
                fast_windows: 1,
                slow_windows: 7,
                fast_burn_milli: 10_000,
                slow_burn_milli: 2_000,
            }],
            anomalies: vec![AnomalyRule {
                name: "lat-spike".into(),
                series: "ev/lat".into(),
                period: 7,
                min_baseline: 2,
                threshold_z_milli: 8_000,
            }],
        };

        let before = set.digest();
        let first = obs::alert::evaluate(&set, &policy);
        let second = obs::alert::evaluate(&set, &policy);

        // Pure: same incidents (bytes and digest), and the evaluated
        // set is untouched.
        prop_assert_eq!(first.to_json(), second.to_json());
        prop_assert_eq!(first.digest(), second.digest());
        prop_assert_eq!(set.digest(), before);

        // Edges alternate per (rule, shard): a firing incident is
        // always followed (if anything) by a resolved one and vice
        // versa — the state-machine invariant the timeline renderer
        // relies on.
        use std::collections::BTreeMap;
        let mut last: BTreeMap<(String, u32), obs::IncidentEdge> = BTreeMap::new();
        for incident in &first.incidents {
            let key = (incident.rule.clone(), incident.shard);
            if let Some(prev) = last.get(&key) {
                prop_assert!(*prev != incident.edge, "consecutive identical edges");
            }
            last.insert(key, incident.edge);
        }
    }
}
