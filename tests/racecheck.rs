//! Property tests for the schedule-space explorer
//! (`parallel_rt::explore`): replay determinism, shrinking soundness,
//! and race-freedom of the fixed patternlets under random schedules.
//!
//! These are the workspace-level statements of the explorer's
//! contracts (see DESIGN.md, "explored-space race-freedom"):
//!
//! - **Replay determinism** — any `(program, choice string)` pair is a
//!   complete schedule (out-of-range choices wrap, exhausted strings
//!   continue deterministically) and replays to a byte-identical
//!   execution, including the FNV trace digest.
//! - **Shrinking soundness** — delta-debugging a counterexample's
//!   choice string never produces a schedule that fails to reproduce
//!   the original race signature, and never grows the schedule.
//! - **Fix certification** — the `Critical` / `Atomic` / `Reduction`
//!   patternlets are race-free and correct under *every* random
//!   schedule sampled, not just the ones the systematic search visits.

use proptest::prelude::*;

use parallel_rt::explore::{replay, run_random, search, shrink};
use parallel_rt::race::{patternlet_program, FixStrategy};

const STRATEGIES: [FixStrategy; 4] = [
    FixStrategy::None,
    FixStrategy::Critical,
    FixStrategy::Atomic,
    FixStrategy::Reduction,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any (strategy, choice-string) pair — including out-of-range and
    /// too-short strings — replays to a byte-identical execution: same
    /// schedule, same observed value, same races, same trace digest.
    #[test]
    fn any_choice_string_replays_bit_identically(
        strategy_sel in 0usize..4,
        threads in 2usize..4,
        increments in 1usize..3,
        choices in prop::collection::vec(0usize..100, 0..40),
    ) {
        let program = patternlet_program(STRATEGIES[strategy_sel], threads, increments);
        let a = replay(&program, &choices);
        let b = replay(&program, &choices);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.trace_digest.is_some());
        prop_assert_eq!(a.steps, program.total_steps());
    }

    /// A random run's recorded choice string is a faithful replay
    /// recipe: feeding it back reproduces the run bit for bit.
    #[test]
    fn random_runs_replay_from_their_recorded_choices(
        strategy_sel in 0usize..4,
        threads in 2usize..4,
        increments in 1usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let program = patternlet_program(STRATEGIES[strategy_sel], threads, increments);
        let random = run_random(&program, seed);
        let replayed = replay(&program, &random.choices);
        prop_assert_eq!(&random, &replayed);
    }

    /// The fixed patternlets are race-free and observe the expected
    /// value under every randomly sampled schedule, not only the
    /// schedules the systematic search enumerates.
    #[test]
    fn fixed_strategies_never_race_under_random_schedules(
        strategy_sel in 1usize..4,
        threads in 2usize..4,
        increments in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let program = patternlet_program(STRATEGIES[strategy_sel], threads, increments);
        let exec = run_random(&program, seed);
        prop_assert!(exec.races.is_empty(), "unexpected race: {:?}", exec.races);
        prop_assert!(exec.is_correct(), "observed {} != expected {}", exec.observed, exec.expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shrinking a found counterexample always yields a schedule that
    /// still reproduces the same race signature, never grows the choice
    /// string, and is itself deterministic under replay.
    #[test]
    fn shrinking_never_loses_the_race(
        master_seed in 0u64..u64::MAX,
        threads in 2usize..4,
        increments in 1usize..3,
    ) {
        let buggy = patternlet_program(FixStrategy::None, threads, increments);
        let report = search::fuzz(&buggy, master_seed, search::Budget::schedules(16));
        let cex = report.counterexample.expect("the buggy patternlet always races");

        let minimal = shrink::shrink(&buggy, &cex.choices, cex.race_signature);
        prop_assert!(shrink::reproduces(&buggy, &minimal, cex.race_signature));
        prop_assert!(minimal.len() <= cex.choices.len());

        // The shrunk schedule replays bit-identically too.
        prop_assert_eq!(replay(&buggy, &minimal), replay(&buggy, &minimal));

        // And the packaged form refreshes every derived field coherently.
        let (min_cex, exec) = shrink::shrink_counterexample(&buggy, &cex);
        prop_assert_eq!(&min_cex.choices, &minimal);
        prop_assert_eq!(min_cex.race_signature, cex.race_signature);
        prop_assert_eq!(Some(min_cex.trace_digest), exec.trace_digest);
        prop_assert!(exec.has_race_signature(cex.race_signature));
    }
}
