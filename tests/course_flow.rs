//! Integration test: a team's path through the course — set up the Pi,
//! work each assignment's programs in order, get graded — exercising
//! module design, substrate, runtime, and patternlets together.

use classroom::assignment::{assignments, individual_grades, Focus, Material, PeerRating};
use patternlets::catalog::{for_assignment, Assignment};
use pi_sim::boot::{BootStage, PiSetup, SdCard};

#[test]
fn a_team_completes_the_whole_module() {
    // Week 1: the team receives the kit and sets it up (Assignment 2's
    // first task).
    let mut pi = PiSetup::new();
    pi.insert_card(SdCard::Blank);
    pi.flash_raspbian(false).expect("image flashes");
    pi.connect_display();
    pi.connect_keyboard();
    assert_eq!(pi.boot().expect("boots"), BootStage::Ready);

    // Assignments 2-4: run every patternlet in catalogue order.
    for a in [Assignment::A2, Assignment::A3, Assignment::A4] {
        for patternlet in for_assignment(a) {
            let summary = (patternlet.smoke)();
            assert!(!summary.is_empty(), "{} produced output", patternlet.name);
        }
    }

    // Assignment 5: the three drug-design implementations agree.
    let cfg = drugsim::DrugDesignConfig {
        num_ligands: 30,
        ..Default::default()
    };
    let seq = drugsim::run(&cfg, drugsim::Approach::Sequential, 1);
    let omp = drugsim::run(&cfg, drugsim::Approach::OpenMp, 4);
    assert_eq!(seq.best_ligands, omp.best_ligands);

    // Grading: everyone cooperated, so the team grade propagates.
    let ratings: Vec<PeerRating> = (0..5)
        .flat_map(|rater| {
            (0..5)
                .filter(move |&ratee| ratee != rater)
                .map(move |ratee| PeerRating {
                    rater,
                    ratee,
                    rating: 90.0,
                })
        })
        .collect();
    let grades = individual_grades(93.0, &[0, 1, 2, 3, 4], &ratings, 50.0);
    assert!(grades.iter().all(|&(_, g)| (g - 93.0).abs() < 1e-12));
}

#[test]
fn module_structure_matches_the_paper() {
    let all = assignments();
    assert_eq!(all.len(), 5);
    // Soft skills first, then four technical assignments.
    assert_eq!(all[0].focus, Focus::SoftSkills);
    assert_eq!(
        all.iter()
            .filter(|a| a.focus == Focus::TechnicalSkills)
            .count(),
        4
    );
    // Assignment 5 reads the MapReduce paper; earlier ones do not.
    assert!(all[4].materials.contains(&Material::IntroMapReduce));
    assert!(all[..4]
        .iter()
        .all(|a| !a.materials.contains(&Material::IntroMapReduce)));
    // Each technical assignment has programs to run: the patternlet
    // catalogue covers A2-A4 with three each.
    for a in [Assignment::A2, Assignment::A3, Assignment::A4] {
        assert_eq!(for_assignment(a).len(), 3);
    }
}

#[test]
fn skipping_setup_steps_fails_like_a_graded_checklist() {
    let mut pi = PiSetup::new();
    pi.connect_display();
    assert!(pi.boot().is_err(), "no SD card");
    pi.insert_card(SdCard::Blank);
    assert!(pi.boot().is_err(), "no OS");
    pi.flash_raspbian(false).unwrap();
    assert!(pi.boot().is_ok());
    let done = pi.checklist().iter().filter(|(_, d)| *d).count();
    assert_eq!(done, 4, "keyboard still unchecked");
}

#[test]
fn a_non_cooperator_gets_zero_and_the_team_moves_on() {
    let ratings = vec![
        PeerRating {
            rater: 0,
            ratee: 3,
            rating: 10.0,
        },
        PeerRating {
            rater: 1,
            ratee: 3,
            rating: 15.0,
        },
        PeerRating {
            rater: 2,
            ratee: 3,
            rating: 5.0,
        },
    ];
    let grades = individual_grades(85.0, &[0, 1, 2, 3], &ratings, 50.0);
    assert_eq!(grades[3], (3, 0.0));
    assert!(grades[..3].iter().all(|&(_, g)| g == 85.0));
}
