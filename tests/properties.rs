//! Property-based tests (proptest) on the core invariants across the
//! workspace: statistics, scheduling, the simulated machine, the
//! scoring kernel, and MapReduce.

use proptest::prelude::*;

use mapreduce::{run_job, JobConfig, MapReduce};
use parallel_rt::reduction::Sum;
use parallel_rt::schedule::{static_block, static_chunks};
use parallel_rt::sim::{
    plan_assignment, simulate_parallel_loop_lowered, CostModel, Lowering, SimOptions,
};
use parallel_rt::{Schedule, Team};
use pi_sim::machine::{Machine, RunReport};
use pi_sim::program::Program;
use stats::descriptive::{mean, quantile};
use stats::{cohen_d_independent, pearson, t_test_paired, Summary};

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn summary_mean_within_min_max(data in finite_vec(1..200)) {
        let s = Summary::from_slice(&data).unwrap();
        prop_assert!(s.mean() >= s.min().unwrap() - 1e-9);
        prop_assert!(s.mean() <= s.max().unwrap() + 1e-9);
    }

    #[test]
    fn summary_merge_is_order_independent(a in finite_vec(1..100), b in finite_vec(1..100)) {
        let mut ab = Summary::from_slice(&a).unwrap();
        ab.merge(&Summary::from_slice(&b).unwrap());
        let mut ba = Summary::from_slice(&b).unwrap();
        ba.merge(&Summary::from_slice(&a).unwrap());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert_eq!(ab.n(), ba.n());
    }

    #[test]
    fn quantiles_are_monotone(data in finite_vec(2..100), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&data, lo).unwrap() <= quantile(&data, hi).unwrap() + 1e-12);
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        x in finite_vec(3..60),
        noise in prop::collection::vec(-0.5..0.5f64, 3..60),
    ) {
        let n = x.len().min(noise.len());
        let x = &x[..n];
        let y: Vec<f64> = x.iter().zip(&noise[..n]).map(|(a, b)| a * 0.5 + b).collect();
        if let (Ok(rxy), Ok(ryx)) = (pearson(x, &y), pearson(&y, x)) {
            prop_assert!((rxy.r - ryx.r).abs() < 1e-12);
            prop_assert!((-1.0..=1.0).contains(&rxy.r));
        }
    }

    #[test]
    fn paired_ttest_shift_invariance(data in finite_vec(3..60), shift in -10.0..10.0f64) {
        // Shifting both samples identically leaves the test unchanged.
        let second: Vec<f64> = data.iter().enumerate().map(|(i, x)| x + (i % 3) as f64).collect();
        let a = t_test_paired(&data, &second);
        let d2: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let s2: Vec<f64> = second.iter().map(|x| x + shift).collect();
        let b = t_test_paired(&d2, &s2);
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert!((a.t - b.t).abs() < 1e-6);
            prop_assert!((a.p_two_sided - b.p_two_sided).abs() < 1e-6);
        }
    }

    #[test]
    fn cohen_d_is_scale_equivariant_in_sign(lo in 0.0..1.0f64, gap in 0.01..2.0f64) {
        let a: Vec<f64> = (0..30).map(|i| lo + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = a.iter().map(|x| x + gap).collect();
        let d = cohen_d_independent(&a, &b).unwrap();
        prop_assert!(d.d > 0.0);
        let rev = cohen_d_independent(&b, &a).unwrap();
        prop_assert!((d.d + rev.d).abs() < 1e-9);
    }

    #[test]
    fn static_schedules_partition_any_range(n in 0usize..500, threads in 1usize..9, chunk in 1usize..7) {
        let mut block: Vec<usize> = (0..threads).flat_map(|t| static_block(0..n, threads, t)).collect();
        block.sort_unstable();
        prop_assert_eq!(&block, &(0..n).collect::<Vec<_>>());
        let mut chunked: Vec<usize> = (0..threads)
            .flat_map(|t| static_chunks(0..n, threads, t, chunk).into_iter().flatten())
            .collect();
        chunked.sort_unstable();
        prop_assert_eq!(chunked, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn any_plan_covers_every_iteration(
        n in 0usize..400,
        threads in 1usize..8,
        chunk in 1usize..6,
        dynamic in prop::bool::ANY,
        base in 1u64..50,
        slope in 0u64..10,
    ) {
        let schedule = if dynamic { Schedule::Dynamic(chunk) } else { Schedule::StaticChunk(chunk) };
        let cost = CostModel::Linear { base, slope };
        let plan = plan_assignment(n, &cost, schedule, threads);
        prop_assert_eq!(plan.len(), threads);
        let mut all: Vec<usize> = plan.into_iter().flatten().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn machine_conserves_compute_work(loads in prop::collection::vec(1u64..200_000, 1..8)) {
        let programs: Vec<Program> = loads.iter().map(|&c| Program::new().compute(c)).collect();
        let report = Machine::pi().run(programs);
        let done: u64 = report.threads.iter().map(|t| t.compute_cycles).sum();
        prop_assert_eq!(done, loads.iter().sum::<u64>());
        let max_finish = report.threads.iter().map(|t| t.finish_time).max().unwrap();
        prop_assert_eq!(report.total_cycles, max_finish);
    }

    #[test]
    fn machine_makespan_bounded_by_serial_sum(loads in prop::collection::vec(1u64..100_000, 1..6)) {
        let programs: Vec<Program> = loads.iter().map(|&c| Program::new().compute(c)).collect();
        let report = Machine::pi().run(programs);
        let serial: u64 = loads.iter().sum();
        let longest: u64 = *loads.iter().max().unwrap();
        // Parallel makespan is at least the longest thread and at most
        // the serial sum plus scheduling overhead.
        prop_assert!(report.total_cycles >= longest);
        let overhead_allowance = 2_000 * loads.len() as u64 + serial / 10;
        prop_assert!(report.total_cycles <= serial + overhead_allowance);
    }

    #[test]
    fn lcs_score_invariants(a in "[a-d]{0,12}", b in "[a-d]{0,24}") {
        let s = drugsim::score(&a, &b);
        prop_assert!(s <= a.len().min(b.len()));
        prop_assert_eq!(s, drugsim::score(&b, &a));
        // Appending characters never decreases the score.
        let extended = format!("{b}x");
        prop_assert!(drugsim::score(&a, &extended) >= s);
        // A string always fully matches itself.
        prop_assert_eq!(drugsim::score(&a, &a), a.len());
    }

    #[test]
    fn parallel_reduce_equals_sequential_sum(n in 0usize..5_000, threads in 1usize..6) {
        let team = Team::new(threads);
        let par: u64 = team.parallel_for_reduce(0..n, Schedule::Dynamic(7), Sum, |i| i as u64);
        prop_assert_eq!(par, (0..n as u64).sum::<u64>());
    }

    #[test]
    fn trapezoid_is_exact_for_linear_functions(a in -5.0..5.0f64, span in 0.1..5.0f64, m in -3.0..3.0f64, c in -3.0..3.0f64) {
        // The trapezoidal rule integrates linear functions exactly.
        let b = a + span;
        let r = patternlets::trapezoid::integrate_parallel(|x| m * x + c, a, b, 64, 3);
        let exact = m * (b * b - a * a) / 2.0 + c * (b - a);
        prop_assert!((r.value - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }
}

/// Word count formulated directly for the property test.
struct Counter;

impl MapReduce for Counter {
    type Input = Vec<u32>;
    type Key = u32;
    type Value = u64;
    type Output = u64;

    fn map(&self, input: &Vec<u32>, emit: &mut dyn FnMut(u32, u64)) {
        for &x in input {
            emit(x % 16, 1);
        }
    }

    fn reduce(&self, _key: &u32, values: Vec<u64>) -> u64 {
        values.into_iter().sum()
    }

    fn combine(&self, _key: &u32, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mapreduce_counts_match_a_sequential_fold(
        inputs in prop::collection::vec(prop::collection::vec(0u32..64, 0..30), 0..12),
        combiner in prop::bool::ANY,
        map_workers in 1usize..5,
        reduce_workers in 1usize..5,
    ) {
        let mut expected = std::collections::BTreeMap::new();
        for row in &inputs {
            for &x in row {
                *expected.entry(x % 16).or_insert(0u64) += 1;
            }
        }
        let out = run_job(&Counter, inputs, &JobConfig {
            map_workers,
            reduce_workers,
            use_combiner: combiner,
            ..JobConfig::default()
        });
        let got: std::collections::BTreeMap<u32, u64> = out.results.into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn mapreduce_failures_never_change_results(
        inputs in prop::collection::vec(prop::collection::vec(0u32..64, 1..20), 1..10),
        fail_a in 0usize..8,
        fail_b in 0usize..8,
    ) {
        let clean = run_job(&Counter, inputs.clone(), &JobConfig::default());
        let faulty = run_job(&Counter, inputs, &JobConfig {
            fail_first_attempt_of: [fail_a, fail_b].into_iter().collect(),
            ..JobConfig::default()
        });
        prop_assert_eq!(clean.results, faulty.results);
    }

    #[test]
    fn bootstrap_ci_brackets_the_sample_mean(data in finite_vec(5..60), seed in 0u64..1000) {
        let ci = stats::resample::bootstrap_ci(&data, |d| mean(d).unwrap(), 0.95, 200, seed).unwrap();
        prop_assert!(ci.lo <= ci.estimate + 1e-9);
        prop_assert!(ci.hi >= ci.estimate - 1e-9);
    }
}

/// Field-by-field `RunReport` equality (it intentionally does not derive
/// `PartialEq`; the bit-identical contract is asserted explicitly so a
/// future non-comparable field forces a conscious decision here).
fn assert_reports_bit_identical(
    a: &RunReport,
    b: &RunReport,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.total_cycles, b.total_cycles);
    prop_assert_eq!(&a.threads, &b.threads);
    prop_assert_eq!(&a.cache_stats, &b.cache_stats);
    prop_assert_eq!(a.contended_lock_acquires, b.contended_lock_acquires);
    prop_assert_eq!(a.barrier_episodes, b.barrier_episodes);
    prop_assert_eq!(a.context_switches, b.context_switches);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole determinism contract: for any cost model, schedule,
    /// team size, and iteration count, the O(chunks) run-length-encoded
    /// lowering and the O(n) per-iteration oracle produce bit-identical
    /// machine reports.
    #[test]
    fn rle_lowering_matches_per_iteration_bit_for_bit(
        iterations in 0usize..2_500,
        threads in 1usize..7,
        model_sel in 0u8..3,
        sched_sel in 0u8..4,
        chunk in 1usize..80,
        a in 1u64..300,
        b in 0u64..40,
    ) {
        let cost = match model_sel {
            0 => CostModel::Uniform(a),
            1 => CostModel::Linear { base: a, slope: b },
            _ => CostModel::Alternating { even: a, odd: a + b },
        };
        let schedule = match sched_sel {
            0 => Schedule::StaticBlock,
            1 => Schedule::StaticChunk(chunk),
            2 => Schedule::Dynamic(chunk),
            _ => Schedule::Guided(chunk),
        };
        let opts = SimOptions::default();
        let rle = simulate_parallel_loop_lowered(iterations, &cost, schedule, threads, &opts, Lowering::Rle);
        let unit = simulate_parallel_loop_lowered(iterations, &cost, schedule, threads, &opts, Lowering::PerIteration);
        prop_assert_eq!(rle.cycles, unit.cycles);
        prop_assert_eq!(&rle.iterations_per_thread, &unit.iterations_per_thread);
        assert_reports_bit_identical(&rle.report, &unit.report)?;
    }

    /// Any RLE program — compute repeats, strided reads/writes, mixed
    /// with synchronisation — times identically to its unit-op expansion,
    /// including cache statistics and context switches.
    #[test]
    fn rle_programs_match_their_expansion(
        threads in 1usize..6,
        repeats in prop::collection::vec((1u64..2_000, 0u64..50), 1..5),
        strides in prop::collection::vec((0u64..65_536, 0u64..512, 0u64..40), 0..4),
        with_sync in prop::bool::ANY,
    ) {
        let mut block = Program::new();
        for &(cost, count) in &repeats {
            block = block.compute_repeat(cost, count);
        }
        for &(base, stride, count) in &strides {
            block = block.read_stride(base, stride, count).write_stride(base ^ 0x8000, stride, count / 2);
        }
        if with_sync {
            block = block.barrier(0, threads as u32).lock(1).compute(17).unlock(1);
        }
        let rle: Vec<Program> = (0..threads).map(|_| block.clone()).collect();
        let unit: Vec<Program> = rle.iter().map(Program::expand).collect();
        let a = Machine::pi().run(rle);
        let b = Machine::pi().run(unit);
        assert_reports_bit_identical(&a, &b)?;
    }
}
