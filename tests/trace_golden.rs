//! Golden-trace integration tests: the end-to-end tracing layer
//! exports byte-identical Chrome trace-event JSON across repeated runs
//! and across thread counts, ring-buffer overflow degrades to counted
//! drops without disturbing merge order, and attaching the tracer never
//! perturbs the traced computation — the cross-crate statement of the
//! trace-determinism invariant in DESIGN.md.

use obs::trace::{analyze, category, Trace, TraceBuffer, TraceConfig};
use pbl_core::experiments::demo_trace;
use pbl_core::replicate::{run_replication, run_replication_traced, ReplicationConfig};

fn small_config(threads: usize) -> ReplicationConfig {
    ReplicationConfig {
        replicates: 6,
        threads,
        num_students: 40,
        master_seed: 20_180_824,
        permutations: 300,
        bootstrap_reps: 200,
        section_permutations: 200,
    }
}

/// The canonical four-layer trace is a pure function of the workload:
/// repeated runs and every thread count in 1/2/4/8 produce the same
/// bytes, and the FNV-1a digest matches the committed golden that CI's
/// trace smoke step gates on (`tests/golden/simcore_trace.digest`).
#[test]
fn demo_trace_chrome_json_is_golden_across_runs_and_thread_counts() {
    let golden = demo_trace(1).to_chrome_json();
    for threads in [1, 2, 4, 8] {
        let trace = demo_trace(threads);
        assert_eq!(golden, trace.to_chrome_json(), "threads = {threads}");
        assert_eq!(
            trace.digest(),
            demo_trace(threads).digest(),
            "rerun at threads = {threads}"
        );
    }

    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/simcore_trace.digest"
    ))
    .expect("committed golden digest");
    assert_eq!(
        committed.trim(),
        format!("0x{:016x}", demo_trace(1).digest()),
        "the demo trace drifted from tests/golden/simcore_trace.digest; \
         if the change is intentional, regenerate with \
         `simcore --trace-out` and commit the new digest"
    );
}

/// The analyzer's attribution identity holds on the merged four-layer
/// trace: per lane, category cycles + idle sum exactly to the lane's
/// process-group makespan.
#[test]
fn demo_trace_attribution_sums_to_the_makespan_per_lane() {
    let trace = demo_trace(2);
    let analysis = analyze::analyze(&trace);
    assert!(analysis.attribution_is_exact());
    assert!(analysis.critical_cycles > 0);
    assert!(analysis.critical_cycles <= analysis.makespan);
    for lane in &analysis.lanes {
        assert_eq!(
            lane.attributed() + lane.idle,
            lane.makespan,
            "lane {} attribution leak",
            lane.name
        );
    }
}

/// Overfilling a bounded lane drops the newest events, counts every
/// drop, and leaves the surviving prefix in stable merge order.
#[test]
fn ring_buffer_overflow_counts_drops_and_merge_order_is_stable() {
    let mut full = TraceBuffer::new(0, "full", 4);
    let mut other = TraceBuffer::new(1, "other", 64);
    for i in 0..10 {
        full.instant(i, format!("e{i}"), category::CHUNK, i);
        other.instant(i, format!("o{i}"), category::CHUNK, i);
    }
    assert_eq!(full.len(), 4);
    assert_eq!(full.dropped(), 6);
    assert_eq!(other.dropped(), 0);

    let trace = Trace::from_buffers(vec![full, other]);
    assert_eq!(trace.dropped, 6);
    // Interleaved by (time, lane, seq): the full lane's survivors sort
    // at times 0..4 ahead of the other lane's events at equal times.
    let times: Vec<(u64, u32)> = trace.events.iter().map(|e| (e.time, e.lane)).collect();
    let mut expect = Vec::new();
    for t in 0..10u64 {
        if t < 4 {
            expect.push((t, 0));
        }
        expect.push((t, 1));
    }
    assert_eq!(times, expect);
    // The drop count is part of the export (and therefore the digest).
    assert!(trace.to_chrome_json().contains("\"dropped\": 6"));
}

/// Observer effect: a traced replication run is bit-identical to the
/// plain run — same summaries, same digest — at every thread count,
/// and the trace itself is thread-count invariant.
#[test]
fn traced_replication_is_bit_identical_to_plain_runs() {
    let tcfg = TraceConfig::default();
    let plain = run_replication(&small_config(1));
    let golden_trace = run_replication_traced(&small_config(1), &tcfg)
        .1
        .to_chrome_json();
    for threads in [1, 2, 4, 8] {
        let (traced, trace) = run_replication_traced(&small_config(threads), &tcfg);
        assert_eq!(
            plain.digest(),
            traced.digest(),
            "tracing perturbed the batch at threads = {threads}"
        );
        assert_eq!(
            golden_trace,
            trace.to_chrome_json(),
            "trace not thread invariant at threads = {threads}"
        );
    }
}
