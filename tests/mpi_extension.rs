//! Integration test for the §V future-work extension: the Assignment 5
//! drug-design problem solved a *fourth* way — distributed memory over
//! message passing — must agree with the shared-memory implementations,
//! and the Spring-2019 module pieces must compose.

use drugsim::{generate_ligands, run as run_shared, score, Approach, DrugDesignConfig};
use mpi_rt::run as mpi_run;

/// Drug design over MPI: root scatters the ligand list, every rank
/// scores its share, and a rank-ordered reduce merges (best score,
/// winner indices).
fn drug_design_mpi(config: &DrugDesignConfig, ranks: usize) -> (usize, Vec<usize>) {
    let ligands = generate_ligands(config);
    // Pad to a multiple of the rank count with empty ligands (score 0).
    let mut padded: Vec<(usize, String)> = ligands.into_iter().enumerate().collect();
    while !padded.len().is_multiple_of(ranks) {
        padded.push((usize::MAX, String::new()));
    }
    let protein = config.protein.clone();
    let results = mpi_run(ranks, |rank| {
        let mine = rank.scatter(0, rank.is_root().then(|| padded.clone()));
        let mut best = 0usize;
        let mut winners: Vec<usize> = Vec::new();
        for (idx, ligand) in &mine {
            if *idx == usize::MAX {
                continue;
            }
            let s = score(ligand, &protein);
            if s > best {
                best = s;
                winners = vec![*idx];
            } else if s == best && s > 0 {
                winners.push(*idx);
            }
        }
        rank.reduce(0, (best, winners), |(ba, mut wa), (bb, wb)| {
            use std::cmp::Ordering::*;
            match bb.cmp(&ba) {
                Greater => (bb, wb),
                Less => (ba, wa),
                Equal => {
                    wa.extend(wb);
                    (ba, wa)
                }
            }
        })
    });
    let (best, mut winners) = results
        .into_iter()
        .next()
        .flatten()
        .expect("root holds the reduction");
    winners.sort_unstable();
    (best, winners)
}

#[test]
fn mpi_drug_design_agrees_with_shared_memory() {
    let config = DrugDesignConfig {
        num_ligands: 60,
        ..Default::default()
    };
    let shared = run_shared(&config, Approach::OpenMp, 4);
    for ranks in [1usize, 2, 4, 5] {
        let (best, winners) = drug_design_mpi(&config, ranks);
        assert_eq!(best, shared.best_score, "ranks = {ranks}");
        assert_eq!(winners, shared.best_ligands, "ranks = {ranks}");
    }
}

#[test]
fn mpi_drug_design_handles_longer_ligands() {
    let config = DrugDesignConfig {
        num_ligands: 40,
        ..Default::default()
    }
    .with_max_len(7);
    let sequential = run_shared(&config, Approach::Sequential, 1);
    let (best, winners) = drug_design_mpi(&config, 3);
    assert_eq!(best, sequential.best_score);
    assert_eq!(winners, sequential.best_ligands);
}

#[test]
fn the_three_models_answer_assignment5s_comparison() {
    // "When do we use OpenMP, MPI, and MapReduce, and why?" — backed by
    // the same computation under all three models.
    let data: Vec<u64> = (1..=333).collect();
    let [openmp, mpi, mapreduce] = mpi_rt::memory_models::sum_three_ways(&data, 4);
    let expected: u64 = data.iter().sum();
    assert_eq!(openmp, expected);
    assert_eq!(mpi, expected);
    assert_eq!(mapreduce, expected);
    // And the worksheet answers exist for all three.
    use mpi_rt::memory_models::Model;
    for model in [Model::OpenMp, Model::Mpi, Model::MapReduce] {
        assert!(!model.when_to_use().is_empty());
    }
}

#[test]
fn traced_virtual_pi_shows_the_oversubscription_story() {
    use pi_sim::machine::Machine;
    use pi_sim::program::Program;
    // 5 equal threads on 4 cores: every core ends up running more than
    // one thread, and utilization is near 1 on all cores.
    let (report, trace) =
        Machine::pi().run_traced((0..5).map(|_| Program::new().compute(300_000)).collect());
    // Cores idle briefly at the tail as threads drain, so utilization
    // is high but not 1.0 everywhere.
    let utilization = trace.utilization(4);
    assert!(utilization.iter().all(|&u| u > 0.8), "{utilization:?}");
    assert!((0..4).all(|c| trace.threads_on_core(c).len() >= 2));
    assert!(report.context_switches > 0);
    // 4 threads on 4 cores: one thread per core, no switches.
    let (report4, trace4) =
        Machine::pi().run_traced((0..4).map(|_| Program::new().compute(300_000)).collect());
    assert_eq!(report4.context_switches, 0);
    assert!((0..4).all(|c| trace4.threads_on_core(c).len() == 1));
}
