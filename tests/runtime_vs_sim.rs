//! Integration test: the real-thread runtime and the simulated backend
//! agree (DESIGN.md ablation 4), and the virtual-Pi speedup shapes match
//! the course's expected observations.

use parallel_rt::reduction::Sum;
use parallel_rt::sim::{
    plan_assignment, simulate_parallel_loop, simulate_sequential_loop, CostModel, SimOptions,
};
use parallel_rt::{Schedule, Team};
use pi_sim::perf::{amdahl_speedup, karp_flatt};

#[test]
fn real_and_simulated_backends_cover_identical_iterations() {
    // For static schedules the iteration→thread map must be identical
    // between the real dispenser and the simulation's plan.
    for schedule in [Schedule::StaticBlock, Schedule::StaticChunk(3)] {
        let plan = plan_assignment(101, &CostModel::Uniform(1), schedule, 4);
        let map = patternlets::schedule_demo::run(101, 4, schedule);
        for (thread, chunks) in plan.iter().enumerate() {
            for chunk in chunks {
                for i in chunk.clone() {
                    assert_eq!(map.owner[i], thread, "{schedule:?} iteration {i}");
                }
            }
        }
    }
}

#[test]
fn real_runtime_result_equals_simulated_workload_semantics() {
    // The sim models time; the real runtime computes values. Both must
    // agree on *what* is computed: the sum over the same index set.
    let team = Team::new(4);
    for schedule in [
        Schedule::StaticBlock,
        Schedule::Dynamic(5),
        Schedule::Guided(3),
    ] {
        let real: u64 = team.parallel_for_reduce(0..12_345, schedule, Sum, |i| i as u64);
        assert_eq!(real, (0..12_345u64).sum::<u64>(), "{schedule:?}");
        let plan = plan_assignment(12_345, &CostModel::Uniform(1), schedule, 4);
        let planned: usize = plan.iter().flatten().map(|c| c.len()).sum();
        assert_eq!(planned, 12_345, "{schedule:?}");
    }
}

#[test]
fn virtual_speedup_follows_amdahl_with_low_serial_fraction() {
    let cost = CostModel::Uniform(2_000);
    let opts = SimOptions::default();
    let seq = simulate_sequential_loop(20_000, &cost, &opts) as f64;
    for threads in [2usize, 4] {
        let par = simulate_parallel_loop(20_000, &cost, Schedule::StaticBlock, threads, &opts);
        let measured = seq / par.cycles as f64;
        // The serial fraction implied by fork overhead is tiny, so the
        // measured speedup should exceed Amdahl at f = 5% and the
        // Karp-Flatt metric should be small.
        assert!(
            measured > amdahl_speedup(0.05, threads),
            "threads {threads}: measured {measured}"
        );
        assert!(karp_flatt(measured, threads) < 0.02);
    }
}

#[test]
fn oversubscription_shape_holds_across_backends() {
    // 5 threads on 4 cores: no gain over 4 threads, in simulation.
    let cost = CostModel::Uniform(2_000);
    let opts = SimOptions::default();
    let four = simulate_parallel_loop(20_000, &cost, Schedule::StaticBlock, 4, &opts);
    let five = simulate_parallel_loop(20_000, &cost, Schedule::StaticBlock, 5, &opts);
    assert!(five.cycles >= four.cycles);
    // The real runtime still computes the right answer with 5 threads.
    let team = Team::new(5);
    let sum: u64 = team.parallel_for_reduce(0..20_000, Schedule::StaticBlock, Sum, |i| i as u64);
    assert_eq!(sum, (0..20_000u64).sum::<u64>());
}

#[test]
fn drugsim_correctness_is_backend_independent() {
    use drugsim::{run, Approach, DrugDesignConfig};
    let cfg = DrugDesignConfig {
        num_ligands: 40,
        ..Default::default()
    };
    let seq = run(&cfg, Approach::Sequential, 1);
    for threads in [2usize, 4, 5] {
        for approach in [Approach::OpenMp, Approach::CxxThreads] {
            let r = run(&cfg, approach, threads);
            assert_eq!(r.best_score, seq.best_score, "{approach:?} t={threads}");
            assert_eq!(r.best_ligands, seq.best_ligands, "{approach:?} t={threads}");
        }
    }
}

#[test]
fn dynamic_scheduling_wins_on_skew_in_both_senses() {
    // Simulated time: dynamic beats static-block on a triangular load.
    let cost = CostModel::Linear { base: 5, slope: 5 };
    let opts = SimOptions::default();
    let stat = simulate_parallel_loop(8_000, &cost, Schedule::StaticBlock, 4, &opts);
    let dynamic = simulate_parallel_loop(8_000, &cost, Schedule::Dynamic(32), 4, &opts);
    assert!(dynamic.cycles < stat.cycles);
    // Real execution: both produce the same reduction value regardless.
    let team = Team::new(4);
    let a: u64 = team.parallel_for_reduce(0..8_000, Schedule::StaticBlock, Sum, |i| (i * i) as u64);
    let b: u64 = team.parallel_for_reduce(0..8_000, Schedule::Dynamic(32), Sum, |i| (i * i) as u64);
    assert_eq!(a, b);
}

#[test]
fn patternlet_race_and_machine_coherence_tell_the_same_story() {
    // The real-thread race demo loses updates (or at worst, on a
    // single-core host, serendipitously serialises); the simulated
    // machine shows the same contended address costing coherence
    // traffic. Both support the course's "scope matters" lesson.
    let outcome =
        parallel_rt::race::shared_counter_demo(4, 30_000, parallel_rt::race::FixStrategy::None);
    assert!(outcome.observed <= outcome.expected);

    use pi_sim::machine::Machine;
    use pi_sim::program::{Op, Program};
    let contended: Vec<Program> = (0..4)
        .map(|_| (0..100).map(|_| Op::AtomicRmw(0x40)).collect())
        .collect();
    let report = Machine::pi().run(contended);
    let invalidations: u64 = report
        .cache_stats
        .iter()
        .map(|s| s.invalidations_received)
        .sum();
    assert!(
        invalidations >= 90,
        "contended counter ping-pongs: {invalidations}"
    );
}
