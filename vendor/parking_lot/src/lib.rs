//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses* backed by `std::sync`
//! primitives. Semantics match parking_lot where the workspace relies on
//! them: locking never returns a poison error (a poisoned std lock is
//! unwrapped into its inner guard, mirroring parking_lot's
//! no-poisoning behaviour), and `Condvar::wait` takes `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock that does not poison.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard holds the lock")
    }
}

/// A reader–writer lock that does not poison.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        })
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        })
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and waits for a
    /// notification, reacquiring the lock before returning (parking_lot
    /// signature: the guard is borrowed mutably, not consumed).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard holds the lock");
        guard.0 = Some(match self.0.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
