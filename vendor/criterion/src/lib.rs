//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock measurement loop instead of criterion's statistics engine.
//!
//! CLI compatibility: `--test` runs every benchmark body exactly once
//! (compile-and-run smoke mode, as used in CI), `--bench` (which cargo
//! passes) is accepted and ignored, a positional argument filters
//! benchmarks by substring, and `--sample-size N` overrides the default
//! sample count. Unknown flags are ignored so cargo-bench invocations
//! never fail on harness arguments.
//!
//! Each measured benchmark prints one line:
//! `bench: <name> ... mean <t> (<samples> samples)` — the `simcore`
//! tooling and EXPERIMENTS.md describe how these feed BENCH_*.json.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// True in `--test` smoke mode: run the body once, skip timing.
    test_mode: bool,
    samples: usize,
    /// Mean wall-clock nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    measured_samples: usize,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock nanoseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and per-iteration estimate.
        let warm_start = Instant::now();
        black_box(routine());
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));
        // Budget ~300 ms per benchmark, capped by the sample count.
        let budget = Duration::from_millis(300);
        let affordable = (budget.as_nanos() / estimate.as_nanos()).max(1) as usize;
        let samples = self.samples.min(affordable).max(1);
        let start = Instant::now();
        for _ in 0..samples {
            black_box(routine());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / samples as f64;
        self.measured_samples = samples;
    }

    /// `iter_batched` compatibility shim: setup is re-run per iteration.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.iter(|| routine(setup()));
    }
}

/// Batch-size hint (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut default_samples = 20;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--sample-size" => {
                    if let Some(v) = args.next() {
                        if let Ok(n) = v.parse() {
                            default_samples = n;
                        }
                    }
                }
                "--bench" | "--profile-time" | "--verbose" | "--quiet" | "--noplot"
                | "--save-baseline" | "--baseline" | "--color" => {
                    // Flags cargo/criterion users pass; values (if any)
                    // are consumed where syntactically obvious.
                    if matches!(
                        arg.as_str(),
                        "--profile-time" | "--save-baseline" | "--baseline" | "--color"
                    ) {
                        args.next();
                    }
                }
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Criterion {
            filter,
            test_mode,
            default_samples,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            samples: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self, None, name, self.default_samples, f);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    name: &str,
    samples: usize,
    mut f: F,
) {
    let full_name = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if !criterion.matches(&full_name) {
        return;
    }
    let mut bencher = Bencher {
        test_mode: criterion.test_mode,
        samples,
        mean_ns: 0.0,
        measured_samples: 0,
    };
    f(&mut bencher);
    if criterion.test_mode {
        println!("bench: {full_name} ... ok (test mode)");
    } else {
        println!(
            "bench: {full_name} ... mean {} ({} samples)",
            format_ns(bencher.mean_ns),
            bencher.measured_samples
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = Some(samples);
        self
    }

    /// Measurement-time compatibility shim (the stub budgets wall clock
    /// internally).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Throughput annotation (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        run_one(self.criterion, Some(&self.name), &id.id, samples, f);
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I, D: ?Sized, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &D),
    {
        let id: BenchmarkId = id.into();
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        run_one(self.criterion, Some(&self.name), &id.id, samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Throughput annotation accepted by [`BenchmarkGroup::throughput`].
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_criterion() -> Criterion {
        Criterion {
            filter: None,
            test_mode: false,
            default_samples: 3,
        }
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = plain_criterion();
        let mut ran = 0u32;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        assert!(ran >= 2, "warm-up plus at least one sample");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
            default_samples: 50,
        };
        let mut group = c.benchmark_group("g");
        let mut ran = 0u32;
        group
            .sample_size(10)
            .bench_function("once", |b| b.iter(|| ran += 1));
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("match_me".into()),
            test_mode: true,
            default_samples: 1,
        };
        let mut ran = 0u32;
        c.bench_function("other", |b| b.iter(|| ran += 1));
        c.bench_function("yes_match_me", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut c = plain_criterion();
        let mut group = c.benchmark_group("g");
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("in", 7), &7usize, |b, &v| {
            b.iter(|| seen = v)
        });
        assert_eq!(seen, 7);
    }
}
