//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides exactly what the workspace uses: [`rngs::SmallRng`] seeded
//! via [`SeedableRng::seed_from_u64`], [`Rng::gen`] for floats,
//! [`Rng::gen_range`] over integer/float ranges, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ with a
//! splitmix64 seeding routine — deterministic for a given seed on every
//! host, which is all the workspace's seeded workload generators need.
//! The stream differs from upstream rand's SmallRng; everything in the
//! repo derives its data from explicit seeds, so only determinism (not
//! the exact stream) matters.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits (the implicit
/// `Standard` distribution of rand 0.8).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable uniformly from a range. Mirrors rand's
/// `SampleUniform` so that blanket `SampleRange` impls keep type
/// inference flowing from the use site (e.g. a slice index forces
/// `usize`) into the range literals, exactly as the real crate does.
pub trait SampleUniform: Sized {
    /// Draws one value from a half-open range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;

    /// Draws one value from an inclusive range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_inclusive<R: RngCore + ?Sized>(range: RangeInclusive<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(range: Range<$t>, rng: &mut R) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(
                range: RangeInclusive<$t>,
                rng: &mut R,
            ) -> $t {
                let (lo, hi) = (*range.start(), *range.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<f64>, rng: &mut R) -> f64 {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(range: RangeInclusive<f64>, rng: &mut R) -> f64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(self, rng)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (rand's `Standard`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling (subset of rand's `SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Rough equivalent of `rand::thread_rng` seeded from the system clock —
/// provided for completeness; the workspace always seeds explicitly.
pub fn thread_rng() -> rngs::SmallRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    <rngs::SmallRng as SeedableRng>::seed_from_u64(nanos)
}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u8 = rng.gen_range(0..26u8);
            assert!(x < 26);
            let y = rng.gen_range(3..=9usize);
            assert!((3..=9).contains(&y));
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean ≈ 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never stay put");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
