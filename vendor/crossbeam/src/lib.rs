//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — an unbounded multi-producer
//! multi-consumer FIFO with the same disconnect semantics the workspace
//! relies on: `recv` drains remaining messages after all senders drop
//! and only then reports disconnection, and `send` fails once every
//! receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            match self.state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Inner<T>>);
    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message. Like the real crate, `Debug` is
    /// implemented for every `T` (the payload is elided) so callers can
    /// `.expect()` sends of non-Debug values.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }
    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver has dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Receivers blocked in recv must observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders drop (remaining
        /// queued messages are still delivered first).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.0.ready.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.lock();
            if let Some(v) = st.queue.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = match self.0.ready.wait_timeout(st, deadline - now) {
                    Ok(r) => r,
                    Err(poisoned) => poisoned.into_inner(),
                };
                st = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().receivers -= 1;
        }
    }

    /// Draining iterator: yields until the channel is empty *and*
    /// disconnected.
    pub struct IntoIter<T>(Receiver<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter(self)
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            Iter(self)
        }
    }

    /// Borrowing variant of [`IntoIter`].
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn try_recv_distinguishes_empty_and_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }

        #[test]
        fn mpmc_across_threads_delivers_everything() {
            let (tx, rx) = unbounded::<usize>();
            let total = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|s| {
                for t in 0..4 {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..100 {
                            tx.send(t * 100 + i).unwrap();
                        }
                    });
                }
                drop(tx);
                for _ in 0..4 {
                    let rx = rx.clone();
                    let total = &total;
                    s.spawn(move || {
                        while rx.recv().is_ok() {
                            total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 400);
        }

        #[test]
        fn into_iter_drains() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let all: Vec<i32> = rx.into_iter().collect();
            assert_eq!(all, vec![0, 1, 2, 3, 4]);
        }
    }
}
