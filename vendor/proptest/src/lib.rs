//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]`
//! attribute, `x in <strategy>` bindings, [`prop_assert!`] /
//! [`prop_assert_eq!`], numeric-range strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, and string strategies for simple character-class
//! regexes like `"[a-d]{0,12}"`.
//!
//! Differences from upstream proptest, by design:
//! - **No shrinking.** A failing case reports its case number and the
//!   seed so it can be re-run, but is not minimised.
//! - **Deterministic seeding.** Each test derives its seed from the test
//!   name (override with `PROPTEST_SEED`), so runs are reproducible
//!   without a persistence file.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a 64-bit value via splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [lo, hi).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Constant strategy: always yields a clone of the value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String strategies from simple character-class regexes.
///
/// Supports exactly the shapes the workspace uses: a concatenation of
/// `[<chars or ranges>]{lo,hi}`, `[...]{n}`, `[...]*` (0..=8), `[...]+`
/// (1..=8), a bare `[...]` (one char), and literal characters.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut class = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        for c in lo..=hi {
                            class.push(char::from_u32(c).expect("valid char"));
                        }
                        j += 3;
                    } else {
                        class.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!class.is_empty(), "empty class in {pattern:?}");
                i = close + 1;
                // Optional repetition suffix.
                let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("repetition lower bound"),
                            hi.trim().parse().expect("repetition upper bound"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("repetition count");
                            (n, n)
                        }
                    }
                } else if i < chars.len() && chars[i] == '*' {
                    i += 1;
                    (0, 8)
                } else if i < chars.len() && chars[i] == '+' {
                    i += 1;
                    (1, 8)
                } else {
                    (1, 1)
                };
                let n = if lo == hi {
                    lo
                } else {
                    rng.usize_in(lo, hi + 1)
                };
                for _ in 0..n {
                    out.push(class[rng.usize_in(0, class.len())]);
                }
            }
            '\\' => {
                i += 1;
                if i < chars.len() {
                    out.push(chars[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

pub mod strategy {
    pub use crate::Strategy;

    /// Boxed strategy alias (the stub never boxes, but the name is
    /// commonly imported).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut crate::TestRng) -> T {
            (**self).sample(rng)
        }
    }
}

pub mod test_runner {
    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!` and friends.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// FNV-1a over the test name: the default per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse() {
                return v;
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// `ProptestConfig` alias matching `proptest::prelude`.
pub use test_runner::Config as ProptestConfig;

// Tuple strategies, as in real proptest: a tuple of strategies samples a
// tuple of values, one component at a time in order.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
            self.4.sample(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy> Strategy
    for (A, B, C, D, E, F)
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
            self.4.sample(rng),
            self.5.sample(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy, G: Strategy>
    Strategy for (A, B, C, D, E, F, G)
{
    type Value = (
        A::Value,
        B::Value,
        C::Value,
        D::Value,
        E::Value,
        F::Value,
        G::Value,
    );
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
            self.4.sample(rng),
            self.5.sample(rng),
            self.6.sample(rng),
        )
    }
}

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s whose length is drawn from `len` and
        /// whose elements come from `element`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.usize_in(self.len.start, self.len.end);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    pub mod num {
        /// Marker module kept for import compatibility.
        pub mod f64 {}
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::BoxedStrategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy, TestRng};
}

/// Asserts a condition inside a property; on failure the current case
/// (not the whole process) fails with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: both sides = {:?}", a);
    }};
}

/// Declares property tests. Each `#[test] fn name(x in strategy, ...)`
/// becomes a normal `#[test]` running `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let seed = $crate::test_runner::seed_for(stringify!($name));
                let mut rng = $crate::TestRng::seed_from_u64(seed);
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{} (seed {}): {}",
                            stringify!($name), case + 1, config.cases, seed, e,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_sampling() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-d]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
        let fixed = Strategy::sample(&"[xy]{4}", &mut rng);
        assert_eq!(fixed.len(), 4);
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..500 {
            let n: usize = Strategy::sample(&(0usize..500), &mut rng);
            assert!(n < 500);
            let f: f64 = Strategy::sample(&(-1e3..1e3f64), &mut rng);
            assert!((-1e3..1e3).contains(&f));
            let v = Strategy::sample(&prop::collection::vec(1u64..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| (1..10).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a + b <= 198);
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #[test]
        fn default_config_macro_arm(x in prop::bool::ANY, v in prop::collection::vec(0u32..4, 1..4)) {
            prop_assert!(usize::from(x) <= 1);
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_context() {
        // No `#[test]` on the inner item: nested test functions cannot
        // be collected by the harness and rustc warns on them.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner_always_fails(_x in 0u8..4) {
                prop_assert!(false, "deliberate");
            }
        }
        inner_always_fails();
    }
}
