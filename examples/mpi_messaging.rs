//! The module's future-work extension (§V): distributed memory with
//! message passing. Runs the "Getting Started with MPI" patternlets and
//! the OpenMP-vs-MPI-vs-MapReduce comparison from Assignment 5.
//!
//! ```text
//! cargo run --example mpi_messaging
//! ```

use mpi_rt::memory_models::Model;
use mpi_rt::patternlets::{distributed_sum, master_worker_messages, rank_hello, ring_pass};
use mpi_rt::run;
use pbl::prelude::*;

fn main() {
    println!("== Rank hello (MPI_Comm_rank / MPI_Comm_size) ==");
    for line in rank_hello(4) {
        println!("  {line}");
    }

    println!("\n== Ring pass ==");
    println!("  token visited ranks {:?}", ring_pass(6));

    println!("\n== Distributed sum (scatter + local work + reduce) ==");
    let data: Vec<u64> = (1..=1000).collect();
    let (parallel, sequential) = distributed_sum(data, 4);
    println!(
        "  parallel {parallel} == sequential {sequential}: {}",
        parallel == sequential
    );

    println!("\n== Master-worker over messages ==");
    let per_worker = master_worker_messages(24, 5);
    println!("  tasks per rank (rank 0 is the master): {per_worker:?}");

    println!("\n== Collectives in one program ==");
    let results = run(4, |rank| {
        // Root broadcasts a config value, everyone contributes to an
        // allreduce, and the root gathers the per-rank summaries.
        let base = if rank.is_root() {
            rank.broadcast(0, Some(10u64))
        } else {
            rank.broadcast::<u64>(0, None)
        };
        let total = rank.allreduce(base + rank.rank() as u64, |a, b| a + b);
        rank.gather(0, format!("rank {} saw total {}", rank.rank(), total))
    });
    for line in results.into_iter().flatten().flatten() {
        println!("  {line}");
    }

    println!("\n== When to use which model (Assignment 5) ==");
    for model in [Model::OpenMp, Model::Mpi, Model::MapReduce] {
        println!("  {model:?} ({:?} memory):", model.memory());
        println!("    use when {}", model.when_to_use());
        println!("    data movement is {}", model.data_movement());
    }
    let [openmp, mpi, mapreduce] =
        mpi_rt::memory_models::sum_three_ways(&(1..=500).collect::<Vec<u64>>(), 4);
    println!(
        "\n  the same sum three ways: OpenMP {openmp}, MPI {mpi}, MapReduce {mapreduce} — all equal: {}",
        openmp == mpi && mpi == mapreduce
    );
}
