//! Assignment 2's hardware exploration, on the simulated Pi: identify
//! the SoC components, set up and boot the board, compare ARM with x86,
//! and watch cache coherence make a shared counter expensive.
//!
//! ```text
//! cargo run --example pi_exploration
//! ```

use pbl::prelude::*;
use pi_sim::boot::{PiSetup, SdCard};
use pi_sim::isa::{compare_program, AbstractInsn, IsaFamily};
use pi_sim::machine::Machine;
use pi_sim::program::Program;
use pi_sim::soc::{PiModel, SocSpec};

fn main() {
    println!("== Identify the components (Assignment 2, Q1) ==\n");
    for model in [PiModel::ModelBPlus, PiModel::Pi3BPlus] {
        let spec = model.spec();
        println!("{spec}");
        for c in &spec.components {
            println!(
                "  {:<24} {} [{}]",
                c.name,
                c.description,
                if c.on_die {
                    "on the SoC die"
                } else {
                    "board part"
                }
            );
        }
        println!(
            "  -> is a SoC: {}; supports the parallel exercises: {}\n",
            spec.is_soc(),
            spec.supports_parallel_exercises()
        );
    }
    println!("Advantages of a SoC over discrete parts:");
    for a in SocSpec::soc_advantages() {
        println!("  - {a}");
    }

    println!("\n== Set up and boot (Assignment 2, setup steps) ==\n");
    let mut pi = PiSetup::new();
    pi.insert_card(SdCard::Blank);
    println!("boot with a blank card: {:?}", pi.boot().unwrap_err());
    pi.flash_raspbian(false).expect("flash succeeds");
    pi.connect_display();
    pi.connect_keyboard();
    println!(
        "after flashing RASPBIAN: booted to {:?}",
        pi.boot().unwrap()
    );
    for (step, done) in pi.checklist() {
        println!("  [{}] {step}", if done { "x" } else { " " });
    }

    println!("\n== ARM (RISC) vs x86 (CISC) ==\n");
    let program = vec![
        AbstractInsn::LoadImmediate { value: 0x1234_5678 },
        AbstractInsn::LoadMemory,
        AbstractInsn::AddMemoryOperand,
        AbstractInsn::AddRegisters,
        AbstractInsn::StoreMemory,
        AbstractInsn::Branch,
    ];
    for isa in [IsaFamily::Arm, IsaFamily::X86] {
        let cmp = compare_program(&program, isa);
        println!(
            "{:?}: {} instructions, {} bytes, {} memory-touching, fixed-width: {}",
            isa, cmp.instructions, cmp.bytes, cmp.memory_touching, cmp.fixed_width
        );
        for topic in ["data_movement", "encoding", "immediates"] {
            println!("  {topic}: {}", pi_sim::isa::isa_fact(isa, topic).unwrap());
        }
    }

    println!("\n== Cache coherence: why the shared counter is slow ==\n");
    let shared: Vec<Program> = (0..4)
        .map(|_| {
            (0..200)
                .map(|_| pi_sim::program::Op::AtomicRmw(0x100))
                .collect()
        })
        .collect();
    let disjoint: Vec<Program> = (0..4u64)
        .map(|t| {
            (0..200)
                .map(|_| pi_sim::program::Op::AtomicRmw(0x100 + t * 4096))
                .collect()
        })
        .collect();
    let rs = Machine::pi().run(shared);
    let rd = Machine::pi().run(disjoint);
    println!(
        "four cores x 200 atomic increments: shared address {} cycles, \
         per-core addresses {} cycles ({:.1}x slower when contended)",
        rs.total_cycles,
        rd.total_cycles,
        rs.total_cycles as f64 / rd.total_cycles as f64
    );
    let invalidations: u64 = rs
        .cache_stats
        .iter()
        .map(|s| s.invalidations_received)
        .sum();
    println!("coherence invalidations during the contended run: {invalidations}");
}
