//! Visualising the schedule: ASCII Gantt charts of the virtual Pi
//! running the course's key scenarios — 4 vs 5 threads on 4 cores, and
//! static vs dynamic loop scheduling on skewed work.
//!
//! ```text
//! cargo run --example schedule_gantt
//! ```

use parallel_rt::sim::{plan_assignment, CostModel, SimOptions};
use parallel_rt::Schedule;
use pbl::prelude::*;
use pi_sim::machine::Machine;
use pi_sim::program::Program;

fn gantt_for_plan(
    iterations: usize,
    cost: &CostModel,
    schedule: Schedule,
    threads: usize,
) -> (u64, String) {
    let opts = SimOptions::default();
    let plan = plan_assignment(iterations, cost, schedule, threads);
    let programs: Vec<Program> = plan
        .iter()
        .map(|chunks| {
            let mut p = Program::new().compute(opts.fork_overhead);
            for chunk in chunks {
                let total: u64 = chunk.clone().map(|i| cost.cost(i)).sum();
                if total > 0 {
                    p = p.compute(total);
                }
            }
            p
        })
        .collect();
    let (report, trace) = Machine::new(opts.machine).run_traced(programs);
    (report.total_cycles, trace.render_gantt(4, 64))
}

fn main() {
    println!("== Four equal threads on four cores (perfect fit) ==");
    let (report, trace) =
        Machine::pi().run_traced((0..4).map(|_| Program::new().compute(400_000)).collect());
    println!("{}", trace.render_gantt(4, 64));
    println!(
        "makespan {} cycles; utilization {:?}\n",
        report.total_cycles,
        trace.utilization(4)
    );

    println!("== Five equal threads on four cores (the Assignment 5 question) ==");
    let (report, trace) =
        Machine::pi().run_traced((0..5).map(|_| Program::new().compute(400_000)).collect());
    println!("{}", trace.render_gantt(4, 64));
    println!(
        "makespan {} cycles — the fifth thread time-slices, so 5 threads \
         gain nothing over 4\n",
        report.total_cycles
    );

    println!("== Static block vs dynamic(16) on triangular work (10k iterations) ==");
    let skew = CostModel::Linear { base: 10, slope: 1 };
    for schedule in [Schedule::StaticBlock, Schedule::Dynamic(16)] {
        let (cycles, gantt) = gantt_for_plan(10_000, &skew, schedule, 4);
        println!("{schedule:?}: {cycles} cycles");
        println!("{gantt}");
    }
    println!(
        "Static block gives thread 3 the expensive tail iterations (its row \
         runs longest); dynamic chunks level the rows."
    );
}
