//! The Assignment 5 reading made executable: MapReduce jobs — word
//! count (with combiner), distributed grep, inverted index, URL access
//! counting — and the model's fault tolerance (failed map tasks
//! re-executed transparently).
//!
//! ```text
//! cargo run --example mapreduce_wordcount
//! ```

use mapreduce::examples::{Grep, InvertedIndex, UrlAccessCount, WordCount};
use mapreduce::{run_job, JobConfig};
use pbl::prelude::*;

fn main() {
    let docs: Vec<String> = vec![
        "OpenMP makes shared memory parallelism approachable".into(),
        "MapReduce scales data parallelism across a cluster".into(),
        "students compare OpenMP MPI and MapReduce".into(),
        "shared memory versus distributed memory shapes the choice".into(),
    ];

    // Word count, plain and with the combiner.
    let plain = run_job(&WordCount, docs.clone(), &JobConfig::default());
    let combined = run_job(
        &WordCount,
        docs.clone(),
        &JobConfig {
            use_combiner: true,
            ..JobConfig::default()
        },
    );
    println!("Word count (top terms):");
    let mut by_count = plain.results.clone();
    by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (word, count) in by_count.iter().take(6) {
        println!("  {word:<12} {count}");
    }
    println!(
        "combiner cut shuffle traffic from {} to {} pairs (results identical: {})\n",
        plain.stats.shuffled_pairs,
        combined.stats.shuffled_pairs,
        plain.results == combined.results
    );

    // Distributed grep.
    let indexed: Vec<(usize, String)> = docs.iter().cloned().enumerate().collect();
    let grep = run_job(
        &Grep {
            pattern: "memory".into(),
        },
        indexed.clone(),
        &JobConfig::default(),
    );
    println!(
        "Grep for \"memory\" found {} matching lines:",
        grep.results.len()
    );
    for (line, docs) in &grep.results {
        println!("  {line:?} in documents {docs:?}");
    }

    // Inverted index.
    let index = run_job(&InvertedIndex, indexed, &JobConfig::default());
    println!("\nInverted index (selected postings):");
    for term in ["openmp", "mapreduce", "memory"] {
        if let Some((_, posting)) = index.results.iter().find(|(k, _)| k == term) {
            println!("  {term:<10} -> {posting:?}");
        }
    }

    // URL access counts from a toy log.
    let log: Vec<String> = vec![
        "GET /index.html".into(),
        "GET /syllabus.html".into(),
        "GET /index.html".into(),
        "POST /submit".into(),
        "GET /index.html".into(),
    ];
    let urls = run_job(&UrlAccessCount, log, &JobConfig::default());
    println!("\nURL access counts:");
    for (url, n) in &urls.results {
        println!("  {url:<16} {n}");
    }

    // Fault tolerance: crash two map tasks; results must be unchanged.
    let faulty = run_job(
        &WordCount,
        docs,
        &JobConfig {
            fail_first_attempt_of: [0usize, 1].into_iter().collect(),
            ..JobConfig::default()
        },
    );
    println!(
        "\nFault tolerance: {} map failures, {} attempts, results identical: {}",
        faulty.stats.map_failures,
        faulty.stats.map_attempts,
        faulty.results == plain.results
    );
}
