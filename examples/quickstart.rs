//! Quickstart: simulate the Fall-2018 study and reproduce the paper's
//! headline statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pbl::prelude::*;
use pbl_core::{experiments, hypotheses, PblStudy};

fn main() {
    // One call runs the whole study: generate the 124-student cohort,
    // form the 26 teams, administer both survey waves, and compute
    // every statistic in the paper's evaluation.
    let report = PblStudy::new().run();

    println!("== The three headline artefacts ==\n");
    print!("{}", experiments::table1(&report).render_ascii());
    print!("{}", experiments::table2(&report).render_ascii());
    print!("{}", experiments::table3(&report).render_ascii());

    println!("\n== Hypothesis verdicts ==");
    for v in hypotheses::evaluate_all(&report) {
        println!(
            "H{} {}: {}",
            v.hypothesis,
            if v.supported {
                "supported"
            } else {
                "NOT supported"
            },
            v.evidence
        );
    }

    println!(
        "\nCohort: {} students in {} teams; see `cargo run -p pbl-bench --bin report` \
         for Tables 4-6, both figures, and the Assignment 5 timing study.",
        report.cohort.n(),
        report.cohort.teams.len()
    );
}
