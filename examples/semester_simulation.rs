//! A full semester walk-through: the module design (timeline,
//! technologies, assignments, grading), team formation over the
//! demographically matched cohort, and both survey administrations —
//! ending with the course-design gap analysis from the paper's
//! Discussion section.
//!
//! ```text
//! cargo run --example semester_simulation
//! ```

use classroom::assignment::{assignments, Focus, GradingPolicy};
use classroom::roster::gender_counts;
use classroom::team::balance_report;
use pbl::prelude::*;
use pbl_core::module::{presentation_guide, Technology, PI_KIT_COST_USD};
use pbl_core::{experiments, PblStudy};

fn main() {
    println!("== Module design ==\n");
    print!("{}", classroom::timeline::render_timeline());

    println!("\nTeamwork technologies (all free to students):");
    for t in Technology::all() {
        println!("  {:?}: {}", t, t.role());
    }
    println!("\nVideo presentation guide (5-10 minutes, everyone appears):");
    for (i, p) in presentation_guide().iter().enumerate() {
        println!("  {}. {p}", i + 1);
    }

    println!("\nAssignments (each team gets a ${PI_KIT_COST_USD} Raspberry Pi kit):");
    for a in assignments() {
        println!(
            "  A{} [{}]: {} tasks, {} materials",
            a.number,
            match a.focus {
                Focus::SoftSkills => "soft skills",
                Focus::TechnicalSkills => "technical",
            },
            a.tasks.len(),
            a.materials.len()
        );
    }
    let policy = GradingPolicy::default();
    println!(
        "\nGrading: module is {:.0}% of the course, {:.0}% per assignment; \
         non-cooperation earns a zero.",
        policy.module_weight * 100.0,
        policy.per_assignment_weight * 100.0
    );

    println!("\n== Running the semester ==\n");
    let report = PblStudy::new().run();
    let (male, female) = gender_counts(&report.cohort.students);
    println!(
        "Enrolled {} students ({male} male, {female} female) in 2 sections.",
        report.cohort.n()
    );
    let balance = balance_report(&report.cohort.students, &report.cohort.teams);
    println!(
        "Formed {} teams (sizes {}-{}), {} containing women, ability spread {:.3}.",
        report.cohort.teams.len(),
        balance.min_size,
        balance.max_size,
        balance.teams_with_women,
        balance.ability_spread
    );

    println!("\n== A team works Assignment 2 ==\n");
    let team = &report.cohort.teams[0];
    let collab =
        classroom::collaboration::simulate_collaboration(team, &report.cohort.students, 2, 7, None);
    println!(
        "Team {} activity: {} total contribution units, balance {:.2}, everyone on video: {}",
        team.id,
        collab.total_contribution().round(),
        collab.balance(),
        collab.everyone_on_video()
    );
    let rubric = classroom::rubric::standard_rubric(2);
    let grade = rubric.grade(&classroom::rubric::Scoring {
        levels: vec![0, 1, 0, 1], // exemplary plan/report, proficient elsewhere
    });
    println!("Rubric grade: {:.0}%", grade.total * 100.0);
    for (criterion, level, earned) in &grade.feedback {
        println!("  {criterion}: {level} (+{:.2})", earned);
    }
    let ratings = collab.peer_ratings();
    let grades = classroom::assignment::individual_grades(
        grade.total * 100.0,
        &team.members,
        &ratings,
        50.0,
    );
    println!(
        "Peer ratings keep all {} members at the team grade: {}",
        grades.len(),
        grades.iter().all(|&(_, g)| g > 0.0)
    );

    println!("\n== Outcomes ==\n");
    print!("{}", experiments::table5(&report).render_ascii());
    print!("{}", experiments::table6(&report).render_ascii());
    print!("{}", experiments::gap_analysis(&report).render_ascii());
    println!(
        "\nDiscussion: the only near-zero gap is Implementation in the second half —\n\
         students built four parallel programs there versus one in the first half."
    );
}
