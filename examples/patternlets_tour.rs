//! A tour of the Assignments 2–4 patternlets: every program the course
//! has teams create, compile, run, and modify, executed on the
//! OpenMP-like runtime with its teaching point demonstrated.
//!
//! ```text
//! cargo run --example patternlets_tour
//! ```

use parallel_rt::Schedule;
use patternlets::catalog::{catalog, Assignment};
use patternlets::{
    barrier_demo, forkjoin, private_shared, reduction_demo, schedule_demo, spmd, trapezoid,
};
use pbl::prelude::*;

fn main() {
    println!("== Assignment 2: fork-join, SPMD, scope matters ==\n");
    let trace = forkjoin::run(4);
    for e in trace.into_events() {
        let who = if e.thread == usize::MAX {
            "master".to_string()
        } else {
            format!("thread {}", e.thread)
        };
        println!("  [{:<10}] {:<12} {}", who, e.phase, e.message);
    }

    let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
    let (slices, total) = spmd::run(&data, 4);
    println!("\n  SPMD: each thread owns a slice of shared memory:");
    for s in &slices {
        println!(
            "    thread {}/{} owns {:?} (partial sum {})",
            s.thread, s.num_threads, s.range, s.partial_sum
        );
    }
    println!("    total = {total}");

    let scope = private_shared::run(2_000, 4);
    println!(
        "\n  Scope matters: private indices covered {} iterations exactly once;\n  \
         a shared index produced {} anomalies (duplicated or skipped cells).",
        scope.private_index_iterations, scope.shared_index_anomalies
    );
    for outcome in private_shared::race_comparison(4, 20_000) {
        println!(
            "    {:?}: expected {}, observed {} (lost {})",
            outcome.strategy,
            outcome.expected,
            outcome.observed,
            outcome.lost_updates()
        );
    }

    println!("\n== Assignment 3: parallel loops and scheduling ==\n");
    for schedule in [
        Schedule::StaticBlock,
        Schedule::StaticChunk(1),
        Schedule::StaticChunk(2),
        Schedule::StaticChunk(3),
        Schedule::Dynamic(2),
    ] {
        let map = schedule_demo::run(16, 4, schedule);
        println!("  {schedule:?}: owners {:?}", map.owner);
    }
    let demo = reduction_demo::run(1_000_000, 4);
    println!(
        "\n  reduction clause: parallel sum {} == sequential {}",
        demo.with_reduction, demo.sequential
    );

    println!("\n== Assignment 4: trapezoid, barrier, master-worker ==\n");
    let integral = trapezoid::integrate_parallel(f64::sin, 0.0, std::f64::consts::PI, 1 << 16, 4);
    println!(
        "  trapezoid: integral of sin over [0, pi] with {} trapezoids on {} threads = {:.6}",
        integral.trapezoids, integral.threads, integral.value
    );
    let trace = barrier_demo::run(4);
    println!(
        "  barrier: before-phase strictly precedes after-phase: {}",
        trace.phase_precedes("before-barrier", "after-barrier")
    );
    let mw = patternlets::masterworker_demo::run(&[8, 1, 6, 2, 9, 3, 7, 4], 3);
    println!(
        "  master-worker: {} tasks balanced over workers as {:?}",
        mw.results.len(),
        mw.stats.tasks_per_worker
    );

    println!("\n== Catalogue ==");
    for p in catalog() {
        println!(
            "  [{}] {:<16} {} — {}",
            match p.assignment {
                Assignment::A2 => "A2",
                Assignment::A3 => "A3",
                Assignment::A4 => "A4",
            },
            p.name,
            p.concept,
            (p.smoke)()
        );
    }
}
