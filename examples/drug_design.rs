//! Assignment 5 end to end: the drug-design exemplar solved three ways,
//! timed on the virtual quad-core Pi, with the 5-thread and
//! ligand-length-7 sweeps, plus the DNA variant.
//!
//! ```text
//! cargo run --example drug_design
//! ```

use drugsim::dna::{self, DnaConfig};
use drugsim::{assignment5_report, generate_ligands, run, Approach, DrugDesignConfig};
use pbl::prelude::*;

fn main() {
    let config = DrugDesignConfig::default();
    let ligands = generate_ligands(&config);
    println!(
        "Scoring {} candidate ligands (length <= {}) against a {}-character protein.\n",
        ligands.len(),
        config.max_ligand_len,
        config.protein.len()
    );

    // Correctness: all three implementations must find the same winners.
    let seq = run(&config, Approach::Sequential, 1);
    let omp = run(&config, Approach::OpenMp, 4);
    let cxx = run(&config, Approach::CxxThreads, 4);
    println!(
        "best score: {} (all approaches agree: {})",
        seq.best_score,
        seq.best_ligands == omp.best_ligands && seq.best_ligands == cxx.best_ligands
    );
    for &idx in seq.best_ligands.iter().take(5) {
        println!("  winning ligand #{idx}: {:?}", ligands[idx]);
    }

    // The assignment's measurement table, in deterministic virtual time.
    println!("\nWhich approach is fastest? (virtual quad-core Pi)\n");
    println!(
        "{:<14} {:>7} {:>8} {:>12} {:>8} {:>5}",
        "approach", "threads", "max_len", "cycles", "speedup", "LoC"
    );
    for row in assignment5_report(&config) {
        println!(
            "{:<14} {:>7} {:>8} {:>12} {:>8.2} {:>5}",
            row.approach.name(),
            row.threads,
            row.max_ligand_len,
            row.sim_cycles,
            row.speedup_vs_sequential,
            row.lines_of_code
        );
    }
    println!(
        "\nObservations the students report: OpenMP and C++11 threads tie near 4x;\n\
         5 threads on 4 cores helps nothing; ligand length 7 grows the work superlinearly;\n\
         the sequential program is the shortest, the raw-threads one the longest."
    );

    // The DNA companion problem.
    let workload = dna::generate(&DnaConfig::default());
    let scores = dna::score_reads_parallel(&workload, 4);
    let best = dna::best_alignment(&workload, 4);
    let fragments: Vec<usize> = scores.iter().copied().step_by(2).collect();
    let randoms: Vec<usize> = scores.iter().copied().skip(1).step_by(2).collect();
    println!(
        "\nDNA: {} reads vs a {}-base reference; best alignment {} / {}.",
        workload.reads.len(),
        workload.reference.len(),
        best,
        workload.reads[0].len()
    );
    println!(
        "  true fragments average {:.1}, random reads {:.1} — alignment separates them.",
        fragments.iter().sum::<usize>() as f64 / fragments.len() as f64,
        randoms.iter().sum::<usize>() as f64 / randoms.len() as f64
    );
}
