//! Running the study end to end: simulate the semester, administer both
//! survey waves, and compute every statistic the paper reports.

use classroom::response::Category;
use classroom::{CohortData, Element, StudyConfig, ALL_ELEMENTS};
use stats::{
    cohen_d_independent, pearson, rank_scores, t_test_paired, CohensD, PearsonResult, RankedItem,
    TTestResult,
};

/// The study runner.
#[derive(Debug, Clone, Default)]
pub struct PblStudy {
    config: StudyConfig,
}

/// One element's Table 4 row: both halves' correlations.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationRow {
    /// The element.
    pub element: Element,
    /// First-half correlation (emphasis ↔ growth).
    pub first_half: PearsonResult,
    /// Second-half correlation.
    pub second_half: PearsonResult,
}

/// Everything the paper's evaluation reports, computed on the simulated
/// cohort.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// The underlying dataset.
    pub cohort: CohortData,
    /// Table 1, row 1: paired t-test on class emphasis.
    pub emphasis_ttest: TTestResult,
    /// Table 1, row 2: paired t-test on personal growth.
    pub growth_ttest: TTestResult,
    /// Table 2: Cohen's d of course emphasis.
    pub emphasis_d: CohensD,
    /// Table 3: Cohen's d of personal growth.
    pub growth_d: CohensD,
    /// Table 4: per-element correlations.
    pub correlations: Vec<CorrelationRow>,
    /// Table 5: course-emphasis rankings (wave 1, wave 2).
    pub emphasis_ranking: (Vec<RankedItem>, Vec<RankedItem>),
    /// Table 6: personal-growth rankings (wave 1, wave 2).
    pub growth_ranking: (Vec<RankedItem>, Vec<RankedItem>),
}

impl PblStudy {
    /// A study with the paper's cohort (124 students) and default seed.
    pub fn new() -> Self {
        Self::default()
    }

    /// A study with an explicit configuration.
    pub fn with_config(config: StudyConfig) -> Self {
        PblStudy { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Runs `n` independent replicates of the study on up to `threads`
    /// OS threads via the replication engine, in replicate order.
    ///
    /// The configured seed acts as the master seed: replicate `i` runs
    /// on the seed-split stream seed for `i`, so the batch is
    /// bit-identical for every thread count. For the resampling
    /// robustness battery across a batch, see
    /// [`crate::replicate::run_replication`].
    pub fn run_batch(&self, n: usize, threads: usize) -> Vec<StudyReport> {
        let config = self.config.clone();
        ::replicate::ReplicationEngine::new(threads).run(n, config.seed, move |ctx| {
            PblStudy::with_config(StudyConfig {
                num_students: config.num_students,
                seed: ctx.seed,
            })
            .run()
        })
    }

    /// Simulates the semester and computes every reported statistic.
    pub fn run(&self) -> StudyReport {
        let cohort = CohortData::generate(&self.config);
        let e1 = cohort.student_scores(Category::ClassEmphasis, 1);
        let e2 = cohort.student_scores(Category::ClassEmphasis, 2);
        let g1 = cohort.student_scores(Category::PersonalGrowth, 1);
        let g2 = cohort.student_scores(Category::PersonalGrowth, 2);

        let emphasis_ttest = t_test_paired(&e1, &e2).expect("cohort has variance");
        let growth_ttest = t_test_paired(&g1, &g2).expect("cohort has variance");
        let emphasis_d = cohen_d_independent(&e1, &e2).expect("cohort has variance");
        let growth_d = cohen_d_independent(&g1, &g2).expect("cohort has variance");

        let correlations = ALL_ELEMENTS
            .iter()
            .enumerate()
            .map(|(idx, &element)| CorrelationRow {
                element,
                first_half: pearson(
                    &cohort.wave(1).element_scores(Category::ClassEmphasis, idx),
                    &cohort.wave(1).element_scores(Category::PersonalGrowth, idx),
                )
                .expect("element scores vary"),
                second_half: pearson(
                    &cohort.wave(2).element_scores(Category::ClassEmphasis, idx),
                    &cohort.wave(2).element_scores(Category::PersonalGrowth, idx),
                )
                .expect("element scores vary"),
            })
            .collect();

        let ranking = |category: Category, wave: usize| -> Vec<RankedItem> {
            let labelled: Vec<(&str, f64)> = ALL_ELEMENTS
                .iter()
                .enumerate()
                .map(|(idx, &e)| {
                    let scores = cohort.wave(wave).element_scores(category, idx);
                    (e.label(), scores.iter().sum::<f64>() / scores.len() as f64)
                })
                .collect();
            rank_scores(&labelled).expect("seven elements")
        };

        StudyReport {
            emphasis_ranking: (
                ranking(Category::ClassEmphasis, 1),
                ranking(Category::ClassEmphasis, 2),
            ),
            growth_ranking: (
                ranking(Category::PersonalGrowth, 1),
                ranking(Category::PersonalGrowth, 2),
            ),
            cohort,
            emphasis_ttest,
            growth_ttest,
            emphasis_d,
            growth_d,
            correlations,
        }
    }
}

impl StudyReport {
    /// Mean element score across students, for `element` on `category`
    /// in `wave` — the Tables 5/6 cell.
    pub fn element_mean(&self, category: Category, element: Element, wave: usize) -> f64 {
        let idx = ALL_ELEMENTS
            .iter()
            .position(|&e| e == element)
            .expect("known element");
        let scores = self.cohort.wave(wave).element_scores(category, idx);
        scores.iter().sum::<f64>() / scores.len() as f64
    }

    /// The emphasis − growth gap for an element in a wave, which
    /// Beyerlein et al. say should trigger redesign only above 0.2.
    pub fn emphasis_growth_gap(&self, element: Element, wave: usize) -> f64 {
        self.element_mean(Category::ClassEmphasis, element, wave)
            - self.element_mean(Category::PersonalGrowth, element, wave)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::EffectSizeBand;

    fn report() -> StudyReport {
        PblStudy::new().run()
    }

    #[test]
    fn table1_shape_both_tests_significant_and_positive() {
        let r = report();
        // Our convention is second − first, so the differences are
        // positive (the paper prints first − second, negative).
        assert!(r.emphasis_ttest.mean_difference > 0.0);
        assert!(r.growth_ttest.mean_difference > 0.0);
        assert!(
            r.emphasis_ttest.significant_at(0.05),
            "{:?}",
            r.emphasis_ttest
        );
        assert!(r.growth_ttest.significant_at(0.05), "{:?}", r.growth_ttest);
        assert_eq!(r.emphasis_ttest.n, 124);
        // Growth moved more than emphasis, as published (0.20 vs 0.10).
        assert!(r.growth_ttest.mean_difference > r.emphasis_ttest.mean_difference);
    }

    #[test]
    fn table1_magnitudes_near_published() {
        let r = report();
        assert!(
            (r.emphasis_ttest.mean_difference - 0.10).abs() < 0.05,
            "emphasis diff {}",
            r.emphasis_ttest.mean_difference
        );
        assert!(
            (r.growth_ttest.mean_difference - 0.20).abs() < 0.06,
            "growth diff {}",
            r.growth_ttest.mean_difference
        );
    }

    #[test]
    fn table2_medium_effect_on_emphasis() {
        let r = report();
        let d = r.emphasis_d.d;
        assert!(d > 0.25 && d < 0.75, "d = {d}");
        assert!((r.emphasis_d.mean_first - 4.023).abs() < 0.06);
        assert!((r.emphasis_d.mean_second - 4.124).abs() < 0.06);
    }

    #[test]
    fn table3_large_effect_on_growth() {
        let r = report();
        let d = r.growth_d.d;
        assert!(d > 0.6, "d = {d} should be a large-ish effect");
        assert_eq!(EffectSizeBand::classify(d.max(0.8)), EffectSizeBand::Large);
        assert!((r.growth_d.mean_first - 3.81).abs() < 0.07);
        assert!((r.growth_d.mean_second - 4.01).abs() < 0.07);
        // Growth effect exceeds emphasis effect, as published.
        assert!(r.growth_d.d > r.emphasis_d.d);
    }

    #[test]
    fn table4_all_correlations_positive_and_significant() {
        let r = report();
        assert_eq!(r.correlations.len(), 7);
        for row in &r.correlations {
            for half in [&row.first_half, &row.second_half] {
                assert!(half.r > 0.0, "{:?}", row.element);
                assert!(
                    half.p_two_sided < 0.001,
                    "{:?}: p {}",
                    row.element,
                    half.p_two_sided
                );
            }
        }
    }

    #[test]
    fn table4_strongest_is_evaluation_weakest_is_first_half_teamwork() {
        let r = report();
        let by_element = |e: Element| {
            r.correlations
                .iter()
                .find(|c| c.element == e)
                .expect("present")
        };
        let teamwork = by_element(Element::Teamwork);
        let edm = by_element(Element::EvaluationAndDecisionMaking);
        // First-half Teamwork is the weakest correlation of all 14.
        let min_first = r
            .correlations
            .iter()
            .flat_map(|c| [c.first_half.r, c.second_half.r])
            .fold(f64::MAX, f64::min);
        assert!((teamwork.first_half.r - min_first).abs() < 0.08);
        // EDM is the strongest in both halves (within sampling noise).
        assert!(edm.first_half.r > 0.6);
        assert!(edm.second_half.r > 0.6);
    }

    #[test]
    fn tables5_and_6_teamwork_first_implementation_second() {
        let r = report();
        for ranking in [
            &r.emphasis_ranking.0,
            &r.emphasis_ranking.1,
            &r.growth_ranking.0,
            &r.growth_ranking.1,
        ] {
            assert_eq!(ranking[0].label, "Teamwork", "{ranking:?}");
            assert_eq!(ranking[1].label, "Implementation");
            assert_eq!(ranking.len(), 7);
        }
    }

    #[test]
    fn table6_first_half_spread_exceeds_second_half() {
        // "students indicate they had a more selective growth … during
        // the first half, demonstrated by a large spread".
        let r = report();
        let spread1 = stats::ranking::spread(&r.growth_ranking.0).unwrap();
        let spread2 = stats::ranking::spread(&r.growth_ranking.1).unwrap();
        assert!(spread1 > spread2, "{spread1} vs {spread2}");
    }

    #[test]
    fn evaluation_and_decision_making_is_last_in_first_half_growth() {
        let r = report();
        assert_eq!(
            r.growth_ranking.0.last().unwrap().label,
            "Evaluation and Decision Making"
        );
    }

    #[test]
    fn implementation_gap_is_small_in_second_half() {
        // The paper's one near-zero emphasis-vs-growth gap (0.03).
        let r = report();
        let gap = r.emphasis_growth_gap(Element::Implementation, 2);
        assert!(
            gap.abs() < crate::published::EMPHASIS_GROWTH_GAP_THRESHOLD,
            "gap {gap}"
        );
    }

    #[test]
    fn report_is_deterministic() {
        let a = PblStudy::new().run();
        let b = PblStudy::new().run();
        assert_eq!(a.emphasis_ttest, b.emphasis_ttest);
        assert_eq!(a.growth_d, b.growth_d);
    }

    #[test]
    fn batch_reports_are_thread_count_invariant() {
        let study = PblStudy::with_config(StudyConfig {
            num_students: 40,
            seed: 9,
        });
        let reference = study.run_batch(6, 1);
        assert_eq!(reference.len(), 6);
        for threads in [2, 4, 8] {
            let got = study.run_batch(6, threads);
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.emphasis_ttest, b.emphasis_ttest);
                assert_eq!(a.growth_ttest, b.growth_ttest);
                assert_eq!(a.emphasis_d, b.emphasis_d);
                assert_eq!(a.growth_d, b.growth_d);
                assert_eq!(a.correlations, b.correlations);
            }
        }
        // Replicates differ from one another and from the single run.
        assert_ne!(reference[0].growth_ttest, reference[1].growth_ttest);
    }

    #[test]
    fn smaller_cohorts_still_run() {
        let r = PblStudy::with_config(StudyConfig {
            num_students: 40,
            seed: 9,
        })
        .run();
        assert_eq!(r.emphasis_ttest.n, 40);
        assert_eq!(r.correlations.len(), 7);
    }
}
