//! One entry point per paper artefact. Each returns the structured
//! result plus a rendered [`stats::table::Table`], and the report
//! binary prints paper-vs-measured side by side using [`crate::published`].

use classroom::response::Category;
use classroom::survey::{render_block, Scale};
use classroom::{Element, ALL_ELEMENTS};
use stats::table::{fnum, Table};

use crate::published;
use crate::study::StudyReport;

/// Every artefact name the report surface can render, in report order.
/// This catalog is the single source of truth: the `report` binary, the
/// serve layer's `Report` jobs and the bench crate all consult it, so a
/// new artefact added here is immediately listable and servable.
pub const ARTEFACTS: [&str; 24] = [
    "fig1",
    "fig2",
    "descriptive",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "gaps",
    "assignment5",
    "race",
    "races",
    "spring2019",
    "robustness",
    "sections",
    "assessment",
    "anova",
    "replication",
    "metrics",
    "trace",
    "semester",
    "health",
    "os",
];

/// True if `name` (case-insensitive) is a single renderable artefact.
/// `all` is a composition, not a member — callers that accept it (the
/// report binary) special-case it themselves.
pub fn is_artefact(name: &str) -> bool {
    let lower = name.to_lowercase();
    ARTEFACTS.contains(&lower.as_str())
}

/// Renders one artefact from the catalog to its textual form, running
/// the simulated study where the artefact needs it. `threads` bounds
/// the worker threads of the replication / metrics / trace artefacts;
/// their output is thread-count invariant, so the rendering is a pure
/// function of the artefact name. Returns `None` for names outside
/// [`ARTEFACTS`].
pub fn render_artefact(name: &str, threads: usize) -> Option<String> {
    let lower = name.to_lowercase();
    let study = || crate::study::PblStudy::new().run();
    let text = match lower.as_str() {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "descriptive" => descriptive(&study()).render_ascii(),
        "table1" => table1(&study()).render_ascii(),
        "table2" => table2(&study()).render_ascii(),
        "table3" => table3(&study()).render_ascii(),
        "table4" => table4(&study()).render_ascii(),
        "table5" => table5(&study()).render_ascii(),
        "table6" => table6(&study()).render_ascii(),
        "gaps" => gap_analysis(&study()).render_ascii(),
        "assignment5" => assignment5().render_ascii(),
        "race" => race_demo().render_ascii(),
        "races" => races_table().render_ascii(),
        "spring2019" => spring2019().1.render_ascii(),
        "robustness" => robustness(&study()).render_ascii(),
        "sections" => section_equivalence(&study()).render_ascii(),
        "assessment" => assessment_table(&study()).render_ascii(),
        "anova" => element_anova(&study()).render_ascii(),
        "replication" => replication(200, threads).render_ascii(),
        "metrics" => {
            let snapshot = metrics_snapshot(threads);
            format!(
                "{}digest: {:016x}\n",
                snapshot.render_text(),
                snapshot.digest()
            )
        }
        "trace" => obs::trace::analyze::analyze(&demo_trace(threads)).render_text(),
        "semester" => semester_pointer(),
        "health" => health_pointer(),
        "os" => os::study::os_artefact(),
        _ => return None,
    };
    Some(text)
}

/// The `semester` catalogue entry. The summary it names — a semester
/// of open-loop traffic served by the sharded cluster — is produced by
/// the serve layer, which depends on this crate; the catalogue entry
/// therefore points at that renderer (the `report` binary routes
/// `report -- semester` to it) instead of creating a dependency cycle.
fn semester_pointer() -> String {
    concat!(
        "semester: a simulated semester of open-loop course traffic\n",
        "served by the consistent-hash sharded cluster (pbl-serve).\n",
        "Summary fields: arrivals, admissions, per-shard hit rates,\n",
        "sojourn percentiles, semester digest.\n",
        "Render it with: report -- semester (or serve::cluster::semester_artefact).\n",
    )
    .to_string()
}

/// The `health` catalogue entry. Like `semester`, the renderer lives
/// in the serve layer (which depends on this crate), so the catalogue
/// entry is a pointer the `report` binary routes around.
fn health_pointer() -> String {
    concat!(
        "health: the semester telemetry and alerting report — per-day\n",
        "time series from the sharded cluster, SLO burn-rate and\n",
        "anomaly evaluation, and the incident timeline for the clean\n",
        "and the storm-perturbed smoke semester (the clean one is quiet).\n",
        "Render it with: report -- health (or serve::telemetry::health_artefact).\n",
    )
    .to_string()
}

/// Table 1: the two paired t-tests. Rendered with the paper's sign
/// convention (first − second).
pub fn table1(report: &StudyReport) -> Table {
    let mut t = Table::new(vec![
        "",
        "Mean Difference",
        "t",
        "N",
        "p-value",
        "paper (diff, t, p)",
    ])
    .with_title("Table 1. T-test: Class Emphasis and Personal Growth");
    let p1 = &published::TABLE1_EMPHASIS;
    let p2 = &published::TABLE1_GROWTH;
    t.row(vec![
        "Class Emphasis".into(),
        fnum(-report.emphasis_ttest.mean_difference, 2),
        fnum(-report.emphasis_ttest.t, 2),
        report.emphasis_ttest.n.to_string(),
        format!("{:.3}", report.emphasis_ttest.p_two_sided),
        format!("{:.2}, {:.2}, {:.3}", p1.mean_difference, p1.t, p1.p),
    ]);
    t.row(vec![
        "Personal Growth".into(),
        fnum(-report.growth_ttest.mean_difference, 2),
        fnum(-report.growth_ttest.t, 2),
        report.growth_ttest.n.to_string(),
        format!("{:.3}", report.growth_ttest.p_two_sided),
        format!("{:.2}, {:.2}, {:.3}", p2.mean_difference, p2.t, p2.p),
    ]);
    t
}

/// Table 2: Cohen's d of course emphasis.
pub fn table2(report: &StudyReport) -> Table {
    cohens_table(
        "Table 2. Cohen's d of Course Emphasis",
        &report.emphasis_d,
        &published::TABLE2,
    )
}

/// Table 3: Cohen's d of personal growth.
pub fn table3(report: &StudyReport) -> Table {
    cohens_table(
        "Table 3. Cohen's d (Effect Size) of Personal Growth",
        &report.growth_d,
        &published::TABLE3,
    )
}

fn cohens_table(title: &str, d: &stats::CohensD, paper: &published::PublishedCohensD) -> Table {
    let mut t =
        Table::new(vec!["", "First Half Survey", "Second Half Survey", "paper"]).with_title(title);
    t.row(vec![
        "Mean (M)".into(),
        fnum(d.mean_first, 4),
        fnum(d.mean_second, 4),
        format!("{:.4} / {:.4}", paper.mean1, paper.mean2),
    ]);
    t.row(vec![
        "Standard deviation (s)".into(),
        fnum(d.sd_first, 4),
        fnum(d.sd_second, 4),
        format!("{:.4} / {:.4}", paper.sd1, paper.sd2),
    ]);
    t.row(vec![
        "Sample size (n)".into(),
        d.n.to_string(),
        d.n.to_string(),
        "124".into(),
    ]);
    t.row(vec![
        "Cohen's d".into(),
        format!("{} ({})", fnum(d.d, 2), d.band().label()),
        String::new(),
        format!("{:.2} ({})", paper.d, paper.band),
    ]);
    t
}

/// Table 4: Pearson correlations per element per half.
pub fn table4(report: &StudyReport) -> Table {
    let mut t = Table::new(vec![
        "Element",
        "r (1st half)",
        "p",
        "r (2nd half)",
        "p",
        "paper r (1st/2nd)",
    ])
    .with_title("Table 4. Pearson Correlation Between Class Emphasis and Personal Growth");
    for row in &report.correlations {
        t.row(vec![
            row.element.label().to_string(),
            fnum(row.first_half.r, 2),
            row.first_half.p_display(),
            fnum(row.second_half.r, 2),
            row.second_half.p_display(),
            format!(
                "{:.2} / {:.2}",
                published::table4_r(row.element, 1),
                published::table4_r(row.element, 2)
            ),
        ]);
    }
    t
}

/// Table 5: ranking of perceived course emphasis.
pub fn table5(report: &StudyReport) -> Table {
    ranking_table(
        "Table 5. Ranking of Student Perception of the Course Emphasis",
        &report.emphasis_ranking.0,
        &report.emphasis_ranking.1,
    )
}

/// Table 6: ranking of perceived personal growth.
pub fn table6(report: &StudyReport) -> Table {
    ranking_table(
        "Table 6. Ranking of Student Perception of Personal Growth",
        &report.growth_ranking.0,
        &report.growth_ranking.1,
    )
}

fn ranking_table(title: &str, first: &[stats::RankedItem], second: &[stats::RankedItem]) -> Table {
    let mut t = Table::new(vec![
        "Ranking",
        "First Half (average)",
        "Second Half (average)",
    ])
    .with_title(title);
    for (a, b) in first.iter().zip(second) {
        t.row(vec![
            a.rank.to_string(),
            format!("{}: {}", a.label, fnum(a.score, 2)),
            format!("{}: {}", b.label, fnum(b.score, 2)),
        ]);
    }
    t
}

/// Figure 1: the semester timeline (text form).
pub fn fig1() -> String {
    classroom::timeline::render_timeline()
}

/// Figure 2: the Teamwork survey block on both scales.
pub fn fig2() -> String {
    format!(
        "{}\n{}",
        render_block(Element::Teamwork, Scale::ClassEmphasis),
        render_block(Element::Teamwork, Scale::PersonalGrowth)
    )
}

/// The Assignment 5 timing study (drug design on the virtual Pi).
pub fn assignment5() -> Table {
    let rows = drugsim::assignment5_report(&drugsim::DrugDesignConfig::default());
    let mut t = Table::new(vec![
        "Approach",
        "Threads",
        "Max ligand len",
        "Virtual cycles",
        "Speedup",
        "LoC",
    ])
    .with_title("Assignment 5: drug design — sequential vs OpenMP vs C++11 threads");
    for r in rows {
        t.row(vec![
            r.approach.name().to_string(),
            r.threads.to_string(),
            r.max_ligand_len.to_string(),
            r.sim_cycles.to_string(),
            fnum(r.speedup_vs_sequential, 2),
            r.lines_of_code.to_string(),
        ]);
    }
    t
}

/// The Assignment 2 data-race demonstration table.
pub fn race_demo() -> Table {
    let outcomes = patternlets::private_shared::race_comparison(4, 50_000);
    let mut t = Table::new(vec![
        "Strategy",
        "Expected",
        "Observed",
        "Lost updates",
        "Correct",
    ])
    .with_title("Assignment 2: shared-counter data race and its fixes");
    for o in outcomes {
        t.row(vec![
            format!("{:?}", o.strategy),
            o.expected.to_string(),
            o.observed.to_string(),
            o.lost_updates().to_string(),
            o.is_correct().to_string(),
        ]);
    }
    t
}

/// The `races` artefact: the schedule-space explorer's verdict on the
/// Assignment-2 patternlet family. Complements [`race_demo`] — where
/// the demo *samples* whatever interleavings the OS happens to produce,
/// the explorer exhausts the bounded schedule space of a modeled
/// patternlet: it finds the race in the unfixed program, shrinks the
/// counterexample to a minimal schedule, and certifies every fix
/// race-free over the entire explored space. Fully deterministic —
/// same table on every host and every run.
pub fn races_table() -> Table {
    use parallel_rt::explore::search::{systematic, Budget};
    use parallel_rt::explore::shrink::shrink_counterexample;
    use parallel_rt::race::{patternlet_program, FixStrategy};

    let mut t = Table::new(vec![
        "Strategy",
        "Schedules",
        "Space exhausted",
        "Racy runs",
        "Distinct races",
        "Minimal schedule",
        "Verdict",
    ])
    .with_title(
        "Schedule-space exploration of the shared-counter patternlet (2 lanes x 2 increments)",
    );
    for strategy in [
        FixStrategy::None,
        FixStrategy::Critical,
        FixStrategy::Atomic,
        FixStrategy::Reduction,
    ] {
        let program = patternlet_program(strategy, 2, 2);
        let report = systematic(&program, Budget::schedules(200_000));
        let minimal = report.counterexample.as_ref().map(|cex| {
            let (shrunk, _) = shrink_counterexample(&program, cex);
            format!("{} choices", shrunk.choices.len())
        });
        t.row(vec![
            format!("{strategy:?}"),
            report.schedules.to_string(),
            report.space_exhausted.to_string(),
            report.race_runs.to_string(),
            report.distinct_races.len().to_string(),
            minimal.unwrap_or_else(|| "-".into()),
            if report.certified() {
                "race-free over explored space".into()
            } else {
                "RACE".to_string()
            },
        ]);
    }
    t
}

/// The per-element emphasis-vs-growth gap table (Discussion §IV):
/// only gaps above 0.2 call for course redesign.
pub fn gap_analysis(report: &StudyReport) -> Table {
    let mut t = Table::new(vec![
        "Element",
        "Gap (1st half)",
        "Gap (2nd half)",
        "Redesign?",
    ])
    .with_title("Emphasis minus growth per element (redesign threshold 0.2)");
    for &e in &ALL_ELEMENTS {
        let g1 = report.emphasis_growth_gap(e, 1);
        let g2 = report.emphasis_growth_gap(e, 2);
        t.row(vec![
            e.label().to_string(),
            fnum(g1, 2),
            fnum(g2, 2),
            if g2 > published::EMPHASIS_GROWTH_GAP_THRESHOLD {
                "consider".into()
            } else {
                "no".into()
            },
        ]);
    }
    t
}

/// Descriptive statistics (§III.A): cohort size and gender split.
pub fn descriptive(report: &StudyReport) -> Table {
    let (male, female) = classroom::roster::gender_counts(&report.cohort.students);
    let n = report.cohort.n() as f64;
    let mut t =
        Table::new(vec!["", "Count", "Percent"]).with_title("Descriptive statistics of the cohort");
    t.row(vec![
        "Male".into(),
        male.to_string(),
        format!("{:.2}%", male as f64 / n * 100.0),
    ]);
    t.row(vec![
        "Female".into(),
        female.to_string(),
        format!("{:.2}%", female as f64 / n * 100.0),
    ]);
    t.row(vec![
        "Total".into(),
        report.cohort.n().to_string(),
        "100%".into(),
    ]);
    t
}

/// Everything, rendered in paper order — what `report -- all` prints.
pub fn full_report(report: &StudyReport) -> String {
    let mut out = String::new();
    out.push_str("Figure 1 — semester timeline\n");
    out.push_str(&fig1());
    out.push('\n');
    out.push_str("Figure 2 — survey instrument (Teamwork block)\n");
    out.push_str(&fig2());
    out.push('\n');
    out.push_str(&descriptive(report).render_ascii());
    out.push('\n');
    for table in [
        table1(report),
        table2(report),
        table3(report),
        table4(report),
        table5(report),
        table6(report),
        gap_analysis(report),
        element_anova(report),
        robustness(report),
        section_equivalence(report),
        assessment_table(report),
        assignment5(),
        race_demo(),
        spring2019().1,
        replication(
            40,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        ),
    ] {
        out.push_str(&table.render_ascii());
        out.push('\n');
    }
    out
}

/// Convenience accessor mirroring [`StudyReport::element_mean`] for the
/// emphasis/growth matrix the gap analysis uses.
pub fn element_mean(
    report: &StudyReport,
    category: Category,
    element: Element,
    wave: usize,
) -> f64 {
    report.element_mean(category, element, wave)
}

/// Robustness companion to Table 1: the same paired comparisons under
/// the nonparametric Wilcoxon signed-rank test and a permutation test,
/// plus a bootstrap CI on the mean difference — checking that the
/// paper's conclusions do not hinge on normality.
pub fn robustness(report: &StudyReport) -> Table {
    let cohort = &report.cohort;
    let mut t = Table::new(vec![
        "Variable",
        "t-test p",
        "Wilcoxon p",
        "Permutation p",
        "Bootstrap 95% CI of diff",
    ])
    .with_title("Robustness: Table 1 under nonparametric tests");
    for (label, category) in [
        ("Class Emphasis", Category::ClassEmphasis),
        ("Personal Growth", Category::PersonalGrowth),
    ] {
        let first = cohort.student_scores(category, 1);
        let second = cohort.student_scores(category, 2);
        let ttest = stats::t_test_paired(&first, &second).expect("variance");
        let wilcoxon = stats::wilcoxon_signed_rank(&first, &second).expect("variance");
        let perm =
            stats::resample::permutation_test_paired(&first, &second, 2_000, 42).expect("variance");
        let diffs: Vec<f64> = second.iter().zip(&first).map(|(s, f)| s - f).collect();
        let ci = stats::resample::bootstrap_ci(
            &diffs,
            |d| d.iter().sum::<f64>() / d.len() as f64,
            0.95,
            2_000,
            42,
        )
        .expect("variance");
        t.row(vec![
            label.into(),
            format!("{:.4}", ttest.p_two_sided),
            format!("{:.4}", wilcoxon.p_two_sided),
            format!("{:.4}", perm.p_two_sided),
            format!("[{:.3}, {:.3}]", ci.lo, ci.hi),
        ]);
    }
    t
}

/// Replication robustness (ROADMAP north-star): does the paper's
/// conclusion hold across many independent synthetic Fall-2018 cohorts?
/// Fans `replicates` full studies (cohort + Table-1 tests + resampling
/// battery) across `threads` OS threads via the deterministic
/// replication engine and tabulates how often each headline conclusion
/// recurs. The batch is bit-identical for every `threads` value.
pub fn replication(replicates: usize, threads: usize) -> Table {
    let report = crate::replicate::run_replication(&crate::replicate::ReplicationConfig {
        replicates,
        threads,
        permutations: 800,
        bootstrap_reps: 600,
        section_permutations: 400,
        ..Default::default()
    });
    let (d_lo, d_hi) = report.growth_d_range();
    let mut t = Table::new(vec!["Conclusion", "Fraction of replicates", "Expectation"]).with_title(
        format!("Replication: {replicates} independent cohorts (engine, {threads} thread(s))"),
    );
    t.row(vec![
        "Growth t-test significant (p < 0.05)".into(),
        fnum(report.growth_significant_fraction(), 3),
        "~1.0 (paper reports p = 0.000)".into(),
    ]);
    t.row(vec![
        "Emphasis t-test significant (p < 0.05)".into(),
        fnum(report.emphasis_significant_fraction(), 3),
        "high (paper reports p = 0.010)".into(),
    ]);
    t.row(vec![
        "Growth effect larger than emphasis (d)".into(),
        fnum(report.growth_effect_larger_fraction(), 3),
        "~1.0 (0.86 vs 0.50 published)".into(),
    ]);
    t.row(vec![
        "Permutation test agrees with t-test".into(),
        fnum(report.permutation_agreement_fraction(), 3),
        "~1.0 (conclusions don't hinge on normality)".into(),
    ]);
    t.row(vec![
        "Section equivalence flags (p < 0.05)".into(),
        fnum(report.section_flag_fraction(), 3),
        "~0.05 (no section effect in the model)".into(),
    ]);
    t.row(vec![
        "Growth d across replicates".into(),
        format!(
            "{} [{}, {}]",
            fnum(report.mean_growth_d(), 2),
            fnum(d_lo, 2),
            fnum(d_hi, 2)
        ),
        "0.86 published".into(),
    ]);
    t
}

/// The `metrics` artefact: exercises every instrumented layer with a
/// small fixed workload — a guided-schedule triangular loop on the
/// simulated quad-core Pi (parallel-rt + pi-sim), a word-count
/// MapReduce job, and a replication mini-batch — and returns the
/// deterministic metrics snapshot. Only virtual-domain metrics are
/// exported, so the JSON is byte-identical across runs and across
/// `threads` (the golden-snapshot CI test relies on this).
pub fn metrics_snapshot(threads: usize) -> obs::MetricsSnapshot {
    let registry = obs::Registry::new();

    // Layers 1+2: chunk-size, cache, bus-contention, core-busy and
    // event-queue metrics from the simulated loop.
    let _ = parallel_rt::sim::simulate_parallel_loop_with_metrics(
        2_000,
        &parallel_rt::sim::CostModel::Linear { base: 40, slope: 2 },
        parallel_rt::Schedule::Guided(8),
        4,
        &parallel_rt::sim::SimOptions::default(),
        &registry,
    );

    // Layer 3: shuffle and partition-skew metrics from word count.
    let docs: Vec<String> = (0..24)
        .map(|i| format!("pbl module assignment {} teaches parallel thinking", i % 5))
        .collect();
    let _ = mapreduce::run_job_with_metrics(
        &mapreduce::examples::WordCount,
        docs,
        &mapreduce::JobConfig {
            map_workers: 2,
            use_combiner: true,
            ..Default::default()
        },
        &registry,
    );

    // Layer 4: replication-engine queue metrics from a mini-batch.
    let _ = crate::replicate::run_replication_with_metrics(
        &crate::replicate::ReplicationConfig {
            replicates: 6,
            threads,
            num_students: 40,
            master_seed: 77,
            permutations: 200,
            bootstrap_reps: 150,
            section_permutations: 150,
        },
        &registry,
    );

    registry.snapshot()
}

/// The canonical four-layer demo trace: the same workloads as
/// [`metrics_snapshot`], but captured as a virtual-time event stream
/// and merged into one Chrome-trace document (one Perfetto process per
/// layer). Every event is timestamped in the owning layer's virtual
/// clock — simulated cycles for the machine layers, pairs processed
/// for MapReduce, replicate index for the replication engine — so the
/// export is byte-identical across hosts, runs, and thread counts.
pub fn demo_trace(threads: usize) -> obs::trace::Trace {
    let tcfg = obs::trace::TraceConfig::default();

    // Layers 1+2: the guided loop on the simulated machine (per-core
    // schedule slices, cache counters, bus-contention instants, wait
    // spans) plus the runtime's chunk-dispatch lane.
    let (_, loop_trace) = parallel_rt::sim::simulate_parallel_loop_traced(
        2_000,
        &parallel_rt::sim::CostModel::Linear { base: 40, slope: 2 },
        parallel_rt::Schedule::Guided(8),
        4,
        &parallel_rt::sim::SimOptions::default(),
        &tcfg,
    );

    // A tree reduction for its barrier-wait spans between combine
    // levels — the sync cost the ablation in DESIGN.md studies.
    let (_, reduce_trace) = parallel_rt::sim::simulate_reduction_traced(
        1_024,
        25,
        4,
        parallel_rt::sim::ReductionStyle::Tree,
        &parallel_rt::sim::SimOptions::default(),
        &tcfg,
    );

    // Layer 3: word-count phase spans in pairs-processed virtual time.
    let docs: Vec<String> = (0..24)
        .map(|i| format!("pbl module assignment {} teaches parallel thinking", i % 5))
        .collect();
    let (_, job_trace) = mapreduce::run_job_traced(
        &mapreduce::examples::WordCount,
        docs,
        &mapreduce::JobConfig {
            map_workers: 2,
            use_combiner: true,
            ..Default::default()
        },
        &tcfg,
    );

    // Layer 4: replication chunk lifecycles in replicate-index virtual
    // time. `threads` only changes which OS workers run the chunks,
    // never the batch shape, so the merged trace is thread invariant.
    let (_, rep_trace) = crate::replicate::run_replication_traced(
        &crate::replicate::ReplicationConfig {
            replicates: 6,
            threads,
            num_students: 40,
            master_seed: 77,
            permutations: 200,
            bootstrap_reps: 150,
            section_permutations: 150,
        },
        &tcfg,
    );

    obs::trace::Trace::merge(vec![
        ("sim-loop", loop_trace),
        ("tree-reduction", reduce_trace),
        ("word-count", job_trace),
        ("replication", rep_trace),
    ])
}

/// Section equivalence (§II: both sections "taught by the same
/// instructor and with the same instructional strategy"): compares the
/// two sections' wave-2 scores; no significant difference is expected,
/// which justifies pooling them as the paper does.
pub fn section_equivalence(report: &StudyReport) -> Table {
    let cohort = &report.cohort;
    let mut t = Table::new(vec![
        "Variable",
        "Section 0 mean",
        "Section 1 mean",
        "Welch p",
        "p < 0.05?",
    ])
    .with_title(
        "Section equivalence (no section effect in the model; a single cell \
         may still flag at the 5% level by chance)",
    );
    for (label, category) in [
        ("Class Emphasis (wave 2)", Category::ClassEmphasis),
        ("Personal Growth (wave 2)", Category::PersonalGrowth),
    ] {
        let scores = cohort.student_scores(category, 2);
        let s0: Vec<f64> = cohort
            .students
            .iter()
            .filter(|s| s.section == 0)
            .map(|s| scores[s.id])
            .collect();
        let s1: Vec<f64> = cohort
            .students
            .iter()
            .filter(|s| s.section == 1)
            .map(|s| scores[s.id])
            .collect();
        let test = stats::t_test_welch(&s0, &s1).expect("variance");
        t.row(vec![
            label.into(),
            fnum(s0.iter().sum::<f64>() / s0.len() as f64, 3),
            fnum(s1.iter().sum::<f64>() / s1.len() as f64, 3),
            format!("{:.3}", test.p_two_sided),
            if test.significant_at(0.05) {
                "yes (sampling)".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }
    t
}

/// Individual assessment (§II): quiz trajectory, exams, and the
/// coherence between reported growth and final-exam performance.
pub fn assessment_table(report: &StudyReport) -> Table {
    let records = classroom::assessment::generate_assessments(&report.cohort, 7);
    let trajectory = classroom::assessment::quiz_trajectory(&records);
    let midterm: f64 = records.iter().map(|r| r.midterm).sum::<f64>() / records.len() as f64;
    let final_exam: f64 = records.iter().map(|r| r.final_exam).sum::<f64>() / records.len() as f64;
    let growth2 = report.cohort.student_scores(Category::PersonalGrowth, 2);
    let finals: Vec<f64> = records.iter().map(|r| r.final_exam).collect();
    let r = stats::pearson(&growth2, &finals).expect("variance");
    let mut t = Table::new(vec!["Measure", "Class mean"])
        .with_title("Individual assessment: five quizzes, midterm, final");
    for (k, q) in trajectory.iter().enumerate() {
        t.row(vec![
            format!("Quiz {} (after A{})", k + 1, k + 1),
            fnum(*q, 1),
        ]);
    }
    t.row(vec!["Midterm (week 8)".into(), fnum(midterm, 1)]);
    t.row(vec!["Final (week 15)".into(), fnum(final_exam, 1)]);
    t.row(vec![
        "r(final exam, reported growth)".into(),
        format!("{:.2} ({})", r.r, r.p_display()),
    ]);
    t
}

/// Do the seven elements genuinely differ in mean growth? A one-way
/// ANOVA across elements per wave (treating element scores as samples;
/// a descriptive check of the ranking tables' premise, not a
/// repeated-measures model).
pub fn element_anova(report: &StudyReport) -> Table {
    let mut t = Table::new(vec!["Wave", "F", "df", "p", "eta^2", "Elements differ?"])
        .with_title("One-way ANOVA across the seven elements (personal growth)");
    for wave in [1usize, 2] {
        let groups: Vec<Vec<f64>> = (0..ALL_ELEMENTS.len())
            .map(|idx| {
                report
                    .cohort
                    .wave(wave)
                    .element_scores(Category::PersonalGrowth, idx)
            })
            .collect();
        let a = stats::anova_one_way(&groups).expect("seven groups of 124");
        t.row(vec![
            wave.to_string(),
            fnum(a.f, 1),
            format!("({}, {})", a.df_between, a.df_within),
            if a.p < 0.001 {
                "p < 0.001".into()
            } else {
                format!("{:.3}", a.p)
            },
            fnum(a.eta_squared, 2),
            if a.significant_at(0.01) {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
    }
    t
}

/// The Spring-2019 counterfactual (§IV–V): rerun the semester with one
/// or two extra Teamwork tasks in Assignments 2–5 and compare the
/// Teamwork emphasis↔growth correlation against Fall 2018.
#[derive(Debug, Clone, PartialEq)]
pub struct Spring2019Comparison {
    /// Fall Teamwork r (wave 1, wave 2).
    pub fall: (f64, f64),
    /// Spring Teamwork r (wave 1, wave 2).
    pub spring: (f64, f64),
    /// Whether the intervention improved both halves.
    pub improved: bool,
}

/// Runs the counterfactual and tabulates it.
pub fn spring2019() -> (Spring2019Comparison, Table) {
    use classroom::learning::Intervention;
    use classroom::{CohortData, StudyConfig};

    let teamwork_r = |cohort: &CohortData, wave: usize| {
        let idx = 0; // Teamwork is the first element
        stats::pearson(
            &cohort
                .wave(wave)
                .element_scores(Category::ClassEmphasis, idx),
            &cohort
                .wave(wave)
                .element_scores(Category::PersonalGrowth, idx),
        )
        .expect("scores vary")
        .r
    };
    let config = StudyConfig::default();
    let fall = CohortData::generate(&config);
    let spring = CohortData::generate_with(&config, Some(&Intervention::spring2019()));
    let comparison = Spring2019Comparison {
        fall: (teamwork_r(&fall, 1), teamwork_r(&fall, 2)),
        spring: (teamwork_r(&spring, 1), teamwork_r(&spring, 2)),
        improved: teamwork_r(&spring, 1) > teamwork_r(&fall, 1)
            && teamwork_r(&spring, 2) > teamwork_r(&fall, 2),
    };
    let mut t = Table::new(vec![
        "Semester",
        "Teamwork r (1st half)",
        "Teamwork r (2nd half)",
    ])
    .with_title("Spring 2019 plan: extra Teamwork tasks in Assignments 2-5");
    t.row(vec![
        "Fall 2018 (paper)".into(),
        fnum(comparison.fall.0, 2),
        fnum(comparison.fall.1, 2),
    ]);
    t.row(vec![
        "Spring 2019 (+2 tasks)".into(),
        fnum(comparison.spring.0, 2),
        fnum(comparison.spring.1, 2),
    ]);
    (comparison, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::PblStudy;

    fn report() -> StudyReport {
        PblStudy::new().run()
    }

    #[test]
    fn artefact_catalog_is_complete_and_renderable() {
        assert_eq!(ARTEFACTS.len(), 24);
        assert!(is_artefact("table1"));
        assert!(is_artefact("races"));
        assert!(is_artefact("Table4"));
        assert!(is_artefact("metrics"));
        assert!(is_artefact("trace"));
        assert!(is_artefact("semester"));
        assert!(is_artefact("health"));
        assert!(is_artefact("os"));
        assert!(!is_artefact("all"), "all is a composition, not a member");
        assert!(!is_artefact("table9"));
        // Every catalog entry renders; names off the catalog do not.
        // (Cheap entries only — the full sweep is the report binary's
        // job; here we check the dispatch table has no dead rows.)
        for name in [
            "fig1",
            "fig2",
            "assignment5",
            "race",
            "races",
            "semester",
            "health",
        ] {
            let text = render_artefact(name, 1).expect(name);
            assert!(!text.is_empty(), "{name} rendered empty");
        }
        assert!(render_artefact("nope", 1).is_none());
        for name in ARTEFACTS {
            assert!(is_artefact(name), "{name} not recognised");
        }
    }

    #[test]
    fn table1_renders_both_rows_with_paper_column() {
        let t = table1(&report());
        let text = t.render_ascii();
        assert!(text.contains("Class Emphasis"));
        assert!(text.contains("Personal Growth"));
        assert!(text.contains("-0.10, -2.63"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn tables2_and_3_render_the_d_with_band() {
        let r = report();
        let t2 = table2(&r).render_ascii();
        assert!(t2.contains("Cohen's d"));
        assert!(t2.contains("medium") || t2.contains("large") || t2.contains("small"));
        let t3 = table3(&r).render_ascii();
        assert!(t3.contains("0.86 (large)"), "paper column present");
    }

    #[test]
    fn table4_has_seven_rows_with_significance() {
        let t = table4(&report());
        assert_eq!(t.len(), 7);
        let text = t.render_ascii();
        assert!(text.contains("p < 0.001"));
        assert!(text.contains("Evaluation and Decision Making"));
    }

    #[test]
    fn ranking_tables_have_seven_ranks() {
        let r = report();
        for t in [table5(&r), table6(&r)] {
            assert_eq!(t.len(), 7);
            let text = t.render_ascii();
            assert!(text.contains("Teamwork"));
        }
    }

    #[test]
    fn figures_render() {
        assert!(fig1().contains("Assignment 3"));
        let f2 = fig2();
        assert!(f2.contains("Major emphasis"));
        assert!(f2.contains("tremendous growth"));
    }

    #[test]
    fn assignment5_table_has_ten_rows() {
        let t = assignment5();
        assert_eq!(t.len(), 10);
        let text = t.render_ascii();
        assert!(text.contains("OpenMP"));
        assert!(text.contains("C++11 threads"));
    }

    #[test]
    fn race_table_shows_fixes_correct() {
        let t = race_demo();
        assert_eq!(t.len(), 4);
        let text = t.render_ascii();
        assert!(text.contains("Atomic"));
        assert!(text.contains("true"));
    }

    #[test]
    fn races_table_finds_the_bug_and_certifies_the_fixes() {
        let t = races_table();
        assert_eq!(t.len(), 4);
        let text = t.render_ascii();
        assert_eq!(text.matches("RACE").count(), 1, "only None races: {text}");
        assert_eq!(text.matches("race-free over explored space").count(), 3);
        assert!(text.contains("choices"), "counterexample was shrunk");
        // Deterministic across calls.
        assert_eq!(text, races_table().render_ascii());
    }

    #[test]
    fn gap_analysis_covers_all_elements() {
        let t = gap_analysis(&report());
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn full_report_contains_every_artefact() {
        let text = full_report(&report());
        for needle in [
            "Figure 1",
            "Figure 2",
            "Table 1.",
            "Table 2.",
            "Table 3.",
            "Table 4.",
            "Table 5.",
            "Table 6.",
            "drug design",
            "data race",
            "Replication:",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn replication_table_reports_recurring_conclusions() {
        let t = replication(12, 2);
        assert_eq!(t.len(), 6);
        let text = t.render_ascii();
        assert!(text.contains("12 independent cohorts"));
        assert!(text.contains("Growth t-test significant"));
        // At the full cohort size the headline effect recurs in every
        // replicate of a small batch.
        assert!(text.contains("1.000"), "{text}");
    }

    #[test]
    fn element_growth_differences_are_real() {
        let t = element_anova(&report());
        assert_eq!(t.len(), 2);
        let text = t.render_ascii();
        // The ranking tables only mean something if the element means
        // differ beyond noise; both waves should reject decisively.
        assert_eq!(text.matches("yes").count(), 2, "{text}");
        assert!(text.contains("p < 0.001"));
    }

    #[test]
    fn robustness_tests_agree_with_table1() {
        let t = robustness(&report());
        assert_eq!(t.len(), 2);
        let text = t.render_ascii();
        assert!(text.contains("Wilcoxon"));
        // Every p-value cell should be well under 0.05; crudely check
        // no cell shows an insignificant value like 0.5 or higher by
        // asserting the rendered p-values all start with "0.0".
        for line in text
            .lines()
            .filter(|l| l.contains("Class") || l.contains("Growth"))
        {
            let ps: Vec<&str> = line.split('|').map(str::trim).skip(2).take(3).collect();
            for p in ps {
                assert!(p.starts_with("0.0"), "p cell {p} in {line}");
            }
        }
    }

    #[test]
    fn sections_rarely_differ_across_seeds() {
        // The generative model has no section effect, so at alpha = 5%
        // roughly one cell in twenty flags by chance. Check the
        // rejection rate over several seeds stays near that.
        let mut cells = 0usize;
        let mut flagged = 0usize;
        for seed in 0..10u64 {
            let r = PblStudy::with_config(classroom::StudyConfig {
                num_students: 124,
                seed,
            })
            .run();
            let text = section_equivalence(&r).render_ascii();
            cells += 2;
            flagged += text.matches("yes (sampling)").count();
        }
        assert!(
            flagged * 5 <= cells,
            "{flagged}/{cells} section comparisons flagged"
        );
    }

    #[test]
    fn assessment_table_shows_growth() {
        let t = assessment_table(&report());
        assert_eq!(t.len(), 5 + 2 + 1);
        let text = t.render_ascii();
        assert!(text.contains("Quiz 5"));
        assert!(text.contains("Final (week 15)"));
        assert!(text.contains("p < 0.001"));
    }

    #[test]
    fn metrics_snapshot_is_byte_identical_across_runs_and_thread_counts() {
        let a = metrics_snapshot(1);
        let b = metrics_snapshot(4);
        assert_eq!(a.to_json(), b.to_json(), "golden snapshot invariant");
        assert_eq!(a.digest(), b.digest());
        for needle in [
            "pi_sim/cache/l1_hits",
            "pi_sim/events/queue_depth",
            "parallel_rt/chunks/guided",
            "mapreduce/shuffle/shuffled_pairs",
            "mapreduce/partition/skew",
            "replicate/chunks_dispatched",
        ] {
            assert!(a.to_json().contains(needle), "missing {needle}");
        }
        assert!(a.render_text().contains("metrics snapshot"));
    }

    #[test]
    fn demo_trace_merges_all_four_layers_and_is_thread_invariant() {
        let a = demo_trace(1);
        let b = demo_trace(4);
        assert_eq!(
            a.to_chrome_json(),
            b.to_chrome_json(),
            "golden trace invariant"
        );
        assert_eq!(a.digest(), b.digest());

        let json = a.to_chrome_json();
        for process in ["sim-loop", "tree-reduction", "word-count", "replication"] {
            assert!(json.contains(process), "missing process {process}");
        }
        let analysis = obs::trace::analyze::analyze(&a);
        assert!(analysis.attribution_is_exact());
        assert!(!analysis.critical_path.is_empty());
        for cat in [
            obs::trace::category::SLICE,
            obs::trace::category::BARRIER_WAIT,
            obs::trace::category::PHASE,
            obs::trace::category::CHUNK,
        ] {
            assert!(
                analysis
                    .lanes
                    .iter()
                    .any(|l| l.busy.iter().any(|(c, cycles)| c == cat && *cycles > 0)),
                "no busy cycles attributed to {cat}"
            );
        }
    }

    #[test]
    fn spring2019_plan_improves_the_teamwork_correlation() {
        let (cmp, table) = spring2019();
        assert!(cmp.improved, "{cmp:?}");
        assert!(cmp.spring.0 > cmp.fall.0);
        assert!(cmp.spring.1 > cmp.fall.1);
        let text = table.render_ascii();
        assert!(text.contains("Fall 2018"));
        assert!(text.contains("Spring 2019"));
    }

    #[test]
    fn descriptive_matches_the_paper_percentages() {
        let text = descriptive(&report()).render_ascii();
        assert!(text.contains("79.03%"));
        assert!(text.contains("20.97%"));
    }
}
