//! The PBL module design: everything the instructor hands out, beyond
//! the per-assignment content that lives in [`classroom::assignment`].

pub use classroom::assignment::{
    assignments, required_deliverables, Assignment, Deliverable, Focus, GradingPolicy, Material,
    VIDEO_MINUTES,
};
pub use classroom::timeline::{render_timeline, semester_timeline, SEMESTER_WEEKS};

/// The four teamwork technologies the module requires, with the role
/// each plays (§I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technology {
    /// Messaging application for team communication.
    Slack,
    /// Collaboration, custom workflows, and code sharing.
    GitHub,
    /// Collaborative report writing.
    GoogleDocs,
    /// Shooting, editing, and publishing the presentation videos.
    YouTube,
}

impl Technology {
    /// All four, in the paper's order.
    pub fn all() -> [Technology; 4] {
        [
            Technology::Slack,
            Technology::GitHub,
            Technology::GoogleDocs,
            Technology::YouTube,
        ]
    }

    /// What the module uses the technology for.
    pub fn role(&self) -> &'static str {
        match self {
            Technology::Slack => "a messaging application to communicate",
            Technology::GitHub => {
                "a social networking site for programmers to collaborate, create customized workflows, and share code"
            }
            Technology::GoogleDocs => {
                "an online word processor to collaborate and produce project assignment reports"
            }
            Technology::YouTube => {
                "to shoot, edit, and upload videos to a YouTube channel to present the results"
            }
        }
    }

    /// All four technologies are free to students — a design constraint
    /// the paper states explicitly.
    pub fn is_free(&self) -> bool {
        true
    }
}

/// The video-presentation guide given with every assignment.
pub fn presentation_guide() -> [&'static str; 4] {
    [
        "Introduce yourself and your role",
        "Identify your task for this assignment and 2-3 key things learned",
        "How you will apply what you learned in your next assignment, academic life, and future job",
        "What the best/most challenging/worst experience you encountered was",
    ]
}

/// Cost of one Raspberry Pi kit in the study, US dollars.
pub const PI_KIT_COST_USD: u32 = 59;

/// Why OpenMP was chosen (over more complex parallel platforms).
pub const WHY_OPENMP: &str = "OpenMP makes it relatively easy to add parallelism to existing \
     sequential programs and to write new parallel programs from scratch";

/// Why the Raspberry Pi was chosen.
pub const WHY_RASPBERRY_PI: &str = "components are clearly visible for visual and tactile \
     learners, it exposes students to ARM (RISC) alongside the course's Intel x86 (CISC), and \
     it resembles today's ubiquitous mobile devices";

/// The team-coordinator role, rotated per assignment.
pub fn coordinator_duties() -> [&'static str; 4] {
    [
        "interface between the instructor and the team; turn in documents",
        "review returned assignments and ensure everyone understands lost points and corrections",
        "identify, assign, and schedule tasks to team members",
        "monitor and report the progress of assigned tasks",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_free_technologies() {
        let all = Technology::all();
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|t| t.is_free()));
        assert!(Technology::Slack.role().contains("messaging"));
        assert!(Technology::GitHub.role().contains("share code"));
        assert!(Technology::GoogleDocs.role().contains("word processor"));
        assert!(Technology::YouTube.role().contains("upload"));
    }

    #[test]
    fn presentation_guide_has_the_four_prompts() {
        let guide = presentation_guide();
        assert!(guide[0].contains("Introduce yourself"));
        assert!(guide[1].contains("2-3 key things"));
        assert!(guide[3].contains("best/most challenging/worst"));
    }

    #[test]
    fn kit_cost_matches_the_paper() {
        assert_eq!(PI_KIT_COST_USD, 59);
    }

    #[test]
    fn rationales_name_the_key_reasons() {
        assert!(WHY_OPENMP.contains("sequential programs"));
        assert!(WHY_RASPBERRY_PI.contains("ARM"));
        assert!(WHY_RASPBERRY_PI.contains("x86"));
    }

    #[test]
    fn coordinator_role_covers_the_paper_duties() {
        let duties = coordinator_duties();
        assert_eq!(duties.len(), 4);
        assert!(duties.iter().any(|d| d.contains("instructor")));
        assert!(duties.iter().any(|d| d.contains("schedule tasks")));
    }

    #[test]
    fn reexports_compose_the_module() {
        assert_eq!(assignments().len(), 5);
        assert_eq!(SEMESTER_WEEKS, 15);
        assert_eq!(required_deliverables().len(), 4);
        let policy = GradingPolicy::default();
        assert!((policy.module_weight - 0.25).abs() < 1e-12);
    }
}
