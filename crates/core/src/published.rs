//! The paper's published numbers, kept in one place so the report
//! binary and EXPERIMENTS.md can print paper-vs-measured rows.

use classroom::Element;

/// Table 1 (published): paired t-tests.
pub struct PublishedTTest {
    /// Mean difference as printed (first − second, hence negative).
    pub mean_difference: f64,
    /// t statistic as printed.
    pub t: f64,
    /// Sample size.
    pub n: usize,
    /// p-value as printed.
    pub p: f64,
}

/// Table 1, class-emphasis row.
pub const TABLE1_EMPHASIS: PublishedTTest = PublishedTTest {
    mean_difference: -0.10,
    t: -2.63,
    n: 124,
    p: 0.039,
};

/// Table 1, personal-growth row.
pub const TABLE1_GROWTH: PublishedTTest = PublishedTTest {
    mean_difference: -0.20,
    t: -5.11,
    n: 124,
    p: 0.002,
};

/// Tables 2–3 (published): Cohen's d inputs and result.
pub struct PublishedCohensD {
    /// First-wave mean.
    pub mean1: f64,
    /// Second-wave mean.
    pub mean2: f64,
    /// First-wave SD.
    pub sd1: f64,
    /// Second-wave SD.
    pub sd2: f64,
    /// The published d.
    pub d: f64,
    /// The published interpretation.
    pub band: &'static str,
}

/// Table 2: course emphasis, d = 0.50 ("medium").
pub const TABLE2: PublishedCohensD = PublishedCohensD {
    mean1: 4.023_068,
    mean2: 4.124_365,
    sd1: 0.232_416,
    sd2: 0.172_052,
    d: 0.50,
    band: "medium",
};

/// Table 3: personal growth, d = 0.86 ("large").
pub const TABLE3: PublishedCohensD = PublishedCohensD {
    mean1: 3.81,
    mean2: 4.01,
    sd1: 0.262_204,
    sd2: 0.198_497,
    d: 0.86,
    band: "large",
};

/// Table 4 (published): Pearson r per element per half; all p < 0.001.
pub fn table4_r(element: Element, wave: usize) -> f64 {
    classroom::learning::targets(element, wave).correlation
}

/// Tables 5/6 (published): composite means per element per half.
pub fn table56_means(element: Element, wave: usize) -> (f64, f64) {
    let t = classroom::learning::targets(element, wave);
    (t.emphasis_mean, t.growth_mean)
}

/// The redesign threshold from Beyerlein et al.: only when perceived
/// emphasis exceeds perceived growth by more than this should the
/// course design be revised.
pub const EMPHASIS_GROWTH_GAP_THRESHOLD: f64 = 0.2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_cohens_d_values_are_self_consistent() {
        // Recompute d from the published moments with the paper's
        // formula; it must round to the printed value.
        for (t, printed) in [(&TABLE2, 0.50), (&TABLE3, 0.86)] {
            let pooled = ((t.sd1 * t.sd1 + t.sd2 * t.sd2) / 2.0).sqrt();
            let d = (t.mean2 - t.mean1) / pooled;
            assert!((d - printed).abs() < 0.005, "recomputed {d}");
        }
    }

    #[test]
    fn published_t_tests_are_significant_at_alpha_05() {
        for row in [&TABLE1_EMPHASIS, &TABLE1_GROWTH] {
            assert!(row.p < 0.05, "published p {}", row.p);
            assert_eq!(row.n, 124);
            assert!(row.mean_difference < 0.0);
        }
    }

    #[test]
    fn table4_access() {
        assert!((table4_r(Element::Teamwork, 1) - 0.38).abs() < 1e-9);
        assert!((table4_r(Element::EvaluationAndDecisionMaking, 2) - 0.73).abs() < 1e-9);
    }

    #[test]
    fn table56_access() {
        let (e, g) = table56_means(Element::Teamwork, 1);
        assert!((e - 4.38).abs() < 1e-9);
        assert!((g - 4.14).abs() < 1e-9);
    }
}
