//! # pbl-core — the paper's primary contribution, end to end
//!
//! The paper contributes a semester-long Project-Based-Learning module
//! (five two-week assignments teaching shared-memory parallel
//! programming and soft skills on Raspberry Pis) together with its
//! assessment: a twice-administered Team Design Skills Growth survey
//! analysed with t-tests, Cohen's d, Pearson correlations, and
//! composite-score rankings. This crate assembles both halves:
//!
//! * [`module`] — the module design: timeline, assignments, teamwork
//!   technologies, video-presentation guide, grading policy.
//! * [`study`] — [`study::PblStudy`]: simulate a semester and run the
//!   full analysis, yielding a [`study::StudyReport`].
//! * [`experiments`] — one entry point per paper artefact (Tables 1–6,
//!   Figures 1–2, and the embedded Assignment 5 timing study), each
//!   returning structured results plus a rendered table.
//! * [`hypotheses`] — the three research hypotheses evaluated against a
//!   report.
//! * [`replicate`] — batch replication: N independent studies fanned
//!   out across OS threads on seed-split RNG streams, bit-identical for
//!   any thread count ("do the conclusions hold across 10k cohorts?").
//! * [`published`] — the paper's published numbers, for side-by-side
//!   comparison in EXPERIMENTS.md and the report binary.
//!
//! ```
//! use pbl_core::PblStudy;
//! use stats::EffectSizeBand;
//!
//! let report = PblStudy::new().run();
//! // The paper's headline: a large effect on personal growth.
//! assert_eq!(report.growth_d.band(), EffectSizeBand::Large);
//! assert!(report.growth_ttest.significant_at(0.05));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod hypotheses;
pub mod module;
pub mod published;
pub mod replicate;
pub mod study;

pub use replicate::{run_replication, ReplicationConfig, ReplicationReport};
pub use study::{PblStudy, StudyReport};
