//! The paper's three research hypotheses, evaluated against a study
//! report.

use stats::{EffectSizeBand, GuilfordBand};

use crate::study::StudyReport;

/// Verdict on one hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Which hypothesis (1–3).
    pub hypothesis: u8,
    /// The hypothesis statement.
    pub statement: &'static str,
    /// Whether the data supports it.
    pub supported: bool,
    /// The evidence sentence.
    pub evidence: String,
}

/// H1: "There is a difference in emphasis on parallel programming and
/// soft skills between the first and second parts of the semester."
pub fn hypothesis1(report: &StudyReport) -> Verdict {
    let t = &report.emphasis_ttest;
    let supported = t.significant_at(0.05) && t.mean_difference > 0.0;
    Verdict {
        hypothesis: 1,
        statement: "Class emphasis differs between the first and second halves",
        supported,
        evidence: format!(
            "paired t-test on class emphasis: mean diff {:.3} (second − first), t = {:.2}, p = {:.4}",
            t.mean_difference, t.t, t.p_two_sided
        ),
    }
}

/// H2: "By incorporating project-based learning, the students acquire
/// personal growth and improvement on their parallel programming and
/// soft skills."
pub fn hypothesis2(report: &StudyReport) -> Verdict {
    let t = &report.growth_ttest;
    let d = &report.growth_d;
    let supported =
        t.significant_at(0.05) && t.mean_difference > 0.0 && d.band() >= EffectSizeBand::Medium;
    Verdict {
        hypothesis: 2,
        statement: "PBL produces personal growth in parallel-programming and soft skills",
        supported,
        evidence: format!(
            "paired t-test on growth: mean diff {:.3}, p = {:.4}; Cohen's d = {:.2} ({})",
            t.mean_difference,
            t.p_two_sided,
            d.d,
            d.band().label()
        ),
    }
}

/// H3: "Students growth in parallel programming and soft skills did
/// increase when greater emphasis is placed on these areas."
pub fn hypothesis3(report: &StudyReport) -> Verdict {
    let all_positive_significant = report.correlations.iter().all(|row| {
        row.first_half.r > 0.0
            && row.second_half.r > 0.0
            && row.first_half.p_two_sided < 0.001
            && row.second_half.p_two_sided < 0.001
    });
    let strongest = report
        .correlations
        .iter()
        .map(|r| r.second_half.r.max(r.first_half.r))
        .fold(f64::MIN, f64::max);
    Verdict {
        hypothesis: 3,
        statement: "Growth rises with the emphasis placed on each skill",
        supported: all_positive_significant,
        evidence: format!(
            "all 14 emphasis↔growth correlations positive with p < 0.001; strongest r = {:.2} ({})",
            strongest,
            GuilfordBand::classify(strongest).label()
        ),
    }
}

/// Evaluates all three hypotheses.
pub fn evaluate_all(report: &StudyReport) -> Vec<Verdict> {
    vec![
        hypothesis1(report),
        hypothesis2(report),
        hypothesis3(report),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::PblStudy;

    #[test]
    fn all_three_hypotheses_supported_on_the_default_study() {
        let report = PblStudy::new().run();
        let verdicts = evaluate_all(&report);
        assert_eq!(verdicts.len(), 3);
        for v in &verdicts {
            assert!(v.supported, "H{}: {}", v.hypothesis, v.evidence);
            assert!(!v.evidence.is_empty());
        }
    }

    #[test]
    fn verdicts_carry_numbered_statements() {
        let report = PblStudy::new().run();
        let verdicts = evaluate_all(&report);
        assert_eq!(verdicts[0].hypothesis, 1);
        assert_eq!(verdicts[1].hypothesis, 2);
        assert_eq!(verdicts[2].hypothesis, 3);
        assert!(verdicts[2].statement.contains("emphasis"));
    }

    #[test]
    fn band_ordering_supports_the_h2_check() {
        assert!(EffectSizeBand::Large > EffectSizeBand::Medium);
        assert!(EffectSizeBand::Medium > EffectSizeBand::Small);
        assert!(EffectSizeBand::Small > EffectSizeBand::Negligible);
    }
}
