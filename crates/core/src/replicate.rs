//! Batch replication of the whole study: "do the paper's conclusions
//! hold across N synthetic Fall-2018 cohorts?"
//!
//! Each replicate generates an independent cohort from a seed-split
//! stream, runs the Table-1 parametric tests, and then the resampling
//! robustness battery (paired permutation tests, bootstrap CI of the
//! mean difference, section-equivalence label shuffle) using the
//! sharded `stats::resample::*_par` kernels. Replicates fan out across
//! OS threads via the `pbl-replicate` engine; the batch is
//! bit-identical for every thread count (see DESIGN.md, "replicate-level
//! determinism invariant").

use ::replicate::{ReplicateCtx, ReplicationEngine};
use classroom::cohort::CohortScoreModel;
use classroom::response::Category;
use classroom::{CohortData, StudyConfig};
use stats::batch::{
    bootstrap_mean_ci_batch, permutation_test_paired_batch, permutation_test_two_sample_batch,
    BatchScratch, CohortBatch,
};
use stats::resample::{
    bootstrap_ci_par, permutation_test_paired_par, permutation_test_two_sample_par, BootstrapCi,
};
use stats::{cohen_d_independent, t_test_paired, CohensD, TTestResult};

/// Configuration of one replication batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Number of independent study replicates.
    pub replicates: usize,
    /// Worker threads the engine may use (1 = serial).
    pub threads: usize,
    /// Students per replicate cohort.
    pub num_students: usize,
    /// Master seed; every replicate's stream is split from it.
    pub master_seed: u64,
    /// Permutations per paired permutation test.
    pub permutations: usize,
    /// Replicates per bootstrap CI.
    pub bootstrap_reps: usize,
    /// Permutations per section-equivalence two-sample test.
    pub section_permutations: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            replicates: 1_000,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            num_students: StudyConfig::default().num_students,
            master_seed: StudyConfig::default().seed,
            permutations: 4_000,
            bootstrap_reps: 1_000,
            section_permutations: 1_000,
        }
    }
}

/// Everything one replicate reports. `PartialEq` is the determinism
/// oracle: two batches are "the same" only if every field of every
/// replicate matches bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicateSummary {
    /// Batch position.
    pub index: usize,
    /// Seed-split cohort seed.
    pub seed: u64,
    /// Table 1, row 1 on this cohort.
    pub emphasis_ttest: TTestResult,
    /// Table 1, row 2 on this cohort.
    pub growth_ttest: TTestResult,
    /// Table 2 effect size.
    pub emphasis_d: CohensD,
    /// Table 3 effect size.
    pub growth_d: CohensD,
    /// Paired permutation p on class emphasis.
    pub emphasis_perm_p: f64,
    /// Paired permutation p on personal growth.
    pub growth_perm_p: f64,
    /// Bootstrap CI of the emphasis mean difference.
    pub emphasis_diff_ci: BootstrapCi,
    /// Bootstrap CI of the growth mean difference.
    pub growth_diff_ci: BootstrapCi,
    /// Section-equivalence two-sample permutation p (wave-2 emphasis).
    pub section_perm_p: f64,
}

/// The aggregated outcome of a replication batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationReport {
    /// The configuration that produced it.
    pub config: ReplicationConfig,
    /// Per-replicate summaries, in replicate order.
    pub summaries: Vec<ReplicateSummary>,
}

fn fraction(summaries: &[ReplicateSummary], pred: impl Fn(&ReplicateSummary) -> bool) -> f64 {
    summaries.iter().filter(|s| pred(s)).count() as f64 / summaries.len().max(1) as f64
}

impl ReplicationReport {
    /// Fraction of replicates whose growth t-test is significant at 5%.
    pub fn growth_significant_fraction(&self) -> f64 {
        fraction(&self.summaries, |s| s.growth_ttest.significant_at(0.05))
    }

    /// Fraction of replicates whose emphasis t-test is significant at 5%.
    pub fn emphasis_significant_fraction(&self) -> f64 {
        fraction(&self.summaries, |s| s.emphasis_ttest.significant_at(0.05))
    }

    /// Fraction where the growth effect exceeds the emphasis effect —
    /// the paper's Table 2-vs-3 ordering.
    pub fn growth_effect_larger_fraction(&self) -> f64 {
        fraction(&self.summaries, |s| s.growth_d.d > s.emphasis_d.d)
    }

    /// Fraction where the paired permutation test agrees with the
    /// growth t-test's 5% verdict — the normality robustness check.
    pub fn permutation_agreement_fraction(&self) -> f64 {
        fraction(&self.summaries, |s| {
            (s.growth_perm_p < 0.05) == s.growth_ttest.significant_at(0.05)
        })
    }

    /// Fraction of section-equivalence tests flagging at 5% (the model
    /// has no section effect, so this estimates the false-positive rate).
    pub fn section_flag_fraction(&self) -> f64 {
        fraction(&self.summaries, |s| s.section_perm_p < 0.05)
    }

    /// Mean of the growth Cohen's d across replicates.
    pub fn mean_growth_d(&self) -> f64 {
        self.summaries.iter().map(|s| s.growth_d.d).sum::<f64>()
            / self.summaries.len().max(1) as f64
    }

    /// (min, max) of the growth Cohen's d across replicates.
    pub fn growth_d_range(&self) -> (f64, f64) {
        self.summaries
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), s| {
                (lo.min(s.growth_d.d), hi.max(s.growth_d.d))
            })
    }

    /// An order-sensitive 64-bit digest of every reported number — the
    /// currency of the CI determinism smoke check: two runs are
    /// bit-identical iff their digests match.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        let mut mix = |bits: u64| {
            for byte in bits.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for s in &self.summaries {
            mix(s.index as u64);
            mix(s.seed);
            for v in [
                s.emphasis_ttest.t,
                s.emphasis_ttest.p_two_sided,
                s.growth_ttest.t,
                s.growth_ttest.p_two_sided,
                s.emphasis_d.d,
                s.growth_d.d,
                s.emphasis_perm_p,
                s.growth_perm_p,
                s.emphasis_diff_ci.lo,
                s.emphasis_diff_ci.hi,
                s.growth_diff_ci.lo,
                s.growth_diff_ci.hi,
                s.section_perm_p,
            ] {
                mix(v.to_bits());
            }
        }
        h
    }
}

/// Sub-stream indices for the per-replicate resampling batteries; the
/// cohort itself draws from the replicate's primary seed.
mod stream {
    pub const EMPHASIS_PERM: u64 = 1;
    pub const GROWTH_PERM: u64 = 2;
    pub const EMPHASIS_BOOT: u64 = 3;
    pub const GROWTH_BOOT: u64 = 4;
    pub const SECTION_PERM: u64 = 5;
}

fn mean_diff(d: &[f64]) -> f64 {
    d.iter().sum::<f64>() / d.len() as f64
}

fn summarize_replicate(cfg: &ReplicationConfig, ctx: &ReplicateCtx) -> ReplicateSummary {
    let cohort = CohortData::generate(&StudyConfig {
        num_students: cfg.num_students,
        seed: ctx.seed,
    });
    let e1 = cohort.student_scores(Category::ClassEmphasis, 1);
    let e2 = cohort.student_scores(Category::ClassEmphasis, 2);
    let g1 = cohort.student_scores(Category::PersonalGrowth, 1);
    let g2 = cohort.student_scores(Category::PersonalGrowth, 2);

    // Within a replicate the resampling runs serially (threads = 1):
    // parallelism lives at the replicate level, and nesting thread pools
    // would oversubscribe the workers.
    let perm = |first: &[f64], second: &[f64], stream| {
        permutation_test_paired_par(first, second, cfg.permutations, ctx.stream_seed(stream), 1)
            .expect("cohort has variance")
            .p_two_sided
    };
    let boot = |first: &[f64], second: &[f64], stream| {
        let diffs: Vec<f64> = second.iter().zip(first).map(|(s, f)| s - f).collect();
        bootstrap_ci_par(
            &diffs,
            mean_diff,
            0.95,
            cfg.bootstrap_reps,
            ctx.stream_seed(stream),
            1,
        )
        .expect("cohort has variance")
    };
    let scores = &e2;
    let mut section: Vec<Vec<f64>> = [0usize, 1]
        .map(|sec| {
            cohort
                .students
                .iter()
                .filter(|s| s.section == sec)
                .map(|s| scores[s.id])
                .collect()
        })
        .into_iter()
        .collect();
    if section.iter().any(|s| s.len() < 2) {
        // Scaled cohorts truncate the roster and can leave section 1
        // empty; fall back to a half-split so the between-section check
        // stays defined (it is still a null comparison).
        let half = scores.len() / 2;
        section = vec![scores[..half].to_vec(), scores[half..].to_vec()];
    }
    let section_perm_p = permutation_test_two_sample_par(
        &section[0],
        &section[1],
        cfg.section_permutations,
        ctx.stream_seed(stream::SECTION_PERM),
        1,
    )
    .expect("both sections populated")
    .p_two_sided;

    ReplicateSummary {
        index: ctx.index,
        seed: ctx.seed,
        emphasis_ttest: t_test_paired(&e1, &e2).expect("cohort has variance"),
        growth_ttest: t_test_paired(&g1, &g2).expect("cohort has variance"),
        emphasis_d: cohen_d_independent(&e1, &e2).expect("cohort has variance"),
        growth_d: cohen_d_independent(&g1, &g2).expect("cohort has variance"),
        emphasis_perm_p: perm(&e1, &e2, stream::EMPHASIS_PERM),
        growth_perm_p: perm(&g1, &g2, stream::GROWTH_PERM),
        emphasis_diff_ci: boot(&e1, &e2, stream::EMPHASIS_BOOT),
        growth_diff_ci: boot(&g1, &g2, stream::GROWTH_BOOT),
        section_perm_p,
    }
}

/// Column indices of the per-chunk [`CohortBatch`]: the four
/// per-student score vectors of Tables 1–3 plus the two paired
/// difference columns the bootstrap consumes.
mod field {
    pub const E1: usize = 0;
    pub const E2: usize = 1;
    pub const G1: usize = 2;
    pub const G2: usize = 3;
    pub const EDIFF: usize = 4;
    pub const GDIFF: usize = 5;
    pub const COUNT: usize = 6;
}

/// Per-worker arena for the batch-major path: the structure-of-arrays
/// cohort columns, the resampling kernels' scratch, the section-pool
/// buffers, and the hoisted cohort score model (whose
/// clamp-compensation bisections are replicate-invariant), all reused
/// across every chunk a worker processes.
#[derive(Debug, Default)]
struct BatchArena {
    cols: CohortBatch,
    kernels: BatchScratch,
    sections: Vec<(Vec<f64>, Vec<f64>)>,
    model: CohortScoreModel,
}

/// One chunk of the batch-major path: lays the chunk's cohorts out as
/// [`CohortBatch`] columns, then advances every replicate's battery in
/// lockstep through the `stats::batch` kernels. Each lane consumes
/// exactly the streams the scalar [`summarize_replicate`] would, so
/// the summaries are bit-identical to the scalar path (the
/// `scalar_and_batched_paths_are_bit_identical` tests and the
/// replication bin's `--scalar-check` mode enforce this).
fn run_chunk_batched(
    cfg: &ReplicationConfig,
    arena: &mut BatchArena,
    ctxs: &[ReplicateCtx],
) -> Vec<ReplicateSummary> {
    let lanes = ctxs.len();
    let n = CohortData::effective_size(cfg.num_students);
    arena.cols.reset(field::COUNT, lanes, n);
    arena
        .sections
        .resize_with(lanes, || (Vec::new(), Vec::new()));

    let mut parametrics = Vec::with_capacity(lanes);
    for (lane, ctx) in ctxs.iter().enumerate() {
        // The hoisted score model writes the four per-student score
        // columns straight into the arena — bit-identical to generating
        // the full `CohortData` and extracting them, without the
        // roster, teams, per-element response matrices, or the
        // per-cohort clamp-compensation bisections.
        let study = StudyConfig {
            num_students: cfg.num_students,
            seed: ctx.seed,
        };
        let (e1, g1) = arena.cols.lane_pair_mut(field::E1, field::G1, lane);
        arena.model.wave_scores_into(&study, 1, e1, g1);
        let (e2, g2) = arena.cols.lane_pair_mut(field::E2, field::G2, lane);
        arena.model.wave_scores_into(&study, 2, e2, g2);
        arena
            .cols
            .lane_diff(field::EDIFF, field::E2, field::E1, lane);
        arena
            .cols
            .lane_diff(field::GDIFF, field::G2, field::G1, lane);

        let e1 = arena.cols.lane(field::E1, lane);
        let e2 = arena.cols.lane(field::E2, lane);
        let g1 = arena.cols.lane(field::G1, lane);
        let g2 = arena.cols.lane(field::G2, lane);
        parametrics.push((
            t_test_paired(e1, e2).expect("cohort has variance"),
            t_test_paired(g1, g2).expect("cohort has variance"),
            cohen_d_independent(e1, e2).expect("cohort has variance"),
            cohen_d_independent(g1, g2).expect("cohort has variance"),
        ));

        // Section pools — positional, because roster ids are assigned
        // section-major — with the scalar path's small-cohort fallback.
        let scores = arena.cols.lane(field::E2, lane);
        let (sec_a, sec_b) = &mut arena.sections[lane];
        let split = CohortScoreModel::section_split(scores.len());
        sec_a.clear();
        sec_a.extend_from_slice(&scores[..split]);
        sec_b.clear();
        sec_b.extend_from_slice(&scores[split..]);
        if sec_a.len() < 2 || sec_b.len() < 2 {
            let half = scores.len() / 2;
            sec_a.clear();
            sec_a.extend_from_slice(&scores[..half]);
            sec_b.clear();
            sec_b.extend_from_slice(&scores[half..]);
        }
    }

    // Per-lane sub-stream seeds per battery — the same
    // `ctx.stream_seed(stream)` values the scalar path feeds `*_par`.
    let seeds_for =
        |stream: u64| -> Vec<u64> { ctxs.iter().map(|c| c.stream_seed(stream)).collect() };
    let seeds = seeds_for(stream::EMPHASIS_PERM);
    let emphasis_perm = permutation_test_paired_batch(
        &arena.cols.lane_refs(field::E1),
        &arena.cols.lane_refs(field::E2),
        cfg.permutations,
        &seeds,
        &mut arena.kernels,
    )
    .expect("cohort has variance");
    let seeds = seeds_for(stream::GROWTH_PERM);
    let growth_perm = permutation_test_paired_batch(
        &arena.cols.lane_refs(field::G1),
        &arena.cols.lane_refs(field::G2),
        cfg.permutations,
        &seeds,
        &mut arena.kernels,
    )
    .expect("cohort has variance");
    let seeds = seeds_for(stream::EMPHASIS_BOOT);
    let emphasis_boot = bootstrap_mean_ci_batch(
        &arena.cols.lane_refs(field::EDIFF),
        0.95,
        cfg.bootstrap_reps,
        &seeds,
        &mut arena.kernels,
    )
    .expect("cohort has variance");
    let seeds = seeds_for(stream::GROWTH_BOOT);
    let growth_boot = bootstrap_mean_ci_batch(
        &arena.cols.lane_refs(field::GDIFF),
        0.95,
        cfg.bootstrap_reps,
        &seeds,
        &mut arena.kernels,
    )
    .expect("cohort has variance");
    let seeds = seeds_for(stream::SECTION_PERM);
    let sec_a_refs: Vec<&[f64]> = arena.sections.iter().map(|(a, _)| a.as_slice()).collect();
    let sec_b_refs: Vec<&[f64]> = arena.sections.iter().map(|(_, b)| b.as_slice()).collect();
    let section_perm = permutation_test_two_sample_batch(
        &sec_a_refs[..lanes],
        &sec_b_refs[..lanes],
        cfg.section_permutations,
        &seeds,
        &mut arena.kernels,
    )
    .expect("both sections populated");

    ctxs.iter()
        .enumerate()
        .map(|(lane, ctx)| {
            let (emphasis_ttest, growth_ttest, emphasis_d, growth_d) = parametrics[lane].clone();
            ReplicateSummary {
                index: ctx.index,
                seed: ctx.seed,
                emphasis_ttest,
                growth_ttest,
                emphasis_d,
                growth_d,
                emphasis_perm_p: emphasis_perm[lane].p_two_sided,
                growth_perm_p: growth_perm[lane].p_two_sided,
                emphasis_diff_ci: emphasis_boot[lane].clone(),
                growth_diff_ci: growth_boot[lane].clone(),
                section_perm_p: section_perm[lane].p_two_sided,
            }
        })
        .collect()
}

/// [`run_replication`] on the batch-major path: each work-queue chunk
/// runs [`run_chunk_batched`] over a structure-of-arrays
/// [`CohortBatch`] with per-worker arenas. Bit-identical to
/// [`run_replication`] for every thread count — same summaries, same
/// digest — just faster, because lockstep lanes overlap the resampling
/// kernels' accumulator chains and steady-state chunks allocate
/// nothing.
pub fn run_replication_batched(cfg: &ReplicationConfig) -> ReplicationReport {
    let summaries = ReplicationEngine::new(cfg.threads).run_chunked(
        cfg.replicates,
        cfg.master_seed,
        BatchArena::default,
        |arena, ctxs| run_chunk_batched(cfg, arena, ctxs),
    );
    ReplicationReport {
        config: cfg.clone(),
        summaries,
    }
}

/// Runs the batch: `cfg.replicates` independent studies on up to
/// `cfg.threads` OS threads, bit-identical for every thread count.
pub fn run_replication(cfg: &ReplicationConfig) -> ReplicationReport {
    let summaries =
        ReplicationEngine::new(cfg.threads).run(cfg.replicates, cfg.master_seed, |ctx| {
            summarize_replicate(cfg, ctx)
        });
    ReplicationReport {
        config: cfg.clone(),
        summaries,
    }
}

/// [`run_replication`], additionally recording engine metrics into
/// `registry`: virtual counters for chunks dispatched and replicates
/// completed (thread-count invariant, part of the deterministic
/// snapshot) plus wall-domain chunk-latency and queue-drain
/// diagnostics. The report itself is bit-identical to
/// [`run_replication`].
pub fn run_replication_with_metrics(
    cfg: &ReplicationConfig,
    registry: &obs::Registry,
) -> ReplicationReport {
    let summaries = ReplicationEngine::new(cfg.threads).run_with_metrics(
        cfg.replicates,
        cfg.master_seed,
        registry,
        |ctx| summarize_replicate(cfg, ctx),
    );
    ReplicationReport {
        config: cfg.clone(),
        summaries,
    }
}

/// [`run_replication`], additionally recording the deterministic
/// chunk-lifecycle trace (virtual time = replicate index; see
/// `ReplicationEngine::run_traced`). The report is bit-identical to
/// [`run_replication`] — the observer-effect invariant the root
/// `trace_golden` test enforces — and the trace is byte-identical for
/// every `cfg.threads`.
pub fn run_replication_traced(
    cfg: &ReplicationConfig,
    tcfg: &obs::trace::TraceConfig,
) -> (ReplicationReport, obs::trace::Trace) {
    let (summaries, trace) = ReplicationEngine::new(cfg.threads).run_traced(
        cfg.replicates,
        cfg.master_seed,
        tcfg,
        |ctx| summarize_replicate(cfg, ctx),
    );
    (
        ReplicationReport {
            config: cfg.clone(),
            summaries,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(threads: usize) -> ReplicationConfig {
        ReplicationConfig {
            replicates: 8,
            threads,
            num_students: 40,
            master_seed: 77,
            permutations: 300,
            bootstrap_reps: 200,
            section_permutations: 200,
        }
    }

    #[test]
    fn batch_is_bit_identical_for_threads_1_2_4_8() {
        let reference = run_replication(&small_config(1));
        for threads in [2, 4, 8] {
            let got = run_replication(&small_config(threads));
            assert_eq!(reference.summaries, got.summaries, "threads = {threads}");
            assert_eq!(reference.digest(), got.digest());
        }
    }

    #[test]
    fn scalar_and_batched_paths_are_bit_identical() {
        // The tentpole invariant: batch-major execution changes *when*
        // work happens, never *what* is computed. Replicate counts are
        // chosen to exercise full chunks, 4-lane groups, and scalar
        // tail lanes (13 = 8 + 4 + 1 inside one chunk).
        for replicates in [1usize, 5, 8, 13, 16, 35] {
            let cfg = ReplicationConfig {
                replicates,
                ..small_config(1)
            };
            let scalar = run_replication(&cfg);
            for threads in [1, 2, 4, 8] {
                let batched = run_replication_batched(&ReplicationConfig {
                    threads,
                    ..cfg.clone()
                });
                assert_eq!(
                    scalar.summaries, batched.summaries,
                    "replicates={replicates} threads={threads}"
                );
                assert_eq!(scalar.digest(), batched.digest());
            }
        }
    }

    #[test]
    fn batched_path_is_bit_identical_at_the_full_cohort_size() {
        // Same statement at the paper's 124-student cohort, where the
        // sign-flip word count per permutation differs from the small
        // configs (124 = 64 + 60-bit masked block).
        let cfg = ReplicationConfig {
            replicates: 6,
            threads: 2,
            permutations: 200,
            bootstrap_reps: 150,
            section_permutations: 100,
            ..Default::default()
        };
        let scalar = run_replication(&cfg);
        let batched = run_replication_batched(&cfg);
        assert_eq!(scalar.summaries, batched.summaries);
    }

    #[test]
    fn replicates_are_genuinely_independent() {
        let report = run_replication(&small_config(2));
        assert_eq!(report.summaries.len(), 8);
        let seeds: std::collections::HashSet<u64> =
            report.summaries.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 8, "every replicate has its own seed");
        assert_ne!(
            report.summaries[0].growth_ttest, report.summaries[1].growth_ttest,
            "different cohorts give different statistics"
        );
    }

    #[test]
    fn digest_is_sensitive_to_the_master_seed() {
        let a = run_replication(&small_config(2));
        let mut other = small_config(2);
        other.master_seed = 78;
        let b = run_replication(&other);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn instrumented_batch_matches_plain_and_snapshot_is_thread_invariant() {
        let plain = run_replication(&small_config(2));
        let mut json = Vec::new();
        for threads in [1, 4] {
            let registry = obs::Registry::new();
            let got = run_replication_with_metrics(&small_config(threads), &registry);
            assert_eq!(plain.digest(), got.digest(), "threads = {threads}");
            json.push(registry.snapshot().to_json());
        }
        assert_eq!(
            json[0], json[1],
            "virtual metrics are thread-count invariant"
        );
        assert!(json[0].contains("replicate/replicates_completed"));
    }

    #[test]
    fn paper_conclusions_recur_across_replicates() {
        // The generative model is calibrated to the paper's effect
        // sizes, so at full cohort size the headline conclusions should
        // recur in (almost) every replicate draw.
        let report = run_replication(&ReplicationConfig {
            replicates: 12,
            threads: 2,
            permutations: 500,
            bootstrap_reps: 300,
            section_permutations: 200,
            ..Default::default()
        });
        assert!(report.growth_significant_fraction() > 0.9);
        assert!(report.growth_effect_larger_fraction() > 0.9);
        assert!(report.permutation_agreement_fraction() > 0.9);
        assert!(report.section_flag_fraction() < 0.35);
        let (lo, hi) = report.growth_d_range();
        assert!(lo <= report.mean_growth_d() && report.mean_growth_d() <= hi);
        assert!(report.mean_growth_d() > 0.5, "{}", report.mean_growth_d());
    }
}
