//! Pearson correlation with significance and Guilford strength bands
//! (Table 4), plus Spearman rank correlation as a robustness extension.

use crate::error::{ensure_finite, StatsError};
use crate::special::t_sf_two_sided;
use crate::Result;

/// Guilford's (1956) qualitative bands for correlation strength, as used
/// by the paper to describe Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuilfordBand {
    /// |r| < 0.20 — slight; almost negligible relationship.
    Slight,
    /// 0.20–0.40 — low; definite but small relationship (first-half
    /// Teamwork, r = 0.38, lands here).
    Low,
    /// 0.40–0.70 — moderate; substantial relationship (most of Table 4).
    Moderate,
    /// 0.70–0.90 — high; marked relationship (Evaluation & Decision
    /// Making, r = 0.73).
    High,
    /// 0.90–1.00 — very high; very dependable relationship.
    VeryHigh,
}

impl GuilfordBand {
    /// Classifies a correlation coefficient.
    pub fn classify(r: f64) -> Self {
        let m = r.abs();
        if m < 0.20 {
            GuilfordBand::Slight
        } else if m < 0.40 {
            GuilfordBand::Low
        } else if m < 0.70 {
            GuilfordBand::Moderate
        } else if m < 0.90 {
            GuilfordBand::High
        } else {
            GuilfordBand::VeryHigh
        }
    }

    /// Guilford's descriptive label.
    pub fn label(&self) -> &'static str {
        match self {
            GuilfordBand::Slight => "slight",
            GuilfordBand::Low => "low",
            GuilfordBand::Moderate => "moderate",
            GuilfordBand::High => "high",
            GuilfordBand::VeryHigh => "very high",
        }
    }
}

/// A Pearson correlation with its significance test.
#[derive(Debug, Clone, PartialEq)]
pub struct PearsonResult {
    /// Correlation coefficient in [−1, 1].
    pub r: f64,
    /// t statistic for H0: rho = 0 (`r * sqrt((n−2)/(1−r²))`).
    pub t: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
    /// Number of paired observations.
    pub n: usize,
    /// 95% CI for rho via the Fisher z transformation.
    pub ci95: (f64, f64),
}

impl PearsonResult {
    /// Guilford band for this correlation.
    pub fn band(&self) -> GuilfordBand {
        GuilfordBand::classify(self.r)
    }

    /// The paper reports tiny p-values as "p < 0.001"; this mirrors that.
    pub fn p_display(&self) -> String {
        if self.p_two_sided < 0.001 {
            "p < 0.001".to_string()
        } else {
            format!("{:.3}", self.p_two_sided)
        }
    }
}

/// Pearson product-moment correlation between paired samples.
///
/// ```
/// use stats::pearson;
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let y = [2.1, 3.9, 6.2, 7.8, 10.1];
/// let r = pearson(&x, &y).unwrap();
/// assert!(r.r > 0.99);
/// assert!(r.p_two_sided < 0.01);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Result<PearsonResult> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 3 {
        return Err(StatsError::NotEnoughData {
            needed: 3,
            got: x.len(),
        });
    }
    ensure_finite(x)?;
    ensure_finite(y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (&xi, &yi) in x.iter().zip(y) {
        let (dx, dy) = (xi - mx, yi - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let r = (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0);
    let df = n - 2.0;
    let (t, p) = if (1.0 - r * r) < 1e-15 {
        (f64::INFINITY, 0.0)
    } else {
        let t = r * (df / (1.0 - r * r)).sqrt();
        (t, t_sf_two_sided(t, df)?)
    };
    // Fisher z CI.
    let z = 0.5 * ((1.0 + r) / (1.0 - r)).ln();
    let se = 1.0 / (n - 3.0).sqrt();
    let (zl, zh) = (z - 1.959_963_985 * se, z + 1.959_963_985 * se);
    let inv = |z: f64| z.tanh();
    Ok(PearsonResult {
        r,
        t,
        p_two_sided: p,
        n: x.len(),
        ci95: (inv(zl), inv(zh)),
    })
}

/// Assigns average ranks (ties share the mean of their rank positions).
pub fn average_ranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("finite values"));
    let mut ranks = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation (Pearson on average ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<PearsonResult> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    ensure_finite(x)?;
    ensure_finite(y)?;
    pearson(&average_ranks(x), &average_ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        let r = pearson(&x, &y).unwrap();
        assert!((r.r - 1.0).abs() < 1e-12);
        assert_eq!(r.p_two_sided, 0.0);
        assert_eq!(r.band(), GuilfordBand::VeryHigh);
    }

    #[test]
    fn perfect_negative_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [4.0, 3.0, 2.0, 1.0];
        let r = pearson(&x, &y).unwrap();
        assert!((r.r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_reference_value() {
        // r for x=[1..5], y=[2,1,4,3,5] is 0.8.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        let r = pearson(&x, &y).unwrap();
        assert!((r.r - 0.8).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_insignificant() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let r = pearson(&x, &y).unwrap();
        assert!(r.r.abs() < 0.3);
        assert!(r.p_two_sided > 0.4);
    }

    #[test]
    fn guilford_bands_match_paper_descriptions() {
        // Paper: 0.38 "low", 0.47–0.68 "moderate", 0.73 "high".
        assert_eq!(GuilfordBand::classify(0.38), GuilfordBand::Low);
        assert_eq!(GuilfordBand::classify(0.47), GuilfordBand::Moderate);
        assert_eq!(GuilfordBand::classify(0.68), GuilfordBand::Moderate);
        assert_eq!(GuilfordBand::classify(0.73), GuilfordBand::High);
        assert_eq!(GuilfordBand::classify(0.1), GuilfordBand::Slight);
        assert_eq!(GuilfordBand::classify(0.95), GuilfordBand::VeryHigh);
    }

    #[test]
    fn guilford_labels() {
        assert_eq!(GuilfordBand::Slight.label(), "slight");
        assert_eq!(GuilfordBand::Low.label(), "low");
        assert_eq!(GuilfordBand::Moderate.label(), "moderate");
        assert_eq!(GuilfordBand::High.label(), "high");
        assert_eq!(GuilfordBand::VeryHigh.label(), "very high");
    }

    #[test]
    fn p_display_uses_inequality_for_tiny_p() {
        let x: Vec<f64> = (0..124).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 0.7 + (v * 7.7).sin()).collect();
        let r = pearson(&x, &y).unwrap();
        assert_eq!(r.p_display(), "p < 0.001");
    }

    #[test]
    fn ci_contains_r() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [1.2, 1.9, 3.4, 3.8, 5.3, 5.9];
        let r = pearson(&x, &y).unwrap();
        assert!(r.ci95.0 < r.r && r.r < r.ci95.1);
        assert!(r.ci95.0 > -1.0 && r.ci95.1 < 1.0);
    }

    #[test]
    fn errors_on_degenerate_input() {
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0, 2.0]),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 2.0, 3.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert_eq!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn average_ranks_handles_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_is_one_for_monotone() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0]; // nonlinear but monotone
        let s = spearman(&x, &y).unwrap();
        assert!((s.r - 1.0).abs() < 1e-12);
        let p = pearson(&x, &y).unwrap();
        assert!(p.r < 1.0);
    }
}
