//! Special functions underpinning the distribution calculations.
//!
//! Everything here is implemented from first principles (Lanczos ln-gamma,
//! Lentz continued fraction for the regularized incomplete beta, Abramowitz
//! & Stegun rational erf) so the t-test and correlation p-values carry no
//! external dependency.

use crate::error::StatsError;
use crate::Result;

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 for x > 0; uses the reflection formula for x < 0.5.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function I_x(a, b).
///
/// Uses the continued-fraction expansion (Lentz's method) with the
/// symmetry transformation for fast convergence.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || b <= 0.0 {
        return Err(StatsError::InvalidParameter(
            "incomplete_beta: a,b must be > 0",
        ));
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter(
            "incomplete_beta: x must be in [0,1]",
        ));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) so the CF converges fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((ln_front.exp() * beta_cf(a, b, x)?) / a)
    } else {
        Ok(1.0 - (ln_front.exp() * beta_cf(b, a, 1.0 - x)?) / b)
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> Result<f64> {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    // Converged to working precision anyway for all practical (a, b).
    Ok(h)
}

/// Error function, Abramowitz & Stegun 7.1.26 rational approximation
/// (|error| ≤ 1.5e-7), with sign symmetry.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9).
pub fn normal_quantile(p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidParameter(
            "normal_quantile: p must be in [0,1]",
        ));
    }
    if p == 0.0 {
        return Ok(f64::NEG_INFINITY);
    }
    if p == 1.0 {
        return Ok(f64::INFINITY);
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    Ok(x)
}

/// Two-sided p-value for a Student-t statistic with `df` degrees of
/// freedom: P(|T| >= |t|).
pub fn t_sf_two_sided(t: f64, df: f64) -> Result<f64> {
    if df <= 0.0 {
        return Err(StatsError::InvalidParameter(
            "t_sf_two_sided: df must be > 0",
        ));
    }
    if !t.is_finite() {
        return Err(StatsError::NonFinite);
    }
    let x = df / (df + t * t);
    incomplete_beta(df / 2.0, 0.5, x)
}

/// Student-t cumulative distribution function P(T <= t).
pub fn t_cdf(t: f64, df: f64) -> Result<f64> {
    let p2 = t_sf_two_sided(t, df)?;
    Ok(if t >= 0.0 { 1.0 - p2 / 2.0 } else { p2 / 2.0 })
}

/// Two-sided critical value t* such that P(|T| >= t*) = alpha, found by
/// bisection on [`t_sf_two_sided`].
pub fn t_critical_two_sided(alpha: f64, df: f64) -> Result<f64> {
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(StatsError::InvalidParameter(
            "t_critical: alpha must be in (0,1)",
        ));
    }
    if df <= 0.0 {
        return Err(StatsError::InvalidParameter("t_critical: df must be > 0"));
    }
    // The replication battery evaluates this at one fixed (alpha, df) for
    // every replicate, and the bisection dominates the cost of a whole
    // t-test. A one-entry thread-local memo keyed on the exact argument
    // bit patterns hands back the previously computed value verbatim, so
    // cached and uncached calls are bit-identical by construction.
    thread_local! {
        static LAST: std::cell::Cell<Option<(u64, u64, u64)>> =
            const { std::cell::Cell::new(None) };
    }
    let key = (alpha.to_bits(), df.to_bits());
    if let Some((ka, kd, bits)) = LAST.with(|c| c.get()) {
        if (ka, kd) == key {
            return Ok(f64::from_bits(bits));
        }
    }
    let (mut lo, mut hi) = (0.0_f64, 1e3_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_sf_two_sided(mid, df)? > alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let critical = 0.5 * (lo + hi);
    LAST.with(|c| c.set(Some((key.0, key.1, critical.to_bits()))));
    Ok(critical)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n−1)!
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), (24.0f64).ln(), 1e-10));
        assert!(close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-9));
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-10));
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) ≈ 3.625609908
        assert!(close(ln_gamma(0.25), 3.625_609_908_2_f64.ln(), 1e-8));
    }

    #[test]
    fn incomplete_beta_bounds() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0).unwrap(), 1.0);
        assert!(incomplete_beta(-1.0, 1.0, 0.5).is_err());
        assert!(incomplete_beta(1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x
        for &x in &[0.1, 0.37, 0.9] {
            assert!(close(incomplete_beta(1.0, 1.0, x).unwrap(), x, 1e-12));
        }
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        let lhs = incomplete_beta(2.5, 4.0, 0.3).unwrap();
        let rhs = 1.0 - incomplete_beta(4.0, 2.5, 0.7).unwrap();
        assert!(close(lhs, rhs, 1e-12));
    }

    #[test]
    fn erf_reference_values() {
        // The rational approximation leaves a ~1e-9 residual at 0.
        assert!(close(erf(0.0), 0.0, 1e-8));
        assert!(close(erf(1.0), 0.842_700_79, 1e-6));
        assert!(close(erf(-1.0), -0.842_700_79, 1e-6));
        assert!(close(erf(2.0), 0.995_322_27, 1e-6));
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!(close(normal_cdf(0.0), 0.5, 1e-9));
        assert!(close(normal_cdf(1.96), 0.975, 2e-4));
        assert!(close(normal_cdf(-1.644_85), 0.05, 2e-4));
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for &p in &[0.001, 0.01, 0.05, 0.3, 0.5, 0.8, 0.975, 0.999] {
            let z = normal_quantile(p).unwrap();
            assert!(close(normal_cdf(z), p, 5e-5), "p = {p}");
        }
        assert_eq!(normal_quantile(0.0).unwrap(), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0).unwrap(), f64::INFINITY);
        assert!(normal_quantile(1.5).is_err());
    }

    #[test]
    fn t_two_sided_reference_values() {
        // Classic table entries: t=2.0, df=10 → p ≈ 0.0734;
        // t=2.63, df=123 → p ≈ 0.0096 (cf. paper Table 1's magnitude).
        assert!(close(t_sf_two_sided(2.0, 10.0).unwrap(), 0.0734, 2e-3));
        let p = t_sf_two_sided(2.63, 123.0).unwrap();
        assert!(p > 0.005 && p < 0.015, "p = {p}");
    }

    #[test]
    fn t_cdf_symmetry_and_monotonicity() {
        let df = 7.0;
        assert!(close(t_cdf(0.0, df).unwrap(), 0.5, 1e-12));
        let c = t_cdf(1.3, df).unwrap();
        let d = t_cdf(-1.3, df).unwrap();
        assert!(close(c + d, 1.0, 1e-12));
        assert!(t_cdf(2.0, df).unwrap() > c);
    }

    #[test]
    fn t_converges_to_normal_for_large_df() {
        let p_t = t_sf_two_sided(1.96, 1e6).unwrap();
        assert!(close(p_t, 0.05, 1e-3));
    }

    #[test]
    fn t_critical_matches_tables() {
        // t*(alpha=.05, df=10) ≈ 2.228; df=120 ≈ 1.980
        assert!(close(
            t_critical_two_sided(0.05, 10.0).unwrap(),
            2.228,
            2e-3
        ));
        assert!(close(
            t_critical_two_sided(0.05, 120.0).unwrap(),
            1.980,
            2e-3
        ));
        assert!(t_critical_two_sided(0.0, 5.0).is_err());
        assert!(t_critical_two_sided(0.05, 0.0).is_err());
    }

    #[test]
    fn t_sf_rejects_bad_input() {
        assert!(t_sf_two_sided(f64::NAN, 5.0).is_err());
        assert!(t_sf_two_sided(1.0, -1.0).is_err());
    }
}
