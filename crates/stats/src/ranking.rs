//! Ranked score lists (Tables 5 and 6) and rank-comparison utilities.

use crate::error::StatsError;
use crate::Result;

/// One labelled item in a ranking, highest score first.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedItem {
    /// 1-based rank (1 = highest score).
    pub rank: usize,
    /// Item label (e.g. "Teamwork").
    pub label: String,
    /// The score being ranked (a composite average in the paper).
    pub score: f64,
}

/// Ranks labelled scores in descending order (rank 1 = highest), the way
/// the paper presents "Ranking of Student Perception" tables.
///
/// Ties keep their input order and receive consecutive ranks, matching a
/// table presentation rather than statistical tied ranks (see
/// [`crate::pearson::average_ranks`] for the latter).
pub fn rank_scores(items: &[(&str, f64)]) -> Result<Vec<RankedItem>> {
    if items.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    if items.iter().any(|(_, s)| !s.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    let mut indexed: Vec<(usize, &(&str, f64))> = items.iter().enumerate().collect();
    indexed.sort_by(|(ia, (_, sa)), (ib, (_, sb))| {
        sb.partial_cmp(sa).expect("finite scores").then(ia.cmp(ib))
    });
    Ok(indexed
        .into_iter()
        .enumerate()
        .map(|(i, (_, (label, score)))| RankedItem {
            rank: i + 1,
            label: (*label).to_string(),
            score: *score,
        })
        .collect())
}

/// Position (1-based rank) of `label` in a ranking, if present.
pub fn rank_of(ranking: &[RankedItem], label: &str) -> Option<usize> {
    ranking.iter().find(|r| r.label == label).map(|r| r.rank)
}

/// Spread between the top and bottom scores of a ranking; the paper uses
/// this to argue first-half growth was "more selective" (larger spread).
pub fn spread(ranking: &[RankedItem]) -> Result<f64> {
    if ranking.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    let max = ranking.first().expect("non-empty").score;
    let min = ranking.last().expect("non-empty").score;
    Ok(max - min)
}

/// Number of labels whose rank differs between two rankings over the same
/// label set (a simple stability measure between the two halves).
pub fn rank_changes(a: &[RankedItem], b: &[RankedItem]) -> usize {
    a.iter()
        .filter(|ia| {
            rank_of(b, &ia.label)
                .map(|rb| rb != ia.rank)
                .unwrap_or(true)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_descending() {
        let r = rank_scores(&[("a", 1.0), ("b", 3.0), ("c", 2.0)]).unwrap();
        assert_eq!(r[0].label, "b");
        assert_eq!(r[0].rank, 1);
        assert_eq!(r[1].label, "c");
        assert_eq!(r[2].label, "a");
        assert_eq!(r[2].rank, 3);
    }

    #[test]
    fn ties_keep_input_order() {
        let r = rank_scores(&[("x", 2.0), ("y", 2.0), ("z", 5.0)]).unwrap();
        assert_eq!(r[0].label, "z");
        assert_eq!(r[1].label, "x");
        assert_eq!(r[2].label, "y");
    }

    #[test]
    fn rank_of_finds_labels() {
        let r = rank_scores(&[("Teamwork", 4.38), ("Implementation", 4.16)]).unwrap();
        assert_eq!(rank_of(&r, "Teamwork"), Some(1));
        assert_eq!(rank_of(&r, "Implementation"), Some(2));
        assert_eq!(rank_of(&r, "Missing"), None);
    }

    #[test]
    fn spread_is_top_minus_bottom() {
        let r = rank_scores(&[("a", 4.14), ("b", 3.36), ("c", 3.8)]).unwrap();
        assert!((spread(&r).unwrap() - 0.78).abs() < 1e-12);
    }

    #[test]
    fn rank_changes_counts_moves() {
        let a = rank_scores(&[("t", 3.0), ("i", 2.0), ("c", 1.0)]).unwrap();
        let b = rank_scores(&[("t", 3.0), ("c", 2.5), ("i", 2.0)]).unwrap();
        assert_eq!(rank_changes(&a, &a), 0);
        assert_eq!(rank_changes(&a, &b), 2); // i and c swapped
    }

    #[test]
    fn errors() {
        assert!(rank_scores(&[]).is_err());
        assert!(rank_scores(&[("a", f64::NAN)]).is_err());
        assert!(spread(&[]).is_err());
    }
}
