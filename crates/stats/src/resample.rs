//! Resampling methods: bootstrap confidence intervals and permutation
//! tests. The paper reports only parametric tests; these let the
//! reproduction check that its conclusions do not hinge on normality.

use crate::error::{ensure_finite, StatsError};
use crate::rng::Xoshiro256;
use crate::Result;

/// A bootstrap percentile confidence interval for a statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Number of bootstrap replicates drawn.
    pub replicates: usize,
}

/// Percentile bootstrap CI for an arbitrary statistic of one sample.
///
/// `level` is the coverage (e.g. 0.95); `reps` the number of resamples.
pub fn bootstrap_ci<F>(
    data: &[f64],
    statistic: F,
    level: f64,
    reps: usize,
    seed: u64,
) -> Result<BootstrapCi>
where
    F: Fn(&[f64]) -> f64,
{
    if data.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: data.len(),
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter("bootstrap level must be in (0,1)"));
    }
    if reps == 0 {
        return Err(StatsError::InvalidParameter("bootstrap reps must be positive"));
    }
    ensure_finite(data)?;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(reps);
    let mut resample = vec![0.0; data.len()];
    for _ in 0..reps {
        for slot in resample.iter_mut() {
            *slot = data[rng.next_below(data.len())];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistic"));
    let alpha = 1.0 - level;
    let lo_idx = ((alpha / 2.0) * reps as f64).floor() as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * reps as f64).ceil() as usize).min(reps - 1);
    Ok(BootstrapCi {
        estimate: statistic(data),
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        replicates: reps,
    })
}

/// Result of a permutation test.
#[derive(Debug, Clone, PartialEq)]
pub struct PermutationTest {
    /// Observed value of the statistic.
    pub observed: f64,
    /// Two-sided permutation p-value (fraction of permuted statistics at
    /// least as extreme in absolute value, with the +1 correction).
    pub p_two_sided: f64,
    /// Number of permutations drawn.
    pub permutations: usize,
}

/// Paired permutation test on mean(second − first): randomly flips the
/// sign of each pair's difference. The nonparametric analogue of the
/// paper's Table 1 paired t-test.
pub fn permutation_test_paired(
    first: &[f64],
    second: &[f64],
    permutations: usize,
    seed: u64,
) -> Result<PermutationTest> {
    if first.len() != second.len() {
        return Err(StatsError::LengthMismatch {
            left: first.len(),
            right: second.len(),
        });
    }
    if first.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: first.len(),
        });
    }
    if permutations == 0 {
        return Err(StatsError::InvalidParameter("permutations must be positive"));
    }
    ensure_finite(first)?;
    ensure_finite(second)?;
    let diffs: Vec<f64> = second.iter().zip(first).map(|(s, f)| s - f).collect();
    let n = diffs.len() as f64;
    let observed = diffs.iter().sum::<f64>() / n;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut extreme = 0usize;
    for _ in 0..permutations {
        let perm_mean: f64 = diffs
            .iter()
            .map(|&d| if rng.next_u64() & 1 == 0 { d } else { -d })
            .sum::<f64>()
            / n;
        if perm_mean.abs() >= observed.abs() - 1e-15 {
            extreme += 1;
        }
    }
    Ok(PermutationTest {
        observed,
        p_two_sided: (extreme + 1) as f64 / (permutations + 1) as f64,
        permutations,
    })
}

/// Two-sample permutation test on the difference of means (label
/// shuffling); nonparametric analogue of the independent t-test.
pub fn permutation_test_two_sample(
    a: &[f64],
    b: &[f64],
    permutations: usize,
    seed: u64,
) -> Result<PermutationTest> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: a.len().min(b.len()),
        });
    }
    if permutations == 0 {
        return Err(StatsError::InvalidParameter("permutations must be positive"));
    }
    ensure_finite(a)?;
    ensure_finite(b)?;
    let observed =
        a.iter().sum::<f64>() / a.len() as f64 - b.iter().sum::<f64>() / b.len() as f64;
    let mut pooled: Vec<f64> = a.iter().chain(b).copied().collect();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut extreme = 0usize;
    for _ in 0..permutations {
        rng.shuffle(&mut pooled);
        let (pa, pb) = pooled.split_at(a.len());
        let stat =
            pa.iter().sum::<f64>() / pa.len() as f64 - pb.iter().sum::<f64>() / pb.len() as f64;
        if stat.abs() >= observed.abs() - 1e-15 {
            extreme += 1;
        }
    }
    Ok(PermutationTest {
        observed,
        p_two_sided: (extreme + 1) as f64 / (permutations + 1) as f64,
        permutations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::mean;
    use crate::ttest::t_test_paired;

    #[test]
    fn bootstrap_ci_covers_the_mean() {
        let data: Vec<f64> = (0..60).map(|i| 4.0 + 0.2 * ((i * 37 % 11) as f64 - 5.0)).collect();
        let ci = bootstrap_ci(&data, |d| mean(d).unwrap(), 0.95, 500, 42).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.hi - ci.lo < 1.0);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = bootstrap_ci(&data, |d| mean(d).unwrap(), 0.9, 200, 7).unwrap();
        let b = bootstrap_ci(&data, |d| mean(d).unwrap(), 0.9, 200, 7).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&data, |d| mean(d).unwrap(), 0.9, 200, 8).unwrap();
        assert!(a.lo != c.lo || a.hi != c.hi);
    }

    #[test]
    fn bootstrap_rejects_bad_params() {
        let d = [1.0, 2.0, 3.0];
        assert!(bootstrap_ci(&d, |x| x[0], 1.5, 10, 0).is_err());
        assert!(bootstrap_ci(&d, |x| x[0], 0.9, 0, 0).is_err());
        assert!(bootstrap_ci(&[1.0], |x| x[0], 0.9, 10, 0).is_err());
    }

    #[test]
    fn paired_permutation_agrees_with_t_test_on_strong_effect() {
        let first: Vec<f64> = (0..40).map(|i| 3.5 + 0.05 * (i % 5) as f64).collect();
        let second: Vec<f64> = first.iter().map(|x| x + 0.3 + 0.02 * (x * 10.0).sin()).collect();
        let p = permutation_test_paired(&first, &second, 2000, 99).unwrap();
        let t = t_test_paired(&first, &second).unwrap();
        assert!(p.p_two_sided < 0.01);
        assert!(t.p_two_sided < 0.01);
        assert!((p.observed - t.mean_difference).abs() < 1e-12);
    }

    #[test]
    fn paired_permutation_null_case() {
        // Differences symmetric around zero → p should be large.
        let first: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let second: Vec<f64> = first
            .iter()
            .enumerate()
            .map(|(i, x)| x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let p = permutation_test_paired(&first, &second, 1000, 5).unwrap();
        assert!(p.p_two_sided > 0.3);
    }

    #[test]
    fn two_sample_permutation_detects_shift() {
        let a: Vec<f64> = (0..25).map(|i| 5.0 + 0.1 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..25).map(|i| 4.0 + 0.1 * (i % 5) as f64).collect();
        let p = permutation_test_two_sample(&a, &b, 1000, 3).unwrap();
        assert!(p.observed > 0.9);
        assert!(p.p_two_sided < 0.01);
    }

    #[test]
    fn permutation_errors() {
        assert!(permutation_test_paired(&[1.0], &[1.0], 10, 0).is_err());
        assert!(permutation_test_paired(&[1.0, 2.0], &[1.0], 10, 0).is_err());
        assert!(permutation_test_two_sample(&[1.0, 2.0], &[3.0, 4.0], 0, 0).is_err());
    }
}
