//! Resampling methods: bootstrap confidence intervals and permutation
//! tests. The paper reports only parametric tests; these let the
//! reproduction check that its conclusions do not hinge on normality.
//!
//! Each procedure comes in two forms:
//!
//! * the original serial form (`bootstrap_ci`, `permutation_test_paired`,
//!   `permutation_test_two_sample`), kept draw-for-draw stable so existing
//!   seeded results are reproducible; and
//! * a `*_par` form that shards replicates across OS threads. The shard
//!   layout is a pure function of the replicate count ([`SHARD_REPS`]
//!   replicates per shard), and every shard draws from its own
//!   [`StreamSeeder`]-derived RNG stream — so the result is bit-identical
//!   for any thread count, including 1. The `*_par` kernels additionally
//!   use faster draw schemes (sign flips consumed as bit masks, partial
//!   Fisher–Yates selection, two bootstrap indices per RNG word), which
//!   is why their p-values differ from the serial form's in the random
//!   stream consumed — never in distribution.

use crate::error::{ensure_finite, StatsError};
use crate::rng::{StreamSeeder, Xoshiro256};
use crate::Result;

/// Resampling replicates handled by one RNG shard in the `*_par`
/// procedures. Fixed so the shard layout — and therefore every random
/// draw — depends only on the total replicate count, never on how many
/// threads execute the shards.
pub const SHARD_REPS: usize = 256;

pub(crate) fn shard_count(reps: usize) -> usize {
    reps.div_ceil(SHARD_REPS)
}

pub(crate) fn reps_in_shard(reps: usize, shard: usize) -> usize {
    SHARD_REPS.min(reps - shard * SHARD_REPS)
}

/// Runs `job` once per shard index on up to `threads` OS threads and
/// returns the results in shard order. Work is pulled from a shared
/// atomic counter; because each job is a pure function of its shard
/// index, scheduling cannot affect the merged result.
fn run_sharded<T, F>(shards: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(shards);
    if threads <= 1 {
        return (0..shards).map(job).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..shards).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                let shard = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if shard >= shards || tx.send((shard, job(shard))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (shard, value) in rx.iter() {
            slots[shard] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every shard completes"))
        .collect()
}

/// A reusable scratch buffer for drawing with-replacement resamples,
/// shared by the serial bootstrap and the `*_par` shard kernels so the
/// inner loop never reallocates.
#[derive(Debug, Clone, Default)]
pub struct ResampleScratch {
    buf: Vec<f64>,
}

impl ResampleScratch {
    /// An empty scratch; grows to the data length on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws `data.len()` values with replacement, one RNG word per
    /// draw — the draw order the original serial bootstrap used, kept so
    /// seeded serial results stay stable.
    pub fn fill(&mut self, data: &[f64], rng: &mut Xoshiro256) -> &[f64] {
        self.buf.resize(data.len(), 0.0);
        for slot in self.buf.iter_mut() {
            *slot = data[rng.next_below(data.len())];
        }
        &self.buf
    }

    /// Draws `data.len()` values with replacement, two indices per RNG
    /// word (32-bit Lemire halves; bias is negligible for lengths far
    /// below 2^32) — the fast path the `*_par` kernels use.
    pub fn fill_packed(&mut self, data: &[f64], rng: &mut Xoshiro256) -> &[f64] {
        debug_assert!((data.len() as u64) < (1 << 32), "sample too large");
        self.buf.resize(data.len(), 0.0);
        let len = data.len() as u64;
        let mut pairs = self.buf.chunks_exact_mut(2);
        for pair in pairs.by_ref() {
            let word = rng.next_u64();
            pair[0] = data[((word as u32 as u64 * len) >> 32) as usize];
            pair[1] = data[(((word >> 32) * len) >> 32) as usize];
        }
        if let [last] = pairs.into_remainder() {
            *last = data[rng.next_below(data.len())];
        }
        &self.buf
    }
}

/// A bootstrap percentile confidence interval for a statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Number of bootstrap replicates drawn.
    pub replicates: usize,
}

/// Symmetric percentile indices into `reps` sorted replicates.
///
/// The lower index is `floor(α/2 · reps)` clamped into the lower half;
/// the upper index is its mirror `reps − 1 − lo`. The previous
/// formulation took `ceil((1 − α/2) · reps)`, which makes the upper tail
/// one rank wider than the lower and, for tiny `reps`, could clamp onto
/// the lower index and collapse the interval to a point.
pub(crate) fn percentile_bounds(reps: usize, level: f64) -> (usize, usize) {
    let alpha = 1.0 - level;
    let lo = (((alpha / 2.0) * reps as f64).floor() as usize).min((reps - 1) / 2);
    (lo, reps - 1 - lo)
}

pub(crate) fn validate_bootstrap(data: &[f64], level: f64, reps: usize) -> Result<()> {
    if data.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: data.len(),
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter(
            "bootstrap level must be in (0,1)",
        ));
    }
    if reps == 0 {
        return Err(StatsError::InvalidParameter(
            "bootstrap reps must be positive",
        ));
    }
    ensure_finite(data)
}

fn bootstrap_from_stats<F>(
    data: &[f64],
    statistic: F,
    level: f64,
    mut stats: Vec<f64>,
) -> BootstrapCi
where
    F: Fn(&[f64]) -> f64,
{
    let reps = stats.len();
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistic"));
    let (lo_idx, hi_idx) = percentile_bounds(reps, level);
    BootstrapCi {
        estimate: statistic(data),
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        replicates: reps,
    }
}

/// Percentile bootstrap CI for an arbitrary statistic of one sample.
///
/// `level` is the coverage (e.g. 0.95); `reps` the number of resamples.
pub fn bootstrap_ci<F>(
    data: &[f64],
    statistic: F,
    level: f64,
    reps: usize,
    seed: u64,
) -> Result<BootstrapCi>
where
    F: Fn(&[f64]) -> f64,
{
    validate_bootstrap(data, level, reps)?;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut scratch = ResampleScratch::new();
    let mut stats = Vec::with_capacity(reps);
    for _ in 0..reps {
        stats.push(statistic(scratch.fill(data, &mut rng)));
    }
    Ok(bootstrap_from_stats(data, statistic, level, stats))
}

/// [`bootstrap_ci`] with replicates sharded across up to `threads` OS
/// threads, each shard drawing from its own seed-split RNG stream.
///
/// The result is bit-identical for every `threads` value (shards are
/// merged in shard order before the percentile step), but differs from
/// the serial [`bootstrap_ci`] for the same seed because the shard
/// streams consume different random draws.
pub fn bootstrap_ci_par<F>(
    data: &[f64],
    statistic: F,
    level: f64,
    reps: usize,
    seed: u64,
    threads: usize,
) -> Result<BootstrapCi>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    validate_bootstrap(data, level, reps)?;
    let seeder = StreamSeeder::new(seed);
    let per_shard = run_sharded(shard_count(reps), threads, |shard| {
        let mut rng = seeder.stream(shard as u64);
        let mut scratch = ResampleScratch::new();
        let mut out = Vec::with_capacity(reps_in_shard(reps, shard));
        for _ in 0..reps_in_shard(reps, shard) {
            out.push(statistic(scratch.fill_packed(data, &mut rng)));
        }
        out
    });
    let stats: Vec<f64> = per_shard.into_iter().flatten().collect();
    Ok(bootstrap_from_stats(data, statistic, level, stats))
}

/// Result of a permutation test.
#[derive(Debug, Clone, PartialEq)]
pub struct PermutationTest {
    /// Observed value of the statistic.
    pub observed: f64,
    /// Two-sided permutation p-value (fraction of permuted statistics at
    /// least as extreme in absolute value, with the +1 correction).
    pub p_two_sided: f64,
    /// Number of permutations drawn.
    pub permutations: usize,
}

pub(crate) fn validate_paired(first: &[f64], second: &[f64], permutations: usize) -> Result<()> {
    if first.len() != second.len() {
        return Err(StatsError::LengthMismatch {
            left: first.len(),
            right: second.len(),
        });
    }
    if first.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: first.len(),
        });
    }
    if permutations == 0 {
        return Err(StatsError::InvalidParameter(
            "permutations must be positive",
        ));
    }
    ensure_finite(first)?;
    ensure_finite(second)
}

/// Paired permutation test on mean(second − first): randomly flips the
/// sign of each pair's difference. The nonparametric analogue of the
/// paper's Table 1 paired t-test.
pub fn permutation_test_paired(
    first: &[f64],
    second: &[f64],
    permutations: usize,
    seed: u64,
) -> Result<PermutationTest> {
    validate_paired(first, second, permutations)?;
    let diffs: Vec<f64> = second.iter().zip(first).map(|(s, f)| s - f).collect();
    let n = diffs.len() as f64;
    let observed = diffs.iter().sum::<f64>() / n;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut extreme = 0usize;
    for _ in 0..permutations {
        let perm_mean: f64 = diffs
            .iter()
            .map(|&d| if rng.next_u64() & 1 == 0 { d } else { -d })
            .sum::<f64>()
            / n;
        if perm_mean.abs() >= observed.abs() - 1e-15 {
            extreme += 1;
        }
    }
    Ok(PermutationTest {
        observed,
        p_two_sided: (extreme + 1) as f64 / (permutations + 1) as f64,
        permutations,
    })
}

/// One shard of sign-flip permutations. Signs are consumed 64 pairs per
/// RNG word: a set bit flips that pair, and the flipped-pair sum is
/// accumulated by iterating only the set bits (expected n/2 adds) on
/// pre-doubled differences, so the permuted sum is `total − Σ 2·dᵢ`.
fn paired_sign_flip_extremes(
    diffs_doubled: &[f64],
    total: f64,
    threshold: f64,
    reps: usize,
    rng: &mut Xoshiro256,
) -> usize {
    let n = diffs_doubled.len();
    let inv_n = 1.0 / n as f64;
    let mut extreme = 0usize;
    for _ in 0..reps {
        let mut flipped = 0.0;
        let mut base = 0usize;
        while base < n {
            let block = (n - base).min(64);
            let mut mask = rng.next_u64();
            if block < 64 {
                mask &= (1u64 << block) - 1;
            }
            while mask != 0 {
                flipped += diffs_doubled[base + mask.trailing_zeros() as usize];
                mask &= mask - 1;
            }
            base += block;
        }
        if ((total - flipped) * inv_n).abs() >= threshold {
            extreme += 1;
        }
    }
    extreme
}

/// [`permutation_test_paired`] with permutations sharded across up to
/// `threads` OS threads on seed-split streams; bit-identical for every
/// thread count (extreme counts are integers, merged by summation).
pub fn permutation_test_paired_par(
    first: &[f64],
    second: &[f64],
    permutations: usize,
    seed: u64,
    threads: usize,
) -> Result<PermutationTest> {
    validate_paired(first, second, permutations)?;
    let diffs_doubled: Vec<f64> = second
        .iter()
        .zip(first)
        .map(|(s, f)| 2.0 * (s - f))
        .collect();
    let total: f64 = diffs_doubled.iter().sum::<f64>() / 2.0;
    let observed = total / diffs_doubled.len() as f64;
    let threshold = observed.abs() - 1e-15;
    let seeder = StreamSeeder::new(seed);
    let extreme: usize = run_sharded(shard_count(permutations), threads, |shard| {
        let mut rng = seeder.stream(shard as u64);
        paired_sign_flip_extremes(
            &diffs_doubled,
            total,
            threshold,
            reps_in_shard(permutations, shard),
            &mut rng,
        )
    })
    .into_iter()
    .sum();
    Ok(PermutationTest {
        observed,
        p_two_sided: (extreme + 1) as f64 / (permutations + 1) as f64,
        permutations,
    })
}

pub(crate) fn validate_two_sample(a: &[f64], b: &[f64], permutations: usize) -> Result<()> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: a.len().min(b.len()),
        });
    }
    if permutations == 0 {
        return Err(StatsError::InvalidParameter(
            "permutations must be positive",
        ));
    }
    ensure_finite(a)?;
    ensure_finite(b)
}

/// Two-sample permutation test on the difference of means (label
/// shuffling); nonparametric analogue of the independent t-test.
pub fn permutation_test_two_sample(
    a: &[f64],
    b: &[f64],
    permutations: usize,
    seed: u64,
) -> Result<PermutationTest> {
    validate_two_sample(a, b, permutations)?;
    let observed = a.iter().sum::<f64>() / a.len() as f64 - b.iter().sum::<f64>() / b.len() as f64;
    let mut pooled: Vec<f64> = a.iter().chain(b).copied().collect();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut extreme = 0usize;
    for _ in 0..permutations {
        rng.shuffle(&mut pooled);
        let (pa, pb) = pooled.split_at(a.len());
        let stat =
            pa.iter().sum::<f64>() / pa.len() as f64 - pb.iter().sum::<f64>() / pb.len() as f64;
        if stat.abs() >= observed.abs() - 1e-15 {
            extreme += 1;
        }
    }
    Ok(PermutationTest {
        observed,
        p_two_sided: (extreme + 1) as f64 / (permutations + 1) as f64,
        permutations,
    })
}

/// One shard of label-shuffle permutations. Only the first group is
/// materialised, by a partial Fisher–Yates over the pooled values
/// (n_a draws instead of n), and the second group's sum is recovered
/// from the pooled total — halving both the RNG and summation work of a
/// full shuffle.
fn two_sample_partial_shuffle_extremes(
    pooled: &mut [f64],
    n_a: usize,
    total: f64,
    threshold: f64,
    reps: usize,
    rng: &mut Xoshiro256,
) -> usize {
    let n = pooled.len();
    let inv_a = 1.0 / n_a as f64;
    let inv_b = 1.0 / (n - n_a) as f64;
    let mut extreme = 0usize;
    for _ in 0..reps {
        let mut sum_a = 0.0;
        for i in 0..n_a {
            let j = i + rng.next_below(n - i);
            pooled.swap(i, j);
            sum_a += pooled[i];
        }
        if (sum_a * inv_a - (total - sum_a) * inv_b).abs() >= threshold {
            extreme += 1;
        }
    }
    extreme
}

/// [`permutation_test_two_sample`] with permutations sharded across up
/// to `threads` OS threads on seed-split streams; bit-identical for
/// every thread count. Each shard permutes its own copy of the pooled
/// sample starting from the original ordering.
pub fn permutation_test_two_sample_par(
    a: &[f64],
    b: &[f64],
    permutations: usize,
    seed: u64,
    threads: usize,
) -> Result<PermutationTest> {
    validate_two_sample(a, b, permutations)?;
    let observed = a.iter().sum::<f64>() / a.len() as f64 - b.iter().sum::<f64>() / b.len() as f64;
    let threshold = observed.abs() - 1e-15;
    let pooled: Vec<f64> = a.iter().chain(b).copied().collect();
    let total: f64 = pooled.iter().sum();
    let seeder = StreamSeeder::new(seed);
    let extreme: usize = run_sharded(shard_count(permutations), threads, |shard| {
        let mut rng = seeder.stream(shard as u64);
        let mut shard_pool = pooled.clone();
        two_sample_partial_shuffle_extremes(
            &mut shard_pool,
            a.len(),
            total,
            threshold,
            reps_in_shard(permutations, shard),
            &mut rng,
        )
    })
    .into_iter()
    .sum();
    Ok(PermutationTest {
        observed,
        p_two_sided: (extreme + 1) as f64 / (permutations + 1) as f64,
        permutations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::mean;
    use crate::ttest::t_test_paired;
    use proptest::prelude::*;

    #[test]
    fn bootstrap_ci_covers_the_mean() {
        let data: Vec<f64> = (0..60)
            .map(|i| 4.0 + 0.2 * ((i * 37 % 11) as f64 - 5.0))
            .collect();
        let ci = bootstrap_ci(&data, |d| mean(d).unwrap(), 0.95, 500, 42).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.hi - ci.lo < 1.0);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = bootstrap_ci(&data, |d| mean(d).unwrap(), 0.9, 200, 7).unwrap();
        let b = bootstrap_ci(&data, |d| mean(d).unwrap(), 0.9, 200, 7).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&data, |d| mean(d).unwrap(), 0.9, 200, 8).unwrap();
        assert!(a.lo != c.lo || a.hi != c.hi);
    }

    #[test]
    fn bootstrap_rejects_bad_params() {
        let d = [1.0, 2.0, 3.0];
        assert!(bootstrap_ci(&d, |x| x[0], 1.5, 10, 0).is_err());
        assert!(bootstrap_ci(&d, |x| x[0], 0.9, 0, 0).is_err());
        assert!(bootstrap_ci(&[1.0], |x| x[0], 0.9, 10, 0).is_err());
        assert!(bootstrap_ci_par(&d, |x| x[0], 1.5, 10, 0, 2).is_err());
        assert!(permutation_test_paired_par(&[1.0], &[1.0], 10, 0, 2).is_err());
        assert!(permutation_test_two_sample_par(&[1.0, 2.0], &[3.0, 4.0], 0, 0, 2).is_err());
    }

    #[test]
    fn percentile_bounds_are_symmetric_and_never_collapse_backwards() {
        // reps=1 is the degenerate floor: both bounds are the only rank.
        assert_eq!(percentile_bounds(1, 0.95), (0, 0));
        // Tiny reps with a wide level used to let ceil+clamp produce
        // hi == lo; the symmetric form keeps lo <= hi and mirrors tails.
        assert_eq!(percentile_bounds(2, 0.95), (0, 1));
        assert_eq!(percentile_bounds(3, 0.5), (0, 2));
        let (lo, hi) = percentile_bounds(2000, 0.95);
        assert_eq!(lo, 50);
        assert_eq!(hi, 1949);
        for reps in 1..64 {
            for level in [0.5, 0.8, 0.9, 0.95, 0.99, 0.999] {
                let (lo, hi) = percentile_bounds(reps, level);
                assert!(lo <= hi, "reps={reps} level={level}");
                assert!(hi < reps);
                assert_eq!(hi, reps - 1 - lo, "bounds must mirror");
            }
        }
    }

    #[test]
    fn scratch_fill_matches_the_original_draw_order() {
        let data = [5.0, 6.0, 7.0, 8.0];
        let mut rng_a = Xoshiro256::seed_from_u64(3);
        let mut rng_b = Xoshiro256::seed_from_u64(3);
        let mut scratch = ResampleScratch::new();
        let drawn = scratch.fill(&data, &mut rng_a).to_vec();
        let manual: Vec<f64> = (0..data.len())
            .map(|_| data[rng_b.next_below(data.len())])
            .collect();
        assert_eq!(drawn, manual);
    }

    #[test]
    fn packed_fill_draws_valid_values() {
        let data: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut scratch = ResampleScratch::new();
        for _ in 0..100 {
            for &v in scratch.fill_packed(&data, &mut rng) {
                assert!(data.contains(&v));
            }
        }
    }

    #[test]
    fn bootstrap_par_is_thread_count_invariant() {
        let data: Vec<f64> = (0..80).map(|i| (i * 13 % 17) as f64).collect();
        let reference = bootstrap_ci_par(&data, |d| mean(d).unwrap(), 0.95, 700, 9, 1).unwrap();
        for threads in [2, 4, 8] {
            let got = bootstrap_ci_par(&data, |d| mean(d).unwrap(), 0.95, 700, 9, threads).unwrap();
            assert_eq!(reference, got, "threads = {threads}");
        }
    }

    #[test]
    fn paired_par_is_thread_count_invariant() {
        let first: Vec<f64> = (0..50).map(|i| 3.0 + 0.1 * (i % 7) as f64).collect();
        let second: Vec<f64> = first.iter().map(|x| x + 0.2).collect();
        let reference = permutation_test_paired_par(&first, &second, 999, 5, 1).unwrap();
        for threads in [2, 4, 8] {
            let got = permutation_test_paired_par(&first, &second, 999, 5, threads).unwrap();
            assert_eq!(reference, got, "threads = {threads}");
        }
    }

    #[test]
    fn two_sample_par_is_thread_count_invariant() {
        let a: Vec<f64> = (0..40).map(|i| 5.0 + 0.1 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..35).map(|i| 4.6 + 0.1 * (i % 5) as f64).collect();
        let reference = permutation_test_two_sample_par(&a, &b, 777, 2, 1).unwrap();
        for threads in [2, 4, 8] {
            let got = permutation_test_two_sample_par(&a, &b, 777, 2, threads).unwrap();
            assert_eq!(reference, got, "threads = {threads}");
        }
    }

    #[test]
    fn par_variants_agree_with_serial_conclusions() {
        // Strong paired effect: both serial and sharded forms reject.
        let first: Vec<f64> = (0..40).map(|i| 3.5 + 0.05 * (i % 5) as f64).collect();
        let second: Vec<f64> = first.iter().map(|x| x + 0.3).collect();
        let serial = permutation_test_paired(&first, &second, 2000, 99).unwrap();
        let par = permutation_test_paired_par(&first, &second, 2000, 99, 4).unwrap();
        assert!((serial.observed - par.observed).abs() < 1e-12);
        assert!(serial.p_two_sided < 0.01 && par.p_two_sided < 0.01);

        // Null paired case: both report a large p-value.
        let null_first: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let null_second: Vec<f64> = null_first
            .iter()
            .enumerate()
            .map(|(i, x)| x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let serial = permutation_test_paired(&null_first, &null_second, 1000, 5).unwrap();
        let par = permutation_test_paired_par(&null_first, &null_second, 1000, 5, 4).unwrap();
        assert!(serial.p_two_sided > 0.3 && par.p_two_sided > 0.3);

        // Two-sample shift: both detect it; bootstrap CIs overlap well.
        let a: Vec<f64> = (0..25).map(|i| 5.0 + 0.1 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..25).map(|i| 4.0 + 0.1 * (i % 5) as f64).collect();
        let serial = permutation_test_two_sample(&a, &b, 1000, 3).unwrap();
        let par = permutation_test_two_sample_par(&a, &b, 1000, 3, 4).unwrap();
        assert!((serial.observed - par.observed).abs() < 1e-12);
        assert!(serial.p_two_sided < 0.01 && par.p_two_sided < 0.01);

        let data: Vec<f64> = (0..60)
            .map(|i| 4.0 + 0.2 * ((i * 37 % 11) as f64 - 5.0))
            .collect();
        let s = bootstrap_ci(&data, |d| mean(d).unwrap(), 0.95, 2000, 42).unwrap();
        let p = bootstrap_ci_par(&data, |d| mean(d).unwrap(), 0.95, 2000, 42, 4).unwrap();
        assert_eq!(s.estimate, p.estimate);
        assert!((s.lo - p.lo).abs() < 0.05 && (s.hi - p.hi).abs() < 0.05);
    }

    #[test]
    fn paired_permutation_agrees_with_t_test_on_strong_effect() {
        let first: Vec<f64> = (0..40).map(|i| 3.5 + 0.05 * (i % 5) as f64).collect();
        let second: Vec<f64> = first
            .iter()
            .map(|x| x + 0.3 + 0.02 * (x * 10.0).sin())
            .collect();
        let p = permutation_test_paired(&first, &second, 2000, 99).unwrap();
        let t = t_test_paired(&first, &second).unwrap();
        assert!(p.p_two_sided < 0.01);
        assert!(t.p_two_sided < 0.01);
        assert!((p.observed - t.mean_difference).abs() < 1e-12);
    }

    #[test]
    fn paired_permutation_null_case() {
        // Differences symmetric around zero → p should be large.
        let first: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let second: Vec<f64> = first
            .iter()
            .enumerate()
            .map(|(i, x)| x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let p = permutation_test_paired(&first, &second, 1000, 5).unwrap();
        assert!(p.p_two_sided > 0.3);
    }

    #[test]
    fn two_sample_permutation_detects_shift() {
        let a: Vec<f64> = (0..25).map(|i| 5.0 + 0.1 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..25).map(|i| 4.0 + 0.1 * (i % 5) as f64).collect();
        let p = permutation_test_two_sample(&a, &b, 1000, 3).unwrap();
        assert!(p.observed > 0.9);
        assert!(p.p_two_sided < 0.01);
    }

    #[test]
    fn permutation_errors() {
        assert!(permutation_test_paired(&[1.0], &[1.0], 10, 0).is_err());
        assert!(permutation_test_paired(&[1.0, 2.0], &[1.0], 10, 0).is_err());
        assert!(permutation_test_two_sample(&[1.0, 2.0], &[3.0, 4.0], 0, 0).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // The determinism contract: for arbitrary inputs, replicate
        // counts crossing shard boundaries, and any thread count, the
        // sharded procedures equal their own 1-thread (serial) run.
        #[test]
        fn par_equals_serial_shard_run_paired(
            base in prop::collection::vec(-1e3..1e3f64, 2..40),
            delta in -2.0..2.0f64,
            perms in 1usize..600,
            seed in 0u64..1_000,
            threads in 2usize..6,
        ) {
            let second: Vec<f64> = base.iter().map(|x| x + delta).collect();
            let serial = permutation_test_paired_par(&base, &second, perms, seed, 1).unwrap();
            let par = permutation_test_paired_par(&base, &second, perms, seed, threads).unwrap();
            prop_assert_eq!(serial, par);
        }

        #[test]
        fn par_equals_serial_shard_run_two_sample(
            a in prop::collection::vec(-1e3..1e3f64, 2..40),
            b in prop::collection::vec(-1e3..1e3f64, 2..40),
            perms in 1usize..600,
            seed in 0u64..1_000,
            threads in 2usize..6,
        ) {
            let serial = permutation_test_two_sample_par(&a, &b, perms, seed, 1).unwrap();
            let par = permutation_test_two_sample_par(&a, &b, perms, seed, threads).unwrap();
            prop_assert_eq!(serial, par);
        }

        #[test]
        fn par_equals_serial_shard_run_bootstrap(
            data in prop::collection::vec(-1e3..1e3f64, 2..40),
            reps in 1usize..600,
            seed in 0u64..1_000,
            threads in 2usize..6,
        ) {
            let serial =
                bootstrap_ci_par(&data, |d| mean(d).unwrap(), 0.9, reps, seed, 1).unwrap();
            let par =
                bootstrap_ci_par(&data, |d| mean(d).unwrap(), 0.9, reps, seed, threads).unwrap();
            prop_assert_eq!(serial, par);
        }
    }
}
