//! Minimal deterministic random number generation for the resampling
//! module: SplitMix64 seeding into xoshiro256++, plus Box–Muller normal
//! deviates. Self-contained so the statistics crate stays dependency-free.

/// SplitMix64 step; used to expand a single seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator: small, fast, and high quality; deterministic
/// from its seed.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
    /// Cached second Box–Muller deviate.
    spare_normal: Option<f64>,
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s, spare_normal: None }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1) with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, bound) via Lemire-style rejection-free
    /// multiply-shift (negligibly biased for bound << 2^64).
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Standard normal deviate via Box–Muller (caches the second value).
    pub fn next_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn next_normal_scaled(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.next_normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.next_below(i + 1);
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut g = Xoshiro256::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = Xoshiro256::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = g.next_below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn normal_moments() {
        let mut g = Xoshiro256::seed_from_u64(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| g.next_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn scaled_normal() {
        let mut g = Xoshiro256::seed_from_u64(9);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| g.next_normal_scaled(4.0, 0.25)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Xoshiro256::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "shuffle should move elements");
    }
}
