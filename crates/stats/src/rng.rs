//! Minimal deterministic random number generation for the resampling
//! module: SplitMix64 seeding into xoshiro256++, plus Box–Muller normal
//! deviates. Self-contained so the statistics crate stays dependency-free.
//!
//! For parallel work, [`StreamSeeder`] derives collision-free per-stream
//! seeds from one master seed, and [`Xoshiro256::jump`] advances a
//! generator by 2^128 steps so explicitly partitioned subsequences never
//! overlap.

/// SplitMix64 step; used to expand a single seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator: small, fast, and high quality; deterministic
/// from its seed.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
    /// Cached second Box–Muller deviate.
    spare_normal: Option<f64>,
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 {
            s,
            spare_normal: None,
        }
    }

    /// The raw xoshiro256++ state (for the batch module's lockstep
    /// bank, which co-locates many lanes' states structure-of-arrays).
    pub(crate) fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1) with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, bound) via Lemire-style rejection-free
    /// multiply-shift (negligibly biased for bound << 2^64).
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Standard normal deviate via Box–Muller (caches the second value).
    pub fn next_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn next_normal_scaled(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.next_normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.next_below(i + 1);
            data.swap(i, j);
        }
    }

    /// Advances the generator by 2^128 steps (the standard xoshiro256++
    /// jump polynomial) without drawing the intermediate values.
    ///
    /// Calling `jump` k times on clones of one generator yields k
    /// generators whose output sequences are disjoint for the next 2^128
    /// draws each — an explicit non-overlap guarantee for long-lived
    /// parallel streams (the [`StreamSeeder`] seed-split scheme covers
    /// the common many-short-streams case).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut t = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 != 0 {
                    t[0] ^= self.s[0];
                    t[1] ^= self.s[1];
                    t[2] ^= self.s[2];
                    t[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = t;
        // A cached Box–Muller deviate belongs to the pre-jump stream.
        self.spare_normal = None;
    }
}

/// Derives collision-free per-stream seeds from one master seed by
/// SplitMix64 seed-splitting.
///
/// Stream `i` is seeded from `mix64(master + i·γ)` where γ is the
/// SplitMix64 golden-ratio increment and `mix64` the SplitMix64 output
/// bijection. Because γ is odd, `master + i·γ (mod 2^64)` is injective
/// in `i`, and a bijection of distinct inputs stays distinct — so any
/// two streams of one master seed are guaranteed different seeds, and
/// the replication engine's results are a pure function of
/// `(master, stream index)`, independent of thread count or scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSeeder {
    master: u64,
}

impl StreamSeeder {
    /// A seeder deriving every stream from `master`.
    pub fn new(master: u64) -> Self {
        StreamSeeder { master }
    }

    /// The master seed this seeder splits.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The derived 64-bit seed for stream `index` (injective in `index`).
    pub fn split_seed(&self, index: u64) -> u64 {
        let mut state = self
            .master
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        splitmix64(&mut state)
    }

    /// An independent generator for stream `index`; random access, O(1).
    pub fn stream(&self, index: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.split_seed(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut g = Xoshiro256::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = Xoshiro256::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = g.next_below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn normal_moments() {
        let mut g = Xoshiro256::seed_from_u64(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| g.next_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn scaled_normal() {
        let mut g = Xoshiro256::seed_from_u64(9);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| g.next_normal_scaled(4.0, 0.25)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.01);
    }

    #[test]
    fn jump_is_deterministic_and_moves_the_stream() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        a.jump();
        b.jump();
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut jumped = Xoshiro256::seed_from_u64(42);
        jumped.jump();
        let mut plain = Xoshiro256::seed_from_u64(42);
        assert_ne!(jumped.next_u64(), plain.next_u64());
    }

    #[test]
    fn jump_clears_the_cached_normal() {
        let mut g = Xoshiro256::seed_from_u64(3);
        let _ = g.next_normal(); // caches the second Box–Muller deviate
        let mut fresh = g.clone();
        g.jump();
        fresh.jump();
        let _ = fresh.next_u64(); // desync would show if the cache leaked
        assert!(g.next_normal().is_finite());
    }

    #[test]
    fn jumped_streams_are_prefix_disjoint() {
        // Three generators 2^128 apart must not collide anywhere in a
        // sampled 1M-draw prefix (collisions would imply overlap or a
        // broken jump polynomial).
        let base = Xoshiro256::seed_from_u64(77);
        let mut streams = vec![base.clone()];
        for k in 0..2 {
            let mut next: Xoshiro256 = streams[k].clone();
            next.jump();
            streams.push(next);
        }
        let mut seen = std::collections::HashSet::new();
        for g in &mut streams {
            for i in 0..1_000_000u32 {
                let v = g.next_u64();
                // Sample every 16th draw to keep the set small while
                // still covering the full prefix.
                if i % 16 == 0 {
                    assert!(seen.insert(v), "collision across jumped streams");
                }
            }
        }
    }

    #[test]
    fn split_seeds_are_unique_and_deterministic() {
        let seeder = StreamSeeder::new(1234);
        assert_eq!(seeder.master(), 1234);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(seeder.split_seed(i)), "split seed collision");
        }
        assert_eq!(seeder.split_seed(7), StreamSeeder::new(1234).split_seed(7));
        assert_ne!(
            StreamSeeder::new(1).split_seed(0),
            StreamSeeder::new(2).split_seed(0)
        );
    }

    #[test]
    fn split_streams_are_prefix_disjoint_on_a_million_draws() {
        // The seed-split scheme guarantees distinct seeds; this samples
        // the stronger empirical property the replication engine leans
        // on — that distinct streams do not overlap over long prefixes.
        let seeder = StreamSeeder::new(0xDEAD_BEEF);
        let mut seen = std::collections::HashSet::new();
        for stream_idx in [0u64, 1, 2, 1_000_003] {
            let mut g = seeder.stream(stream_idx);
            for i in 0..1_000_000u32 {
                let v = g.next_u64();
                if i % 16 == 0 {
                    assert!(
                        seen.insert(v),
                        "collision between split streams at draw {i} of stream {stream_idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn bank_lanes_are_prefix_disjoint_on_a_million_draws() {
        // The batched engine drives eight seed-split streams in
        // lockstep through one SoA bank; its lanes must stay pairwise
        // disjoint over a long prefix exactly like the scalar streams
        // they mirror (and bitwise-equal to them — asserted at kernel
        // granularity in `batch::tests`). 8 lanes x 125k lockstep
        // rounds covers the same 1M-draw prefix as the scalar tests.
        let seeder = StreamSeeder::new(0xBEEF_CAFE);
        let seeds: [u64; 8] = core::array::from_fn(|k| seeder.split_seed(k as u64));
        let mut bank = crate::batch::RngBank::<8>::from_seeds(seeds);
        let mut seen = std::collections::HashSet::new();
        for i in 0..125_000u32 {
            let words = bank.next_words();
            if i % 2 == 0 {
                for (k, w) in words.iter().enumerate() {
                    assert!(
                        seen.insert(*w),
                        "collision across bank lanes at round {i}, lane {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Xoshiro256::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<u32>>(),
            "shuffle should move elements"
        );
    }
}
