//! Batch-major (structure-of-arrays) resampling kernels.
//!
//! The `*_par` kernels in [`crate::resample`] parallelise *within* one
//! test by sharding its replicates across threads. The replication
//! engine inverts that: thousands of independent replicates each run
//! their battery serially, so the hot loops are chain-latency bound —
//! every sign-flip add and bootstrap-draw add waits on the previous one
//! through a single floating-point accumulator.
//!
//! This module widens those loops *across replicates*. A group of up to
//! [`MAX_LANES`] replicates ("lanes") advances in lockstep: per-lane RNG
//! states are stepped together through an [`RngBank`], and per-lane
//! accumulators form independent dependency chains the CPU can overlap.
//! Inputs live in a [`CohortBatch`] — one contiguous column per field
//! per lane — and all intermediates come from a reusable
//! [`BatchScratch`] arena, so a chunk of replicates performs no
//! per-replicate allocation.
//!
//! # Bit-identity contract
//!
//! Each lane consumes **exactly its own** seed-split stream: lane `k`'s
//! shard `s` generator is `StreamSeeder::new(seeds[k]).stream(s)`,
//! precisely the generator the scalar `*_par` kernel would build for
//! seed `seeds[k]`, and every draw and floating-point accumulation
//! happens in the scalar order. Lockstep execution only interleaves
//! *independent* per-lane chains; it never shares an RNG word or
//! reassociates a sum across lanes. Consequently, for every lane:
//!
//! * [`permutation_test_paired_batch`] ≡ `permutation_test_paired_par(…, 1)`
//! * [`bootstrap_mean_ci_batch`] ≡ `bootstrap_ci_par(…, ordered mean, …, 1)`
//! * [`permutation_test_two_sample_batch`] ≡ `permutation_test_two_sample_par(…, 1)`
//!
//! bit for bit — enforced by the property tests below and by the
//! engine-level scalar-vs-batched digest tests in `pbl-core`.

use crate::resample::{
    percentile_bounds, reps_in_shard, shard_count, validate_bootstrap, validate_paired,
    validate_two_sample, BootstrapCi, PermutationTest,
};
use crate::rng::{StreamSeeder, Xoshiro256};
use crate::Result;

/// Widest lockstep group the kernels form. Remainder lanes run in
/// groups of half this and finally width 1 — the width-1 instantiation
/// executes the scalar kernel's exact loop, so narrow tails cost
/// nothing in correctness, only in lost interleaving.
pub const MAX_LANES: usize = 8;

/// A bank of per-lane generators advanced in lockstep.
///
/// Lane `k` is an ordinary xoshiro256++ on its own stream; the bank
/// stores the four state words structure-of-arrays (`s0[k]…s3[k]`) so
/// one [`RngBank::next_words`] call steps every lane with straight-line
/// element-wise arithmetic — no per-lane call, no state round-trip
/// through a generator object. The per-lane output sequence is
/// byte-identical to driving that lane's [`Xoshiro256`] alone — the
/// stream-discipline property the `rng` module's tests pin down.
#[derive(Debug, Clone)]
pub struct RngBank<const W: usize> {
    s0: [u64; W],
    s1: [u64; W],
    s2: [u64; W],
    s3: [u64; W],
}

impl<const W: usize> RngBank<W> {
    fn from_states(states: [[u64; 4]; W]) -> Self {
        RngBank {
            s0: core::array::from_fn(|k| states[k][0]),
            s1: core::array::from_fn(|k| states[k][1]),
            s2: core::array::from_fn(|k| states[k][2]),
            s3: core::array::from_fn(|k| states[k][3]),
        }
    }

    /// A bank whose lane `k` is seeded directly from `seeds[k]`.
    pub fn from_seeds(seeds: [u64; W]) -> Self {
        Self::from_states(seeds.map(|seed| Xoshiro256::seed_from_u64(seed).state()))
    }

    /// A bank whose lane `k` is the shard-`shard` stream of master seed
    /// `seeds[k]` — exactly the generator the scalar `*_par` kernels
    /// build per shard.
    pub fn for_shard(seeds: [u64; W], shard: u64) -> Self {
        Self::from_states(seeds.map(|seed| StreamSeeder::new(seed).stream(shard).state()))
    }

    /// Number of lanes.
    pub const fn width(&self) -> usize {
        W
    }

    /// One raw word from every lane, in lane order.
    #[inline]
    pub fn next_words(&mut self) -> [u64; W] {
        let mut out = [0u64; W];
        #[allow(clippy::needless_range_loop)] // four state arrays share the lane index
        for k in 0..W {
            out[k] = self.s0[k]
                .wrapping_add(self.s3[k])
                .rotate_left(23)
                .wrapping_add(self.s0[k]);
            let t = self.s1[k] << 17;
            self.s2[k] ^= self.s0[k];
            self.s3[k] ^= self.s1[k];
            self.s1[k] ^= self.s2[k];
            self.s0[k] ^= self.s3[k];
            self.s2[k] ^= t;
            self.s3[k] = self.s3[k].rotate_left(45);
        }
        out
    }

    /// One raw word from lane `k` only (for per-lane remainder draws
    /// whose count differs across lanes).
    #[inline]
    fn next_word_lane(&mut self, k: usize) -> u64 {
        let out = self.s0[k]
            .wrapping_add(self.s3[k])
            .rotate_left(23)
            .wrapping_add(self.s0[k]);
        let t = self.s1[k] << 17;
        self.s2[k] ^= self.s0[k];
        self.s3[k] ^= self.s1[k];
        self.s1[k] ^= self.s2[k];
        self.s0[k] ^= self.s3[k];
        self.s2[k] ^= t;
        self.s3[k] = self.s3[k].rotate_left(45);
        out
    }

    /// Lemire bounded draw from lane `k` — identical to
    /// [`Xoshiro256::next_below`] on that lane's stream.
    #[inline]
    pub fn next_below(&mut self, k: usize, bound: usize) -> usize {
        debug_assert!(bound > 0, "bound must be positive");
        ((self.next_word_lane(k) as u128 * bound as u128) >> 64) as usize
    }
}

/// Structure-of-arrays storage for one chunk of replicates: `fields`
/// named columns, each holding `lanes` contiguous runs of `len` values.
///
/// Column-major layout keeps every lane's data for one field adjacent,
/// so a lockstep kernel walking a group of lanes streams through
/// neighbouring cache lines instead of hopping between per-replicate
/// allocations. `reset` reuses the backing allocation across chunks.
#[derive(Debug, Clone, Default)]
pub struct CohortBatch {
    fields: usize,
    lanes: usize,
    len: usize,
    data: Vec<f64>,
}

impl CohortBatch {
    /// An empty batch; takes its shape from the first `reset`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reshapes to `fields × lanes × len`, zero-filled, reusing the
    /// existing allocation when it is large enough.
    pub fn reset(&mut self, fields: usize, lanes: usize, len: usize) {
        self.fields = fields;
        self.lanes = lanes;
        self.len = len;
        self.data.clear();
        self.data.resize(fields * lanes * len, 0.0);
    }

    /// Number of lanes (replicates) in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Values per lane per field.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no values.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn offset(&self, field: usize, lane: usize) -> usize {
        debug_assert!(field < self.fields && lane < self.lanes);
        (field * self.lanes + lane) * self.len
    }

    /// One lane's column for `field`.
    pub fn lane(&self, field: usize, lane: usize) -> &[f64] {
        let at = self.offset(field, lane);
        &self.data[at..at + self.len]
    }

    /// Mutable access to one lane's column for `field`.
    pub fn lane_mut(&mut self, field: usize, lane: usize) -> &mut [f64] {
        let at = self.offset(field, lane);
        let len = self.len;
        &mut self.data[at..at + len]
    }

    /// Mutable access to one lane's columns for two *distinct* fields
    /// at once — the shape a generator filling paired columns in a
    /// single pass needs.
    pub fn lane_pair_mut(&mut self, a: usize, b: usize, lane: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(a, b, "fields must be distinct");
        let (oa, ob) = (self.offset(a, lane), self.offset(b, lane));
        let len = self.len;
        if oa < ob {
            let (lo, hi) = self.data.split_at_mut(ob);
            (&mut lo[oa..oa + len], &mut hi[..len])
        } else {
            let (lo, hi) = self.data.split_at_mut(oa);
            (&mut hi[..len], &mut lo[ob..ob + len])
        }
    }

    /// Borrowed views of every lane's column for `field`, in lane order
    /// — the shape the batched kernels take.
    pub fn lane_refs(&self, field: usize) -> Vec<&[f64]> {
        (0..self.lanes).map(|lane| self.lane(field, lane)).collect()
    }

    /// `dst[i] = hi[i] − lo[i]` for one lane, entirely inside the
    /// batch — the paired-difference column without a temporary.
    pub fn lane_diff(&mut self, dst: usize, hi: usize, lo: usize, lane: usize) {
        let d = self.offset(dst, lane);
        let h = self.offset(hi, lane);
        let l = self.offset(lo, lane);
        for i in 0..self.len {
            self.data[d + i] = self.data[h + i] - self.data[l + i];
        }
    }
}

/// Reusable arena for the batched kernels: doubled differences, pooled
/// samples, and bootstrap statistic buffers all live here, so repeated
/// kernel calls over successive chunks allocate nothing in steady
/// state.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    diffs: Vec<f64>,
    inter: Vec<f64>,
    stats: Vec<Vec<f64>>,
    pool: Vec<f64>,
    pool_master: Vec<f64>,
}

impl BatchScratch {
    /// An empty arena; grows to the working-set size on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Length of the run of consecutive lanes sharing `ns[base]`'s length,
/// capped at [`MAX_LANES`] — the widest lockstep group that may start
/// at `base` for kernels requiring equal lane lengths.
fn equal_run(ns: &[usize], base: usize) -> usize {
    let n0 = ns[base];
    ns[base..]
        .iter()
        .take(MAX_LANES)
        .take_while(|&&n| n == n0)
        .count()
}

/// One lockstep group of sign-flip permutation shards: `W` lanes of
/// equal length advance together, each consuming its own seed-split
/// stream in the scalar draw order, with `W` independent accumulator
/// chains. Counts per-lane extreme permutations into `extreme`.
///
/// `inter` is scratch for the lane-interleaved copy of the doubled
/// differences (`inter[i*W + k] = d2[k][i]`) that turns each round's
/// `W` payload loads into one contiguous run.
#[inline(always)]
fn paired_group_impl<const W: usize>(
    diffs_doubled: &[&[f64]],
    total: &[f64],
    threshold: &[f64],
    permutations: usize,
    seeds: &[u64],
    inter: &mut Vec<f64>,
    extreme: &mut [usize],
) {
    let d2: [&[f64]; W] = core::array::from_fn(|k| diffs_doubled[k]);
    let total: [f64; W] = core::array::from_fn(|k| total[k]);
    let threshold: [f64; W] = core::array::from_fn(|k| threshold[k]);
    let lane_seeds: [u64; W] = core::array::from_fn(|k| seeds[k]);
    let n = d2[0].len();
    let inv_n = 1.0 / n as f64;
    inter.clear();
    inter.reserve(n * W);
    for i in 0..n {
        for col in d2.iter() {
            inter.push(col[i]);
        }
    }
    let mut ex = [0usize; W];
    for shard in 0..shard_count(permutations) {
        let mut bank = RngBank::<W>::for_shard(lane_seeds, shard as u64);
        for _ in 0..reps_in_shard(permutations, shard) {
            let mut flipped = [0.0f64; W];
            let mut base = 0usize;
            while base < n {
                let block = (n - base).min(64);
                let mut mask = bank.next_words();
                // Branchless select per bit: an unset bit contributes
                // +0.0 (the AND zeroes the payload), and `x + 0.0 == x`
                // bit for bit here because the accumulator is never
                // −0.0 — it starts at +0.0 and round-to-nearest
                // addition of anything other than two negative zeros
                // cannot produce −0.0. The set bits therefore fold in
                // ascending index order with intermediate values
                // identical to the scalar kernel's trailing-zeros
                // drain.
                let rows = &inter[base * W..(base + block) * W];
                for row in rows.chunks_exact(W) {
                    for k in 0..W {
                        let keep = (mask[k] & 1).wrapping_neg();
                        flipped[k] += f64::from_bits(row[k].to_bits() & keep);
                        mask[k] >>= 1;
                    }
                }
                base += block;
            }
            for k in 0..W {
                if ((total[k] - flipped[k]) * inv_n).abs() >= threshold[k] {
                    ex[k] += 1;
                }
            }
        }
    }
    extreme[..W].copy_from_slice(&ex);
}

/// Dispatches [`paired_group_impl`] to an AVX2-compiled instantiation
/// when the host supports it. The wide build executes the identical
/// Rust body — same draws, same per-lane addition order, and every
/// vector operation (`vandpd`/`vaddpd`) is the IEEE-exact element-wise
/// counterpart of the scalar op — so results stay bit-identical; only
/// the register width changes.
fn paired_group<const W: usize>(
    diffs_doubled: &[&[f64]],
    total: &[f64],
    threshold: &[f64],
    permutations: usize,
    seeds: &[u64],
    inter: &mut Vec<f64>,
    extreme: &mut [usize],
) {
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    if std::arch::is_x86_feature_detected!("avx512f") {
        #[target_feature(enable = "avx512f")]
        unsafe fn wide512<const W: usize>(
            diffs_doubled: &[&[f64]],
            total: &[f64],
            threshold: &[f64],
            permutations: usize,
            seeds: &[u64],
            inter: &mut Vec<f64>,
            extreme: &mut [usize],
        ) {
            paired_group_impl::<W>(
                diffs_doubled,
                total,
                threshold,
                permutations,
                seeds,
                inter,
                extreme,
            )
        }
        // SAFETY: reached only when run-time detection confirms AVX-512F.
        unsafe {
            wide512::<W>(
                diffs_doubled,
                total,
                threshold,
                permutations,
                seeds,
                inter,
                extreme,
            )
        };
        return;
    }
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    if std::arch::is_x86_feature_detected!("avx2") {
        #[target_feature(enable = "avx2")]
        unsafe fn wide<const W: usize>(
            diffs_doubled: &[&[f64]],
            total: &[f64],
            threshold: &[f64],
            permutations: usize,
            seeds: &[u64],
            inter: &mut Vec<f64>,
            extreme: &mut [usize],
        ) {
            paired_group_impl::<W>(
                diffs_doubled,
                total,
                threshold,
                permutations,
                seeds,
                inter,
                extreme,
            )
        }
        // SAFETY: reached only when run-time detection confirms AVX2.
        unsafe {
            wide::<W>(
                diffs_doubled,
                total,
                threshold,
                permutations,
                seeds,
                inter,
                extreme,
            )
        };
        return;
    }
    paired_group_impl::<W>(
        diffs_doubled,
        total,
        threshold,
        permutations,
        seeds,
        inter,
        extreme,
    )
}

/// Batched paired permutation test: lane `k` computes exactly
/// `permutation_test_paired_par(first[k], second[k], permutations,
/// seeds[k], 1)`, bit for bit, with equal-length lanes advanced in
/// lockstep. `first`, `second`, and `seeds` must have the same length.
pub fn permutation_test_paired_batch(
    first: &[&[f64]],
    second: &[&[f64]],
    permutations: usize,
    seeds: &[u64],
    scratch: &mut BatchScratch,
) -> Result<Vec<PermutationTest>> {
    assert_eq!(first.len(), second.len(), "lane count mismatch");
    assert_eq!(first.len(), seeds.len(), "lane count mismatch");
    let lanes = first.len();
    for k in 0..lanes {
        validate_paired(first[k], second[k], permutations)?;
    }

    // Doubled differences for every lane, packed into the arena.
    scratch.diffs.clear();
    let mut offsets = Vec::with_capacity(lanes + 1);
    offsets.push(0usize);
    for k in 0..lanes {
        scratch
            .diffs
            .extend(second[k].iter().zip(first[k]).map(|(s, f)| 2.0 * (s - f)));
        offsets.push(scratch.diffs.len());
    }
    let d2: Vec<&[f64]> = (0..lanes)
        .map(|k| &scratch.diffs[offsets[k]..offsets[k + 1]])
        .collect();
    let ns: Vec<usize> = d2.iter().map(|d| d.len()).collect();
    let total: Vec<f64> = d2.iter().map(|d| d.iter().sum::<f64>() / 2.0).collect();
    let observed: Vec<f64> = (0..lanes).map(|k| total[k] / ns[k] as f64).collect();
    let threshold: Vec<f64> = observed.iter().map(|o| o.abs() - 1e-15).collect();

    let mut extreme = vec![0usize; lanes];
    let mut base = 0usize;
    while base < lanes {
        let run = equal_run(&ns, base);
        if run >= MAX_LANES {
            paired_group::<MAX_LANES>(
                &d2[base..],
                &total[base..],
                &threshold[base..],
                permutations,
                &seeds[base..],
                &mut scratch.inter,
                &mut extreme[base..],
            );
            base += MAX_LANES;
        } else if run >= MAX_LANES / 2 {
            paired_group::<{ MAX_LANES / 2 }>(
                &d2[base..],
                &total[base..],
                &threshold[base..],
                permutations,
                &seeds[base..],
                &mut scratch.inter,
                &mut extreme[base..],
            );
            base += MAX_LANES / 2;
        } else {
            paired_group::<1>(
                &d2[base..],
                &total[base..],
                &threshold[base..],
                permutations,
                &seeds[base..],
                &mut scratch.inter,
                &mut extreme[base..],
            );
            base += 1;
        }
    }

    Ok((0..lanes)
        .map(|k| PermutationTest {
            observed: observed[k],
            p_two_sided: (extreme[k] + 1) as f64 / (permutations + 1) as f64,
            permutations,
        })
        .collect())
}

/// One lockstep group of packed bootstrap-draw shards. The scalar
/// kernel fills a resample buffer (two Lemire draws per word) and then
/// sums it in index order; here the gather and the sum are fused —
/// same draws, same addition order, no buffer traffic — across `W`
/// independent per-lane sum chains.
#[inline(always)]
fn bootstrap_group_impl<const W: usize>(
    data: &[&[f64]],
    reps: usize,
    seeds: &[u64],
    stats: &mut [Vec<f64>],
) {
    let cols: [&[f64]; W] = core::array::from_fn(|k| data[k]);
    let lane_seeds: [u64; W] = core::array::from_fn(|k| seeds[k]);
    let n = cols[0].len();
    debug_assert!((n as u64) < (1 << 32), "sample too large");
    let len = n as u64;
    for shard in 0..shard_count(reps) {
        let mut bank = RngBank::<W>::for_shard(lane_seeds, shard as u64);
        for _ in 0..reps_in_shard(reps, shard) {
            let mut sum = [0.0f64; W];
            for _ in 0..n / 2 {
                let words = bank.next_words();
                for k in 0..W {
                    let word = words[k];
                    sum[k] += cols[k][((word as u32 as u64 * len) >> 32) as usize];
                    sum[k] += cols[k][(((word >> 32) * len) >> 32) as usize];
                }
            }
            if n % 2 == 1 {
                for k in 0..W {
                    sum[k] += cols[k][bank.next_below(k, n)];
                }
            }
            for (k, s) in sum.iter().enumerate() {
                stats[k].push(s / n as f64);
            }
        }
    }
}

/// Hand-vectorized AVX-512 instantiation of the [`MAX_LANES`]-lane
/// bootstrap group for even `n`. The generic impl compiles to scalar
/// gathers with per-word vector-register extracts; this version keeps
/// the whole round in zmm registers: one vectorized xoshiro256++ step
/// (the identical word per lane — same adds, rotates, shifts, xors),
/// packed 32-bit Lemire index maps (`vpmuludq` computes the very same
/// `(u32 · n) >> 32` products), and `vgatherqpd` loads from a
/// lane-interleaved copy of the columns. The two accumulations per word
/// are element-wise vector adds in low-then-high order, so every lane's
/// sum is the same left-fold the scalar kernel computes, bit for bit —
/// the `bootstrap_batch_matches_scalar` tests pin this down on AVX-512
/// hosts.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx512f")]
unsafe fn bootstrap_group_w8_avx512(
    data: &[&[f64]],
    reps: usize,
    seeds: &[u64],
    inter: &mut Vec<f64>,
    stats: &mut [Vec<f64>],
) {
    use core::arch::x86_64::*;
    const W: usize = MAX_LANES;
    // The interleaved-index shift below is hard-wired to eight lanes.
    const { assert!(MAX_LANES == 8) };
    let n = data[0].len();
    debug_assert!(n.is_multiple_of(2), "odd n takes the generic path");
    debug_assert!((n as u64) < (1 << 32), "sample too large");
    let len = n as u64;
    inter.clear();
    inter.resize(n * W, 0.0);
    for (k, col) in data.iter().take(W).enumerate() {
        for (i, &v) in col.iter().enumerate() {
            inter[i * W + k] = v;
        }
    }
    let base = inter.as_ptr();
    let lane_seeds: [u64; W] = core::array::from_fn(|k| seeds[k]);
    // SAFETY: everything below is register arithmetic plus gathers whose
    // byte offsets are `(idx * W + k) * 8` with `idx < n` (Lemire maps
    // a 32-bit value into [0, n)) and `k < W` — always inside the
    // `n * W`-element interleaved buffer.
    let lane = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
    let vlen = _mm512_set1_epi64(len as i64);
    for shard in 0..shard_count(reps) {
        let bank = RngBank::<W>::for_shard(lane_seeds, shard as u64);
        let mut s0 = _mm512_loadu_si512(bank.s0.as_ptr() as *const _);
        let mut s1 = _mm512_loadu_si512(bank.s1.as_ptr() as *const _);
        let mut s2 = _mm512_loadu_si512(bank.s2.as_ptr() as *const _);
        let mut s3 = _mm512_loadu_si512(bank.s3.as_ptr() as *const _);
        for _ in 0..reps_in_shard(reps, shard) {
            let mut sum = _mm512_setzero_pd();
            for _ in 0..n / 2 {
                let word = _mm512_add_epi64(_mm512_rol_epi64::<23>(_mm512_add_epi64(s0, s3)), s0);
                let t = _mm512_slli_epi64::<17>(s1);
                s2 = _mm512_xor_si512(s2, s0);
                s3 = _mm512_xor_si512(s3, s1);
                s1 = _mm512_xor_si512(s1, s2);
                s0 = _mm512_xor_si512(s0, s3);
                s2 = _mm512_xor_si512(s2, t);
                s3 = _mm512_rol_epi64::<45>(s3);
                let idx_lo = _mm512_srli_epi64::<32>(_mm512_mul_epu32(word, vlen));
                let idx_hi =
                    _mm512_srli_epi64::<32>(_mm512_mul_epu32(_mm512_srli_epi64::<32>(word), vlen));
                let vi_lo = _mm512_add_epi64(_mm512_slli_epi64::<3>(idx_lo), lane);
                let vi_hi = _mm512_add_epi64(_mm512_slli_epi64::<3>(idx_hi), lane);
                sum = _mm512_add_pd(sum, _mm512_i64gather_pd::<8>(vi_lo, base));
                sum = _mm512_add_pd(sum, _mm512_i64gather_pd::<8>(vi_hi, base));
            }
            let mut sums = [0.0f64; W];
            _mm512_storeu_pd(sums.as_mut_ptr(), sum);
            for (k, s) in sums.iter().enumerate() {
                stats[k].push(s / n as f64);
            }
        }
    }
}

/// Run-time AVX2 dispatch for [`bootstrap_group_impl`]; see
/// [`paired_group`] for why the wide instantiation is bit-identical.
fn bootstrap_group<const W: usize>(
    data: &[&[f64]],
    reps: usize,
    seeds: &[u64],
    inter: &mut Vec<f64>,
    stats: &mut [Vec<f64>],
) {
    #[cfg(not(target_arch = "x86_64"))]
    let _ = &inter;
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    if W == MAX_LANES
        && data[0].len().is_multiple_of(2)
        && std::arch::is_x86_feature_detected!("avx512f")
    {
        // SAFETY: reached only when run-time detection confirms AVX-512F.
        unsafe { bootstrap_group_w8_avx512(data, reps, seeds, inter, stats) };
        return;
    }
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    if std::arch::is_x86_feature_detected!("avx512f") {
        #[target_feature(enable = "avx512f")]
        unsafe fn wide512<const W: usize>(
            data: &[&[f64]],
            reps: usize,
            seeds: &[u64],
            stats: &mut [Vec<f64>],
        ) {
            bootstrap_group_impl::<W>(data, reps, seeds, stats)
        }
        // SAFETY: reached only when run-time detection confirms AVX-512F.
        unsafe { wide512::<W>(data, reps, seeds, stats) };
        return;
    }
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    if std::arch::is_x86_feature_detected!("avx2") {
        #[target_feature(enable = "avx2")]
        unsafe fn wide<const W: usize>(
            data: &[&[f64]],
            reps: usize,
            seeds: &[u64],
            stats: &mut [Vec<f64>],
        ) {
            bootstrap_group_impl::<W>(data, reps, seeds, stats)
        }
        // SAFETY: reached only when run-time detection confirms AVX2.
        unsafe { wide::<W>(data, reps, seeds, stats) };
        return;
    }
    bootstrap_group_impl::<W>(data, reps, seeds, stats)
}

/// Batched percentile-bootstrap CI of the ordered mean
/// (`Σ data[i] / len`, left to right — the `mean_diff` statistic the
/// replication battery uses): lane `k` computes exactly
/// `bootstrap_ci_par(data[k], ordered mean, level, reps, seeds[k], 1)`,
/// bit for bit.
pub fn bootstrap_mean_ci_batch(
    data: &[&[f64]],
    level: f64,
    reps: usize,
    seeds: &[u64],
    scratch: &mut BatchScratch,
) -> Result<Vec<BootstrapCi>> {
    assert_eq!(data.len(), seeds.len(), "lane count mismatch");
    let lanes = data.len();
    for lane in data {
        validate_bootstrap(lane, level, reps)?;
    }

    scratch.stats.resize_with(lanes, Vec::new);
    for stats in scratch.stats.iter_mut() {
        stats.clear();
        stats.reserve(reps);
    }
    let ns: Vec<usize> = data.iter().map(|d| d.len()).collect();
    let mut base = 0usize;
    while base < lanes {
        let run = equal_run(&ns, base);
        let width = if run >= MAX_LANES {
            bootstrap_group::<MAX_LANES>(
                &data[base..],
                reps,
                &seeds[base..],
                &mut scratch.inter,
                &mut scratch.stats[base..],
            );
            MAX_LANES
        } else if run >= MAX_LANES / 2 {
            bootstrap_group::<{ MAX_LANES / 2 }>(
                &data[base..],
                reps,
                &seeds[base..],
                &mut scratch.inter,
                &mut scratch.stats[base..],
            );
            MAX_LANES / 2
        } else {
            bootstrap_group::<1>(
                &data[base..],
                reps,
                &seeds[base..],
                &mut scratch.inter,
                &mut scratch.stats[base..],
            );
            1
        };
        base += width;
    }

    let (lo_idx, hi_idx) = percentile_bounds(reps, level);
    Ok((0..lanes)
        .map(|k| {
            let stats = &mut scratch.stats[k];
            // Only two order statistics are consumed, so select instead
            // of sorting: the value at a given rank is the same whether
            // found by a full sort (the scalar path) or by selection,
            // so `lo`/`hi` stay bit-identical.
            let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("finite statistic");
            let (_, lo, upper) = stats.select_nth_unstable_by(lo_idx, cmp);
            let lo = *lo;
            let hi = if hi_idx > lo_idx {
                *upper.select_nth_unstable_by(hi_idx - lo_idx - 1, cmp).1
            } else {
                lo
            };
            BootstrapCi {
                estimate: data[k].iter().sum::<f64>() / data[k].len() as f64,
                lo,
                hi,
                replicates: reps,
            }
        })
        .collect())
}

/// One lockstep group of partial-Fisher–Yates label-shuffle shards.
/// Lane lengths may differ: each lane draws only while its own first
/// group is unfilled, and each shard restarts every lane's pool from
/// the original ordering, exactly as the scalar kernel's per-shard
/// clone does — but into an arena slice instead of a fresh allocation.
#[allow(clippy::too_many_arguments)]
fn two_sample_group<const W: usize>(
    pool_master: &[f64],
    pool: &mut [f64],
    offsets: &[usize],
    n_a: &[usize],
    n: &[usize],
    total: &[f64],
    threshold: &[f64],
    permutations: usize,
    seeds: &[u64],
    extreme: &mut [usize],
) {
    let off: [usize; W] = core::array::from_fn(|k| offsets[k]);
    let n_a: [usize; W] = core::array::from_fn(|k| n_a[k]);
    let n: [usize; W] = core::array::from_fn(|k| n[k]);
    let total: [f64; W] = core::array::from_fn(|k| total[k]);
    let threshold: [f64; W] = core::array::from_fn(|k| threshold[k]);
    let lane_seeds: [u64; W] = core::array::from_fn(|k| seeds[k]);
    let inv_a: [f64; W] = core::array::from_fn(|k| 1.0 / n_a[k] as f64);
    let inv_b: [f64; W] = core::array::from_fn(|k| 1.0 / (n[k] - n_a[k]) as f64);
    let max_na = n_a.iter().copied().max().unwrap_or(0);
    let mut ex = [0usize; W];
    for shard in 0..shard_count(permutations) {
        let mut bank = RngBank::<W>::for_shard(lane_seeds, shard as u64);
        for k in 0..W {
            pool[off[k]..off[k] + n[k]].copy_from_slice(&pool_master[off[k]..off[k] + n[k]]);
        }
        for _ in 0..reps_in_shard(permutations, shard) {
            let mut sum_a = [0.0f64; W];
            for i in 0..max_na {
                for k in 0..W {
                    if i < n_a[k] {
                        let j = i + bank.next_below(k, n[k] - i);
                        pool.swap(off[k] + i, off[k] + j);
                        sum_a[k] += pool[off[k] + i];
                    }
                }
            }
            for k in 0..W {
                if (sum_a[k] * inv_a[k] - (total[k] - sum_a[k]) * inv_b[k]).abs() >= threshold[k] {
                    ex[k] += 1;
                }
            }
        }
    }
    extreme[..W].copy_from_slice(&ex);
}

/// Lane-uniform lockstep shuffle: every lane shares the same group
/// sizes (the replication battery's fixed section split), so all lanes
/// draw against the same bound at every step and one element-wise
/// [`RngBank::next_words`] call advances the whole group. That removes
/// the per-lane serial state walk that makes general lockstep slower
/// than width-1 here — the draw each lane consumes is the same word the
/// scalar kernel would draw, so extreme counts stay bit-identical.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // flat SoA views of one scratch arena
fn two_sample_group_uniform_impl<const W: usize>(
    pool_master: &[f64],
    pool: &mut [f64],
    offsets: &[usize],
    n_a: usize,
    n: usize,
    total: &[f64],
    threshold: &[f64],
    permutations: usize,
    seeds: &[u64],
    extreme: &mut [usize],
) {
    let off: [usize; W] = core::array::from_fn(|k| offsets[k]);
    let total: [f64; W] = core::array::from_fn(|k| total[k]);
    let threshold: [f64; W] = core::array::from_fn(|k| threshold[k]);
    let lane_seeds: [u64; W] = core::array::from_fn(|k| seeds[k]);
    let inv_a = 1.0 / n_a as f64;
    let inv_b = 1.0 / (n - n_a) as f64;
    let mut ex = [0usize; W];
    for shard in 0..shard_count(permutations) {
        let mut bank = RngBank::<W>::for_shard(lane_seeds, shard as u64);
        for k in 0..W {
            pool[off[k]..off[k] + n].copy_from_slice(&pool_master[off[k]..off[k] + n]);
        }
        for _ in 0..reps_in_shard(permutations, shard) {
            let mut sum_a = [0.0f64; W];
            for i in 0..n_a {
                let words = bank.next_words();
                let bound = (n - i) as u128;
                for k in 0..W {
                    let j = i + ((words[k] as u128 * bound) >> 64) as usize;
                    pool.swap(off[k] + i, off[k] + j);
                    sum_a[k] += pool[off[k] + i];
                }
            }
            for k in 0..W {
                if (sum_a[k] * inv_a - (total[k] - sum_a[k]) * inv_b).abs() >= threshold[k] {
                    ex[k] += 1;
                }
            }
        }
    }
    extreme[..W].copy_from_slice(&ex);
}

/// Run-time AVX dispatch for [`two_sample_group_uniform_impl`]; see
/// [`paired_group`] for why the wide instantiations are bit-identical.
#[allow(clippy::too_many_arguments)]
fn two_sample_group_uniform<const W: usize>(
    pool_master: &[f64],
    pool: &mut [f64],
    offsets: &[usize],
    n_a: usize,
    n: usize,
    total: &[f64],
    threshold: &[f64],
    permutations: usize,
    seeds: &[u64],
    extreme: &mut [usize],
) {
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    if std::arch::is_x86_feature_detected!("avx512f") {
        #[target_feature(enable = "avx512f")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn wide512<const W: usize>(
            pool_master: &[f64],
            pool: &mut [f64],
            offsets: &[usize],
            n_a: usize,
            n: usize,
            total: &[f64],
            threshold: &[f64],
            permutations: usize,
            seeds: &[u64],
            extreme: &mut [usize],
        ) {
            two_sample_group_uniform_impl::<W>(
                pool_master,
                pool,
                offsets,
                n_a,
                n,
                total,
                threshold,
                permutations,
                seeds,
                extreme,
            )
        }
        // SAFETY: reached only when run-time detection confirms AVX-512F.
        unsafe {
            wide512::<W>(
                pool_master,
                pool,
                offsets,
                n_a,
                n,
                total,
                threshold,
                permutations,
                seeds,
                extreme,
            )
        };
        return;
    }
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    if std::arch::is_x86_feature_detected!("avx2") {
        #[target_feature(enable = "avx2")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn wide<const W: usize>(
            pool_master: &[f64],
            pool: &mut [f64],
            offsets: &[usize],
            n_a: usize,
            n: usize,
            total: &[f64],
            threshold: &[f64],
            permutations: usize,
            seeds: &[u64],
            extreme: &mut [usize],
        ) {
            two_sample_group_uniform_impl::<W>(
                pool_master,
                pool,
                offsets,
                n_a,
                n,
                total,
                threshold,
                permutations,
                seeds,
                extreme,
            )
        }
        // SAFETY: reached only when run-time detection confirms AVX2.
        unsafe {
            wide::<W>(
                pool_master,
                pool,
                offsets,
                n_a,
                n,
                total,
                threshold,
                permutations,
                seeds,
                extreme,
            )
        };
        return;
    }
    two_sample_group_uniform_impl::<W>(
        pool_master,
        pool,
        offsets,
        n_a,
        n,
        total,
        threshold,
        permutations,
        seeds,
        extreme,
    )
}

/// Batched two-sample permutation test: lane `k` computes exactly
/// `permutation_test_two_sample_par(a[k], b[k], permutations, seeds[k],
/// 1)`, bit for bit. Lane lengths may differ.
pub fn permutation_test_two_sample_batch(
    a: &[&[f64]],
    b: &[&[f64]],
    permutations: usize,
    seeds: &[u64],
    scratch: &mut BatchScratch,
) -> Result<Vec<PermutationTest>> {
    assert_eq!(a.len(), b.len(), "lane count mismatch");
    assert_eq!(a.len(), seeds.len(), "lane count mismatch");
    let lanes = a.len();
    for k in 0..lanes {
        validate_two_sample(a[k], b[k], permutations)?;
    }

    scratch.pool_master.clear();
    let mut offsets = Vec::with_capacity(lanes + 1);
    offsets.push(0usize);
    for k in 0..lanes {
        scratch.pool_master.extend(a[k].iter().chain(b[k]));
        offsets.push(scratch.pool_master.len());
    }
    scratch.pool.clear();
    scratch.pool.resize(scratch.pool_master.len(), 0.0);

    let n_a: Vec<usize> = a.iter().map(|x| x.len()).collect();
    let n: Vec<usize> = (0..lanes).map(|k| a[k].len() + b[k].len()).collect();
    let observed: Vec<f64> = (0..lanes)
        .map(|k| {
            a[k].iter().sum::<f64>() / a[k].len() as f64
                - b[k].iter().sum::<f64>() / b[k].len() as f64
        })
        .collect();
    let threshold: Vec<f64> = observed.iter().map(|o| o.abs() - 1e-15).collect();
    let total: Vec<f64> = (0..lanes)
        .map(|k| scratch.pool_master[offsets[k]..offsets[k + 1]].iter().sum())
        .collect();

    // When every lane shares the same group sizes — the replication
    // battery's case — the lanes draw against the same bound at every
    // shuffle step and can advance in lockstep off one vectorized
    // `next_words` call. Mixed-size lanes fall back to width-1 groups:
    // general lockstep is *slower* here (per-lane serial draws through
    // the SoA state plus random-access swap stores), so width 1 keeps
    // scalar parity while still using the arena's allocation-free pools.
    let mut extreme = vec![0usize; lanes];
    let uniform = lanes > 1 && n_a.iter().all(|&v| v == n_a[0]) && n.iter().all(|&v| v == n[0]);
    if uniform {
        let mut base = 0usize;
        while base < lanes {
            let run = lanes - base;
            let width = if run >= MAX_LANES {
                two_sample_group_uniform::<MAX_LANES>(
                    &scratch.pool_master,
                    &mut scratch.pool,
                    &offsets[base..],
                    n_a[0],
                    n[0],
                    &total[base..],
                    &threshold[base..],
                    permutations,
                    &seeds[base..],
                    &mut extreme[base..],
                );
                MAX_LANES
            } else if run >= MAX_LANES / 2 {
                two_sample_group_uniform::<{ MAX_LANES / 2 }>(
                    &scratch.pool_master,
                    &mut scratch.pool,
                    &offsets[base..],
                    n_a[0],
                    n[0],
                    &total[base..],
                    &threshold[base..],
                    permutations,
                    &seeds[base..],
                    &mut extreme[base..],
                );
                MAX_LANES / 2
            } else {
                two_sample_group_uniform::<1>(
                    &scratch.pool_master,
                    &mut scratch.pool,
                    &offsets[base..],
                    n_a[0],
                    n[0],
                    &total[base..],
                    &threshold[base..],
                    permutations,
                    &seeds[base..],
                    &mut extreme[base..],
                );
                1
            };
            base += width;
        }
    } else {
        for base in 0..lanes {
            two_sample_group::<1>(
                &scratch.pool_master,
                &mut scratch.pool,
                &offsets[base..],
                &n_a[base..],
                &n[base..],
                &total[base..],
                &threshold[base..],
                permutations,
                &seeds[base..],
                &mut extreme[base..],
            );
        }
    }

    Ok((0..lanes)
        .map(|k| PermutationTest {
            observed: observed[k],
            p_two_sided: (extreme[k] + 1) as f64 / (permutations + 1) as f64,
            permutations,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resample::{
        bootstrap_ci_par, permutation_test_paired_par, permutation_test_two_sample_par,
    };
    use proptest::prelude::*;

    fn refs(v: &[Vec<f64>]) -> Vec<&[f64]> {
        v.iter().map(|x| x.as_slice()).collect()
    }

    #[test]
    fn cohort_batch_layout_is_contiguous_per_lane() {
        let mut batch = CohortBatch::new();
        assert!(batch.is_empty());
        batch.reset(2, 3, 4);
        assert_eq!(batch.lanes(), 3);
        assert_eq!(batch.len(), 4);
        for field in 0..2 {
            for lane in 0..3 {
                batch
                    .lane_mut(field, lane)
                    .iter_mut()
                    .enumerate()
                    .for_each(|(i, v)| *v = (field * 100 + lane * 10 + i) as f64);
            }
        }
        assert_eq!(batch.lane(1, 2), &[120.0, 121.0, 122.0, 123.0]);
        let views = batch.lane_refs(0);
        assert_eq!(views.len(), 3);
        assert_eq!(views[1], &[10.0, 11.0, 12.0, 13.0]);
        // Pair access sees the same columns, in either order.
        let (a, b) = batch.lane_pair_mut(0, 1, 2);
        assert_eq!(a, &[20.0, 21.0, 22.0, 23.0]);
        assert_eq!(b, &[120.0, 121.0, 122.0, 123.0]);
        let (b2, a2) = batch.lane_pair_mut(1, 0, 2);
        assert_eq!(a2, &[20.0, 21.0, 22.0, 23.0]);
        assert_eq!(b2, &[120.0, 121.0, 122.0, 123.0]);
        // reset reuses and re-zeroes
        batch.reset(1, 2, 2);
        assert_eq!(batch.lane(0, 1), &[0.0, 0.0]);
    }

    #[test]
    fn rng_bank_lanes_match_their_scalar_streams() {
        // The stream-discipline statement at kernel granularity: each
        // bank lane's word sequence is byte-identical to driving the
        // corresponding scalar shard stream alone.
        let seeds = [3u64, 17, 99, 4242];
        for shard in [0u64, 1, 7] {
            let mut bank = RngBank::<4>::for_shard(seeds, shard);
            let mut scalars: Vec<Xoshiro256> = seeds
                .iter()
                .map(|&s| StreamSeeder::new(s).stream(shard))
                .collect();
            for _ in 0..1000 {
                let words = bank.next_words();
                for (k, scalar) in scalars.iter_mut().enumerate() {
                    assert_eq!(words[k], scalar.next_u64());
                }
            }
        }
    }

    #[test]
    fn batched_kernels_error_like_the_scalar_ones() {
        let mut scratch = BatchScratch::new();
        let short = vec![vec![1.0]];
        assert!(permutation_test_paired_batch(
            &refs(&short),
            &refs(&short),
            10,
            &[0],
            &mut scratch
        )
        .is_err());
        assert!(bootstrap_mean_ci_batch(&refs(&short), 0.95, 10, &[0], &mut scratch).is_err());
        let ok = vec![vec![1.0, 2.0]];
        assert!(bootstrap_mean_ci_batch(&refs(&ok), 1.5, 10, &[0], &mut scratch).is_err());
        assert!(permutation_test_two_sample_batch(
            &refs(&ok),
            &refs(&short),
            10,
            &[0],
            &mut scratch
        )
        .is_err());
        // Empty batches are fine and do nothing.
        assert_eq!(
            permutation_test_paired_batch(&[], &[], 10, &[], &mut scratch)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn paired_batch_matches_scalar_across_group_widths_and_shards() {
        // 11 lanes forces an 8-group, a 4-group candidate (run of 3
        // breaks it), and scalar tails; 300 permutations crosses the
        // 256-replicate shard boundary.
        let mut scratch = BatchScratch::new();
        for perms in [1usize, 255, 256, 300, 513] {
            let firsts: Vec<Vec<f64>> = (0..11)
                .map(|k| {
                    let n = if k < 9 { 24 } else { 10 + k };
                    (0..n).map(|i| (i as f64 * 0.37 + k as f64).sin()).collect()
                })
                .collect();
            let seconds: Vec<Vec<f64>> = firsts
                .iter()
                .enumerate()
                .map(|(k, f)| f.iter().map(|x| x + 0.05 * k as f64).collect())
                .collect();
            let seeds: Vec<u64> = (0..11).map(|k| 1000 + k).collect();
            let batched = permutation_test_paired_batch(
                &refs(&firsts),
                &refs(&seconds),
                perms,
                &seeds,
                &mut scratch,
            )
            .unwrap();
            for k in 0..11 {
                let scalar =
                    permutation_test_paired_par(&firsts[k], &seconds[k], perms, seeds[k], 1)
                        .unwrap();
                assert_eq!(batched[k], scalar, "lane {k}, perms {perms}");
            }
        }
    }

    #[test]
    fn bootstrap_batch_matches_scalar_including_odd_lengths() {
        let mut scratch = BatchScratch::new();
        for (lanes, n, reps) in [(8usize, 25usize, 300usize), (5, 24, 257), (3, 7, 40)] {
            let data: Vec<Vec<f64>> = (0..lanes)
                .map(|k| (0..n).map(|i| ((i * 13 + k * 7) % 29) as f64).collect())
                .collect();
            let seeds: Vec<u64> = (0..lanes as u64).map(|k| 7 * k + 1).collect();
            let batched =
                bootstrap_mean_ci_batch(&refs(&data), 0.95, reps, &seeds, &mut scratch).unwrap();
            for k in 0..lanes {
                let scalar = bootstrap_ci_par(
                    &data[k],
                    |d| d.iter().sum::<f64>() / d.len() as f64,
                    0.95,
                    reps,
                    seeds[k],
                    1,
                )
                .unwrap();
                assert_eq!(batched[k], scalar, "lane {k}");
            }
        }
    }

    #[test]
    fn two_sample_batch_matches_scalar_with_unequal_lanes() {
        let mut scratch = BatchScratch::new();
        let a: Vec<Vec<f64>> = (0..9)
            .map(|k| (0..(12 + k)).map(|i| (i % 5) as f64 + k as f64).collect())
            .collect();
        let b: Vec<Vec<f64>> = (0..9)
            .map(|k| (0..(9 + 2 * k)).map(|i| (i % 7) as f64).collect())
            .collect();
        let seeds: Vec<u64> = (0..9).map(|k| 31 * k + 5).collect();
        for perms in [300usize, 257] {
            let batched = permutation_test_two_sample_batch(
                &refs(&a),
                &refs(&b),
                perms,
                &seeds,
                &mut scratch,
            )
            .unwrap();
            for k in 0..9 {
                let scalar =
                    permutation_test_two_sample_par(&a[k], &b[k], perms, seeds[k], 1).unwrap();
                assert_eq!(batched[k], scalar, "lane {k}, perms {perms}");
            }
        }
    }

    #[test]
    fn scratch_reuse_across_calls_does_not_leak_state() {
        let mut scratch = BatchScratch::new();
        let first = vec![(0..20).map(|i| i as f64 * 0.1).collect::<Vec<f64>>(); 4];
        let second: Vec<Vec<f64>> = first
            .iter()
            .map(|f| f.iter().map(|x| x + 0.3).collect())
            .collect();
        let seeds = [1u64, 2, 3, 4];
        let once =
            permutation_test_paired_batch(&refs(&first), &refs(&second), 200, &seeds, &mut scratch)
                .unwrap();
        // Interleave a different kernel to dirty the arena, then rerun.
        let _ = bootstrap_mean_ci_batch(&refs(&first), 0.9, 100, &seeds, &mut scratch).unwrap();
        let again =
            permutation_test_paired_batch(&refs(&first), &refs(&second), 200, &seeds, &mut scratch)
                .unwrap();
        assert_eq!(once, again);
    }

    fn bank_matches_streams<const W: usize>(master: u64, draws: usize) {
        let seeds: [u64; W] =
            core::array::from_fn(|k| StreamSeeder::new(master).split_seed(k as u64));
        let mut bank = RngBank::<W>::from_seeds(seeds);
        let mut scalars: Vec<Xoshiro256> = seeds
            .iter()
            .map(|&s| Xoshiro256::seed_from_u64(s))
            .collect();
        for _ in 0..draws {
            let words = bank.next_words();
            for (k, scalar) in scalars.iter_mut().enumerate() {
                assert_eq!(words[k], scalar.next_u64());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // Satellite: for any lane width and draw count, every bank
        // lane's sequence is byte-identical to its scalar stream.
        #[test]
        fn rng_bank_is_lockstep_transparent(master in 0u64..1_000_000, draws in 1usize..2_000) {
            bank_matches_streams::<1>(master, draws);
            bank_matches_streams::<2>(master, draws);
            bank_matches_streams::<3>(master, draws);
            bank_matches_streams::<4>(master, draws);
            bank_matches_streams::<8>(master, draws);
        }

        // The batched kernels equal their scalar definitions for
        // arbitrary lane counts, lengths, and shard-crossing replicate
        // counts.
        #[test]
        fn paired_batch_equals_scalar(
            lanes in 1usize..10,
            n in 2usize..30,
            perms in 1usize..600,
            seed0 in 0u64..1_000,
        ) {
            let firsts: Vec<Vec<f64>> = (0..lanes)
                .map(|k| (0..n).map(|i| ((i * 29 + k * 13) % 31) as f64 * 0.3).collect())
                .collect();
            let seconds: Vec<Vec<f64>> = firsts
                .iter()
                .enumerate()
                .map(|(k, f)| f.iter().map(|x| x + 0.1 * (k as f64 - 1.0)).collect())
                .collect();
            let seeds: Vec<u64> = (0..lanes as u64).map(|k| seed0 + 17 * k).collect();
            let mut scratch = BatchScratch::new();
            let batched = permutation_test_paired_batch(
                &refs(&firsts), &refs(&seconds), perms, &seeds, &mut scratch).unwrap();
            for k in 0..lanes {
                let scalar = permutation_test_paired_par(
                    &firsts[k], &seconds[k], perms, seeds[k], 1).unwrap();
                prop_assert_eq!(&batched[k], &scalar);
            }
        }

        #[test]
        fn bootstrap_batch_equals_scalar(
            lanes in 1usize..10,
            n in 2usize..30,
            reps in 1usize..600,
            seed0 in 0u64..1_000,
        ) {
            let data: Vec<Vec<f64>> = (0..lanes)
                .map(|k| (0..n).map(|i| ((i * 7 + k * 3) % 23) as f64 - 11.0).collect())
                .collect();
            let seeds: Vec<u64> = (0..lanes as u64).map(|k| seed0 + 13 * k).collect();
            let mut scratch = BatchScratch::new();
            let batched =
                bootstrap_mean_ci_batch(&refs(&data), 0.9, reps, &seeds, &mut scratch).unwrap();
            for k in 0..lanes {
                let scalar = bootstrap_ci_par(
                    &data[k],
                    |d| d.iter().sum::<f64>() / d.len() as f64,
                    0.9, reps, seeds[k], 1).unwrap();
                prop_assert_eq!(&batched[k], &scalar);
            }
        }

        #[test]
        fn two_sample_batch_equals_scalar(
            lanes in 1usize..10,
            na in 2usize..20,
            nb in 2usize..20,
            perms in 1usize..600,
            seed0 in 0u64..1_000,
        ) {
            let a: Vec<Vec<f64>> = (0..lanes)
                .map(|k| (0..na).map(|i| ((i * 11 + k) % 13) as f64).collect())
                .collect();
            let b: Vec<Vec<f64>> = (0..lanes)
                .map(|k| (0..nb).map(|i| ((i * 5 + 2 * k) % 17) as f64).collect())
                .collect();
            let seeds: Vec<u64> = (0..lanes as u64).map(|k| seed0 + 29 * k).collect();
            let mut scratch = BatchScratch::new();
            let batched = permutation_test_two_sample_batch(
                &refs(&a), &refs(&b), perms, &seeds, &mut scratch).unwrap();
            for k in 0..lanes {
                let scalar = permutation_test_two_sample_par(
                    &a[k], &b[k], perms, seeds[k], 1).unwrap();
                prop_assert_eq!(&batched[k], &scalar);
            }
        }
    }
}
