//! Utilities for the two 5-point Likert scales the survey uses.
//!
//! The Class Emphasis scale runs from 1 ("Did not discuss") to
//! 5 ("Major emphasis"); the Personal Growth scale runs from
//! 1 ("I did not use this skill within this class") to
//! 5 ("I experienced a tremendous growth and added many new skills").

/// The two scales the Team Design Skills Growth survey uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// How strongly the course emphasised a skill.
    ClassEmphasis,
    /// How much the respondent feels they grew in a skill.
    PersonalGrowth,
}

impl Scale {
    /// Anchor text for a scale point (1–5); `None` outside the scale.
    pub fn anchor(&self, point: u8) -> Option<&'static str> {
        match (self, point) {
            (Scale::ClassEmphasis, 1) => Some("Did not discuss"),
            (Scale::ClassEmphasis, 2) => Some("Minor emphasis"),
            (Scale::ClassEmphasis, 3) => Some("Some emphasis"),
            (Scale::ClassEmphasis, 4) => Some("Significant emphasis"),
            (Scale::ClassEmphasis, 5) => Some("Major emphasis"),
            (Scale::PersonalGrowth, 1) => Some("I did not use this skill within this class"),
            (Scale::PersonalGrowth, 2) => Some("I used previous skills and had little growth"),
            (Scale::PersonalGrowth, 3) => Some("I grew some and gained a few new skills"),
            (Scale::PersonalGrowth, 4) => {
                Some("I experienced a significant growth and added several skills")
            }
            (Scale::PersonalGrowth, 5) => {
                Some("I experienced a tremendous growth and added many new skills")
            }
            _ => None,
        }
    }
}

/// Lowest valid scale point.
pub const LIKERT_MIN: f64 = 1.0;
/// Highest valid scale point.
pub const LIKERT_MAX: f64 = 5.0;

/// Clamps a latent continuous value onto the closed scale interval.
pub fn clamp(value: f64) -> f64 {
    value.clamp(LIKERT_MIN, LIKERT_MAX)
}

/// Discretizes a latent value to the nearest integer scale point.
///
/// Values are clamped first, so any finite input maps to 1..=5.
pub fn discretize(value: f64) -> u8 {
    clamp(value).round() as u8
}

/// True if `value` is a valid (integer) response on the scale.
pub fn is_valid_response(value: u8) -> bool {
    (1..=5).contains(&value)
}

/// Mean of integer Likert responses as f64 (the survey analysis averages
/// items into near-continuous student scores).
pub fn mean_response(responses: &[u8]) -> Option<f64> {
    if responses.is_empty() || !responses.iter().all(|&r| is_valid_response(r)) {
        return None;
    }
    Some(responses.iter().map(|&r| r as f64).sum::<f64>() / responses.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_the_survey_wording() {
        assert_eq!(Scale::ClassEmphasis.anchor(1), Some("Did not discuss"));
        assert_eq!(Scale::ClassEmphasis.anchor(5), Some("Major emphasis"));
        assert_eq!(
            Scale::PersonalGrowth.anchor(3),
            Some("I grew some and gained a few new skills")
        );
        assert_eq!(Scale::PersonalGrowth.anchor(0), None);
        assert_eq!(Scale::ClassEmphasis.anchor(6), None);
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(0.3), 1.0);
        assert_eq!(clamp(7.2), 5.0);
        assert_eq!(clamp(3.4), 3.4);
    }

    #[test]
    fn discretize_rounds_to_scale_points() {
        assert_eq!(discretize(3.4), 3);
        assert_eq!(discretize(3.5), 4);
        assert_eq!(discretize(-10.0), 1);
        assert_eq!(discretize(100.0), 5);
    }

    #[test]
    fn validity() {
        assert!(is_valid_response(1));
        assert!(is_valid_response(5));
        assert!(!is_valid_response(0));
        assert!(!is_valid_response(6));
    }

    #[test]
    fn mean_response_basic() {
        assert_eq!(mean_response(&[4, 5, 3]), Some(4.0));
        assert_eq!(mean_response(&[]), None);
        assert_eq!(mean_response(&[4, 9]), None);
    }
}
