//! # pbl-stats — from-scratch statistics engine
//!
//! Implements every statistical procedure the paper's evaluation uses,
//! with no external numeric dependencies:
//!
//! * [`descriptive`] — one-pass summary statistics (Welford).
//! * [`special`] — ln-gamma, regularized incomplete beta, erf, and the
//!   Student-t / normal distribution functions built on them.
//! * [`ttest`] — paired, independent (pooled and Welch), and one-sample
//!   t-tests with exact two-sided p-values (Table 1).
//! * [`cohen`] — Cohen's d with the paper's pooled-SD formula and the
//!   small/medium/large interpretation bands (Tables 2–3).
//! * [`pearson`] — Pearson correlation with significance and Guilford's
//!   strength bands (Table 4).
//! * [`composite`] — Beyerlein et al. composite scores (Tables 5–6).
//! * [`ranking`] — ranked score lists and rank utilities (Tables 5–6).
//! * [`wilcoxon`] — the signed-rank test, the nonparametric companion
//!   to the paired t-test.
//! * [`anova`] — one-way ANOVA with an F distribution, confirming the
//!   ranking tables' premise that element means genuinely differ.
//! * [`resample`] — bootstrap confidence intervals and permutation tests
//!   (robustness extension; the paper reports parametric tests only),
//!   each with a `*_par` form that shards replicates across OS threads
//!   on seed-split RNG streams with bit-identical results for any
//!   thread count.
//! * [`batch`] — structure-of-arrays batch forms of the resampling
//!   kernels that advance many independent replicates in lockstep,
//!   bit-identical per lane to the `*_par` forms at one thread.
//! * [`likert`] — 1–5 Likert-scale helpers for both survey scales.
//! * [`table`] — plain-text / Markdown table rendering for the report
//!   binary and EXPERIMENTS.md.
//!
//! All routines are deterministic; the resampling module uses an embedded
//! SplitMix64/xoshiro generator seeded explicitly by the caller, and
//! [`rng::StreamSeeder`] splits one master seed into collision-free
//! per-stream seeds for parallel replication work.

#![warn(missing_docs)]
// `deny`, not `forbid`: the one sanctioned exception is the batch
// module's CPU-feature dispatch, which calls a `#[target_feature]`
// instantiation of the identical safe kernel body behind run-time
// detection. Every other module remains unsafe-free.
#![deny(unsafe_code)]

pub mod anova;
pub mod batch;
pub mod cohen;
pub mod composite;
pub mod descriptive;
pub mod error;
pub mod likert;
pub mod pearson;
pub mod ranking;
pub mod resample;
pub mod rng;
pub mod special;
pub mod table;
pub mod ttest;
pub mod wilcoxon;

pub use anova::{anova_one_way, AnovaResult};
pub use batch::{
    bootstrap_mean_ci_batch, permutation_test_paired_batch, permutation_test_two_sample_batch,
    BatchScratch, CohortBatch, RngBank,
};
pub use cohen::{cohen_d_independent, cohen_d_paired, CohensD, EffectSizeBand};
pub use composite::{composite_score, CompositeScore};
pub use descriptive::Summary;
pub use error::StatsError;
pub use pearson::{pearson, GuilfordBand, PearsonResult};
pub use ranking::{rank_scores, RankedItem};
pub use resample::{
    bootstrap_ci, bootstrap_ci_par, permutation_test_paired, permutation_test_paired_par,
    permutation_test_two_sample, permutation_test_two_sample_par, BootstrapCi, PermutationTest,
    ResampleScratch,
};
pub use rng::{StreamSeeder, Xoshiro256};
pub use ttest::{t_test_independent, t_test_one_sample, t_test_paired, t_test_welch, TTestResult};
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonResult};

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, StatsError>;
