//! Error type shared by all statistics routines.

use std::fmt;

/// Errors produced by statistical routines.
///
/// Every public function in this crate that can fail returns
/// [`crate::Result`] with this error type, so callers can distinguish
/// "not enough data" from genuinely degenerate inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input had fewer observations than the procedure requires.
    NotEnoughData {
        /// Minimum number of observations the procedure needs.
        needed: usize,
        /// Number of observations actually supplied.
        got: usize,
    },
    /// Two paired samples had different lengths.
    LengthMismatch {
        /// Length of the first sample.
        left: usize,
        /// Length of the second sample.
        right: usize,
    },
    /// The computation requires nonzero variance but the input is constant.
    ZeroVariance,
    /// An input value was NaN or infinite.
    NonFinite,
    /// A distribution parameter was out of its domain (e.g. df <= 0).
    InvalidParameter(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NotEnoughData { needed, got } => {
                write!(f, "not enough data: needed {needed}, got {got}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired samples differ in length: {left} vs {right}")
            }
            StatsError::ZeroVariance => write!(f, "input has zero variance"),
            StatsError::NonFinite => write!(f, "input contains NaN or infinite values"),
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Validates that every value in `data` is finite.
pub(crate) fn ensure_finite(data: &[f64]) -> Result<(), StatsError> {
    if data.iter().all(|x| x.is_finite()) {
        Ok(())
    } else {
        Err(StatsError::NonFinite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StatsError::NotEnoughData { needed: 2, got: 1 };
        assert_eq!(e.to_string(), "not enough data: needed 2, got 1");
        let e = StatsError::LengthMismatch { left: 3, right: 4 };
        assert!(e.to_string().contains("3 vs 4"));
        assert_eq!(
            StatsError::ZeroVariance.to_string(),
            "input has zero variance"
        );
        assert!(StatsError::NonFinite.to_string().contains("NaN"));
        assert!(StatsError::InvalidParameter("df")
            .to_string()
            .contains("df"));
    }

    #[test]
    fn ensure_finite_accepts_normal_data() {
        assert!(ensure_finite(&[1.0, -2.5, 0.0]).is_ok());
        assert!(ensure_finite(&[]).is_ok());
    }

    #[test]
    fn ensure_finite_rejects_nan_and_inf() {
        assert_eq!(ensure_finite(&[1.0, f64::NAN]), Err(StatsError::NonFinite));
        assert_eq!(ensure_finite(&[f64::INFINITY]), Err(StatsError::NonFinite));
        assert_eq!(
            ensure_finite(&[f64::NEG_INFINITY, 0.0]),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&StatsError::ZeroVariance);
    }
}
