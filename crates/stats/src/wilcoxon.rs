//! Wilcoxon signed-rank test: the nonparametric companion to the paired
//! t-test, used to check that Table 1's conclusions do not depend on
//! normality (Likert-scale averages are only approximately normal).

use crate::error::{ensure_finite, StatsError};
use crate::pearson::average_ranks;
use crate::special::normal_cdf;
use crate::Result;

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, PartialEq)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences (second − first).
    pub w_plus: f64,
    /// Sum of ranks of negative differences.
    pub w_minus: f64,
    /// Number of non-zero differences actually ranked.
    pub n_used: usize,
    /// Standardised statistic (normal approximation, tie-corrected).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_two_sided: f64,
}

impl WilcoxonResult {
    /// True when the two-sided p-value is below `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_two_sided < alpha
    }

    /// Direction of the effect: positive when `second` tends to exceed
    /// `first`.
    pub fn direction(&self) -> f64 {
        self.w_plus - self.w_minus
    }
}

/// Paired Wilcoxon signed-rank test on `(first, second)` observations,
/// testing H0: the differences are symmetric about zero. Zero
/// differences are dropped (the standard treatment); ties in |d| share
/// average ranks with the variance correction.
///
/// Uses the normal approximation, adequate for n ≳ 20 (the study has
/// n = 124).
pub fn wilcoxon_signed_rank(first: &[f64], second: &[f64]) -> Result<WilcoxonResult> {
    if first.len() != second.len() {
        return Err(StatsError::LengthMismatch {
            left: first.len(),
            right: second.len(),
        });
    }
    ensure_finite(first)?;
    ensure_finite(second)?;
    let diffs: Vec<f64> = second
        .iter()
        .zip(first)
        .map(|(s, f)| s - f)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n < 5 {
        return Err(StatsError::NotEnoughData { needed: 5, got: n });
    }
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = average_ranks(&abs);
    let mut w_plus = 0.0;
    let mut w_minus = 0.0;
    for (d, r) in diffs.iter().zip(&ranks) {
        if *d > 0.0 {
            w_plus += r;
        } else {
            w_minus += r;
        }
    }
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    // Tie correction: subtract sum(t^3 - t)/48 over tie groups.
    let mut sorted = abs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let variance = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;
    if variance <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    // Continuity-corrected z on W+.
    let delta = w_plus - mean;
    let correction = 0.5 * delta.signum();
    let z = (delta - correction) / variance.sqrt();
    let p_two_sided = 2.0 * (1.0 - normal_cdf(z.abs()));
    Ok(WilcoxonResult {
        w_plus,
        w_minus,
        n_used: n,
        z,
        p_two_sided: p_two_sided.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_a_consistent_shift() {
        let first: Vec<f64> = (0..40).map(|i| 3.5 + 0.01 * (i % 7) as f64).collect();
        let second: Vec<f64> = first
            .iter()
            .enumerate()
            .map(|(i, x)| x + 0.2 + 0.001 * (i % 3) as f64)
            .collect();
        let w = wilcoxon_signed_rank(&first, &second).unwrap();
        assert_eq!(w.w_minus, 0.0, "every difference positive");
        assert!(w.significant_at(0.001));
        assert!(w.direction() > 0.0);
    }

    #[test]
    fn symmetric_differences_are_insignificant() {
        let first: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let second: Vec<f64> = first
            .iter()
            .enumerate()
            .map(|(i, x)| x + if i % 2 == 0 { 0.4 } else { -0.4 })
            .collect();
        let w = wilcoxon_signed_rank(&first, &second).unwrap();
        assert!(w.p_two_sided > 0.5, "p = {}", w.p_two_sided);
    }

    #[test]
    fn zero_differences_are_dropped() {
        let first = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let mut second = first.clone();
        second[0] += 0.5;
        second[1] += 0.4;
        second[2] += 0.3;
        second[3] += 0.2;
        second[4] += 0.1;
        // Last two pairs identical → dropped.
        let w = wilcoxon_signed_rank(&first, &second).unwrap();
        assert_eq!(w.n_used, 5);
    }

    #[test]
    fn rank_sums_partition_the_total() {
        let first: Vec<f64> = (0..30).map(|i| (i as f64 * 1.7).sin()).collect();
        let second: Vec<f64> = first
            .iter()
            .enumerate()
            .map(|(i, x)| x + ((i * 13 % 7) as f64 - 3.0) * 0.1)
            .collect();
        let w = wilcoxon_signed_rank(&first, &second).unwrap();
        let n = w.n_used as f64;
        assert!((w.w_plus + w.w_minus - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_t_test_on_well_behaved_data() {
        let first: Vec<f64> = (0..60).map(|i| 3.8 + 0.02 * (i % 9) as f64).collect();
        let second: Vec<f64> = first
            .iter()
            .enumerate()
            .map(|(i, x)| x + 0.15 + 0.03 * ((i % 5) as f64 - 2.0))
            .collect();
        let w = wilcoxon_signed_rank(&first, &second).unwrap();
        let t = crate::t_test_paired(&first, &second).unwrap();
        assert_eq!(w.significant_at(0.01), t.significant_at(0.01));
    }

    #[test]
    fn errors_on_degenerate_input() {
        assert!(matches!(
            wilcoxon_signed_rank(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        let same = vec![1.0; 10];
        assert!(matches!(
            wilcoxon_signed_rank(&same, &same),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert!(wilcoxon_signed_rank(&[f64::NAN; 6], &[1.0; 6]).is_err());
    }

    #[test]
    fn robust_to_an_outlier_where_the_t_test_is_not() {
        // 19 small positive shifts + 1 huge negative outlier: the rank
        // test still sees the consistent positive direction.
        let first: Vec<f64> = (0..20).map(|i| 3.0 + 0.01 * i as f64).collect();
        let mut second: Vec<f64> = first.iter().map(|x| x + 0.2).collect();
        second[19] -= 50.0;
        let w = wilcoxon_signed_rank(&first, &second).unwrap();
        assert!(w.w_plus > w.w_minus);
        let t = crate::t_test_paired(&first, &second).unwrap();
        assert!(
            t.mean_difference < 0.0,
            "the outlier drags the mean negative"
        );
    }
}
