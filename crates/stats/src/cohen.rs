//! Cohen's d effect sizes (Tables 2 and 3).
//!
//! The paper computes d with the "root mean square" pooled SD,
//! `SDpooled = sqrt((SD1² + SD2²) / 2)`, which is what
//! [`cohen_d_independent`] implements. [`cohen_d_paired`] and
//! [`hedges_g`] are provided as standard alternatives.

use crate::descriptive::Summary;
use crate::error::StatsError;
use crate::Result;

/// Cohen's qualitative interpretation bands (d = 0.2 / 0.5 / 0.8),
/// ordered from negligible to large.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EffectSizeBand {
    /// |d| < 0.2 — the groups' means differ trivially.
    Negligible,
    /// 0.2 <= |d| < 0.5.
    Small,
    /// 0.5 <= |d| < 0.8 (the paper's Table 2 lands here at d = 0.50).
    Medium,
    /// |d| >= 0.8 (the paper's Table 3 lands here at d = 0.86).
    Large,
}

impl EffectSizeBand {
    /// Classifies an effect size magnitude.
    pub fn classify(d: f64) -> Self {
        let m = d.abs();
        if m < 0.2 {
            EffectSizeBand::Negligible
        } else if m < 0.5 {
            EffectSizeBand::Small
        } else if m < 0.8 {
            EffectSizeBand::Medium
        } else {
            EffectSizeBand::Large
        }
    }

    /// Human-readable label matching the paper's wording.
    pub fn label(&self) -> &'static str {
        match self {
            EffectSizeBand::Negligible => "negligible",
            EffectSizeBand::Small => "small",
            EffectSizeBand::Medium => "medium",
            EffectSizeBand::Large => "large",
        }
    }
}

/// A computed Cohen's d together with the quantities the paper tabulates.
#[derive(Debug, Clone, PartialEq)]
pub struct CohensD {
    /// Mean of the first sample (first-half survey in the paper).
    pub mean_first: f64,
    /// Mean of the second sample (second-half survey).
    pub mean_second: f64,
    /// SD of the first sample.
    pub sd_first: f64,
    /// SD of the second sample.
    pub sd_second: f64,
    /// The pooled SD used as denominator.
    pub sd_pooled: f64,
    /// The effect size (second − first) / sd_pooled, matching the paper's
    /// `(M2 − M1) / SDpooled` orientation.
    pub d: f64,
    /// Sample size per group.
    pub n: usize,
}

impl CohensD {
    /// Interpretation band for this effect.
    pub fn band(&self) -> EffectSizeBand {
        EffectSizeBand::classify(self.d)
    }
}

/// Cohen's d for two samples using the paper's RMS pooled SD:
/// `d = (M2 − M1) / sqrt((SD1² + SD2²) / 2)`.
///
/// ```
/// use stats::{cohen_d_independent, EffectSizeBand};
/// let first  = vec![3.8, 3.9, 3.7, 3.85, 3.75];
/// let second = vec![4.0, 4.1, 3.95, 4.05, 4.0];
/// let d = cohen_d_independent(&first, &second).unwrap();
/// assert!(d.d > 0.8);
/// assert_eq!(d.band(), EffectSizeBand::Large);
/// ```
pub fn cohen_d_independent(first: &[f64], second: &[f64]) -> Result<CohensD> {
    let (s1, s2) = (Summary::from_slice(first)?, Summary::from_slice(second)?);
    if s1.n() < 2 || s2.n() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: s1.n().min(s2.n()) as usize,
        });
    }
    let (sd1, sd2) = (s1.sample_sd()?, s2.sample_sd()?);
    let sd_pooled = ((sd1 * sd1 + sd2 * sd2) / 2.0).sqrt();
    if sd_pooled == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(CohensD {
        mean_first: s1.mean(),
        mean_second: s2.mean(),
        sd_first: sd1,
        sd_second: sd2,
        sd_pooled,
        d: (s2.mean() - s1.mean()) / sd_pooled,
        n: s1.n().min(s2.n()) as usize,
    })
}

/// Cohen's d for paired data: mean difference divided by the SD of the
/// differences (sometimes called d_z).
pub fn cohen_d_paired(first: &[f64], second: &[f64]) -> Result<CohensD> {
    if first.len() != second.len() {
        return Err(StatsError::LengthMismatch {
            left: first.len(),
            right: second.len(),
        });
    }
    let diffs: Vec<f64> = second.iter().zip(first).map(|(s, f)| s - f).collect();
    let sd = Summary::from_slice(&diffs)?.sample_sd()?;
    if sd == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let (s1, s2) = (Summary::from_slice(first)?, Summary::from_slice(second)?);
    Ok(CohensD {
        mean_first: s1.mean(),
        mean_second: s2.mean(),
        sd_first: s1.sample_sd()?,
        sd_second: s2.sample_sd()?,
        sd_pooled: sd,
        d: (s2.mean() - s1.mean()) / sd,
        n: first.len(),
    })
}

/// Hedges' g: Cohen's d with the small-sample bias correction
/// `J = 1 − 3 / (4(n1 + n2) − 9)`.
pub fn hedges_g(first: &[f64], second: &[f64]) -> Result<f64> {
    let d = cohen_d_independent(first, second)?;
    let n = (first.len() + second.len()) as f64;
    Ok(d.d * (1.0 - 3.0 / (4.0 * n - 9.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_table2_arithmetic() {
        // Plug the paper's published moments straight into the formula:
        // (4.124365 − 4.023068) / sqrt((0.232416² + 0.172052²)/2) = 0.4954…
        let sd_pooled = ((0.232_416f64.powi(2) + 0.172_052f64.powi(2)) / 2.0).sqrt();
        let d = (4.124_365 - 4.023_068) / sd_pooled;
        assert!((sd_pooled - 0.204_474).abs() < 1e-5);
        assert!((d - 0.50).abs() < 0.01);
        // The paper rounds d to 0.50 before labelling it "medium".
        let rounded = (d * 100.0).round() / 100.0;
        assert_eq!(EffectSizeBand::classify(rounded), EffectSizeBand::Medium);
    }

    #[test]
    fn reproduces_paper_table3_arithmetic() {
        // (4.01 − 3.81) / sqrt((0.262204² + 0.198497²)/2) = 0.86
        let sd_pooled = ((0.262_204f64.powi(2) + 0.198_497f64.powi(2)) / 2.0).sqrt();
        let d = (4.01 - 3.81) / sd_pooled;
        assert!((sd_pooled - 0.232_542).abs() < 1e-5);
        assert!((d - 0.86).abs() < 0.01);
        assert_eq!(EffectSizeBand::classify(d), EffectSizeBand::Large);
    }

    #[test]
    fn bands_cover_all_ranges() {
        assert_eq!(EffectSizeBand::classify(0.0), EffectSizeBand::Negligible);
        assert_eq!(EffectSizeBand::classify(0.19), EffectSizeBand::Negligible);
        assert_eq!(EffectSizeBand::classify(0.2), EffectSizeBand::Small);
        assert_eq!(EffectSizeBand::classify(-0.35), EffectSizeBand::Small);
        assert_eq!(EffectSizeBand::classify(0.5), EffectSizeBand::Medium);
        assert_eq!(EffectSizeBand::classify(-0.79), EffectSizeBand::Medium);
        assert_eq!(EffectSizeBand::classify(0.8), EffectSizeBand::Large);
        assert_eq!(EffectSizeBand::classify(-2.0), EffectSizeBand::Large);
    }

    #[test]
    fn band_labels() {
        assert_eq!(EffectSizeBand::Negligible.label(), "negligible");
        assert_eq!(EffectSizeBand::Small.label(), "small");
        assert_eq!(EffectSizeBand::Medium.label(), "medium");
        assert_eq!(EffectSizeBand::Large.label(), "large");
    }

    #[test]
    fn independent_d_sign_follows_direction() {
        let lo = [1.0, 1.1, 0.9, 1.05];
        let hi = [2.0, 2.1, 1.9, 2.05];
        assert!(cohen_d_independent(&lo, &hi).unwrap().d > 0.0);
        assert!(cohen_d_independent(&hi, &lo).unwrap().d < 0.0);
    }

    #[test]
    fn paired_d_uses_difference_sd() {
        // Highly correlated pairs: tiny diff SD → huge paired d,
        // while independent d stays moderate.
        let first: Vec<f64> = (0..20).map(|i| (i % 10) as f64).collect();
        let second: Vec<f64> = first.iter().map(|x| x + 0.5 + 0.01 * (x % 2.0)).collect();
        let dp = cohen_d_paired(&first, &second).unwrap();
        let di = cohen_d_independent(&first, &second).unwrap();
        assert!(dp.d > di.d * 5.0);
    }

    #[test]
    fn paired_rejects_length_mismatch() {
        assert!(matches!(
            cohen_d_paired(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn zero_variance_rejected() {
        assert_eq!(
            cohen_d_independent(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn hedges_g_shrinks_d() {
        let lo = [1.0, 1.2, 0.8, 1.1, 0.9];
        let hi = [1.6, 1.8, 1.4, 1.7, 1.5];
        let d = cohen_d_independent(&lo, &hi).unwrap().d;
        let g = hedges_g(&lo, &hi).unwrap();
        assert!(g < d);
        assert!(g > 0.9 * d);
    }
}
