//! One-way analysis of variance, with the F distribution built on the
//! regularized incomplete beta. Used to confirm that the seven survey
//! elements genuinely differ in mean growth (the premise behind the
//! paper's ranking tables) rather than differing by noise.

use crate::descriptive::Summary;
use crate::error::StatsError;
use crate::special::incomplete_beta;
use crate::Result;

/// Result of a one-way ANOVA.
#[derive(Debug, Clone, PartialEq)]
pub struct AnovaResult {
    /// Between-group mean square.
    pub ms_between: f64,
    /// Within-group mean square.
    pub ms_within: f64,
    /// The F statistic.
    pub f: f64,
    /// Numerator degrees of freedom (k − 1).
    pub df_between: f64,
    /// Denominator degrees of freedom (N − k).
    pub df_within: f64,
    /// Right-tail p-value.
    pub p: f64,
    /// Effect size η² (between-group share of total variance).
    pub eta_squared: f64,
}

impl AnovaResult {
    /// True when the p-value is below `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p < alpha
    }
}

/// Right-tail probability of the F distribution:
/// `P(F(d1, d2) >= f) = I_{d2/(d2 + d1 f)}(d2/2, d1/2)`.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> Result<f64> {
    if d1 <= 0.0 || d2 <= 0.0 {
        return Err(StatsError::InvalidParameter(
            "f_sf: degrees of freedom must be > 0",
        ));
    }
    if !f.is_finite() || f < 0.0 {
        return Err(StatsError::NonFinite);
    }
    incomplete_beta(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f))
}

/// One-way ANOVA over `groups` (each a sample of one level).
///
/// ```
/// use stats::anova::anova_one_way;
/// let lo = vec![1.0, 1.1, 0.9, 1.0];
/// let hi = vec![2.0, 2.1, 1.9, 2.0];
/// let r = anova_one_way(&[lo, hi]).unwrap();
/// assert!(r.significant_at(0.001));
/// ```
pub fn anova_one_way(groups: &[Vec<f64>]) -> Result<AnovaResult> {
    if groups.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: groups.len(),
        });
    }
    let mut grand = Summary::new();
    let mut summaries = Vec::with_capacity(groups.len());
    for group in groups {
        let s = Summary::from_slice(group)?;
        if s.n() < 2 {
            return Err(StatsError::NotEnoughData {
                needed: 2,
                got: s.n() as usize,
            });
        }
        grand.merge(&s);
        summaries.push(s);
    }
    let grand_mean = grand.mean();
    let n_total = grand.n() as f64;
    let k = groups.len() as f64;

    let ss_between: f64 = summaries
        .iter()
        .map(|s| s.n() as f64 * (s.mean() - grand_mean).powi(2))
        .sum();
    let ss_within: f64 = summaries
        .iter()
        .map(|s| s.population_variance().expect("n >= 2") * s.n() as f64)
        .sum();
    let df_between = k - 1.0;
    let df_within = n_total - k;
    if ss_within == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let ms_between = ss_between / df_between;
    let ms_within = ss_within / df_within;
    let f = ms_between / ms_within;
    Ok(AnovaResult {
        ms_between,
        ms_within,
        f,
        df_between,
        df_within,
        p: f_sf(f, df_between, df_within)?,
        eta_squared: ss_between / (ss_between + ss_within),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_sf_reference_values() {
        // F(1, n) = T(n)²: P(F >= t²) = two-sided t p-value.
        let t = 2.0f64;
        let p_f = f_sf(t * t, 1.0, 10.0).unwrap();
        let p_t = crate::special::t_sf_two_sided(t, 10.0).unwrap();
        assert!((p_f - p_t).abs() < 1e-9);
        // Median of F(d, d) is 1: P(F >= 1) = 0.5.
        assert!((f_sf(1.0, 7.0, 7.0).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn separated_groups_are_significant() {
        let groups: Vec<Vec<f64>> = (0..3)
            .map(|g| (0..20).map(|i| g as f64 + 0.05 * (i % 5) as f64).collect())
            .collect();
        let r = anova_one_way(&groups).unwrap();
        assert!(r.f > 100.0);
        assert!(r.p < 1e-9);
        assert!(r.eta_squared > 0.9);
        assert_eq!(r.df_between, 2.0);
        assert_eq!(r.df_within, 57.0);
    }

    #[test]
    fn identical_group_means_are_insignificant() {
        let base: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let groups = vec![base.clone(), base.clone(), base];
        let r = anova_one_way(&groups).unwrap();
        assert!(r.f < 1e-9);
        assert!(r.p > 0.99);
        assert!(r.eta_squared < 1e-9);
    }

    #[test]
    fn two_group_anova_matches_pooled_t_test() {
        // F = t² and the p-values coincide for two groups.
        let a: Vec<f64> = (0..15).map(|i| 1.0 + 0.1 * (i % 4) as f64).collect();
        let b: Vec<f64> = (0..15).map(|i| 1.3 + 0.1 * (i % 4) as f64).collect();
        let anova = anova_one_way(&[a.clone(), b.clone()]).unwrap();
        let t = crate::t_test_independent(&a, &b).unwrap();
        assert!((anova.f - t.t * t.t).abs() < 1e-9);
        assert!((anova.p - t.p_two_sided).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_groups_are_handled() {
        let groups = vec![
            vec![1.0, 1.2, 0.8],
            (0..40)
                .map(|i| 2.0 + 0.01 * (i % 9) as f64)
                .collect::<Vec<_>>(),
        ];
        let r = anova_one_way(&groups).unwrap();
        assert!(r.significant_at(0.001));
    }

    #[test]
    fn errors_on_degenerate_input() {
        assert!(matches!(
            anova_one_way(&[vec![1.0, 2.0]]),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert!(matches!(
            anova_one_way(&[vec![1.0], vec![1.0, 2.0]]),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert_eq!(
            anova_one_way(&[vec![1.0, 1.0], vec![1.0, 1.0]]),
            Err(StatsError::ZeroVariance)
        );
        assert!(f_sf(-1.0, 2.0, 2.0).is_err());
        assert!(f_sf(1.0, 0.0, 2.0).is_err());
    }
}
