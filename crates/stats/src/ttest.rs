//! Student t-tests with exact p-values.
//!
//! The paper's Table 1 reports two *paired* t-tests over the 124 students
//! (first- vs second-half survey waves); [`t_test_paired`] reproduces that
//! analysis. Independent-sample (pooled and Welch) and one-sample variants
//! are provided for completeness and for the ablation benches.

use crate::descriptive::Summary;
use crate::error::{ensure_finite, StatsError};
use crate::special::{t_critical_two_sided, t_sf_two_sided};
use crate::Result;

/// Which t-test produced a [`TTestResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TTestKind {
    /// Paired-samples test on per-subject differences.
    Paired,
    /// Independent two-sample test with pooled variance.
    IndependentPooled,
    /// Independent two-sample test with Welch's df correction.
    Welch,
    /// One-sample test against a hypothesised mean.
    OneSample,
}

/// Outcome of a t-test.
#[derive(Debug, Clone, PartialEq)]
pub struct TTestResult {
    /// Which variant ran.
    pub kind: TTestKind,
    /// Difference of means (second − first for paired, a − b otherwise).
    pub mean_difference: f64,
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (possibly fractional for Welch).
    pub df: f64,
    /// Exact two-sided p-value.
    pub p_two_sided: f64,
    /// Number of subjects (pairs for the paired test).
    pub n: usize,
    /// 95% confidence interval for the mean difference.
    pub ci95: (f64, f64),
}

impl TTestResult {
    /// True when the two-sided p-value is below `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_two_sided < alpha
    }

    /// One-sided p-value in the direction of the observed difference.
    pub fn p_one_sided(&self) -> f64 {
        self.p_two_sided / 2.0
    }
}

fn finish(
    kind: TTestKind,
    mean_difference: f64,
    t: f64,
    df: f64,
    n: usize,
    se: f64,
) -> Result<TTestResult> {
    let p_two_sided = t_sf_two_sided(t, df)?;
    let tc = t_critical_two_sided(0.05, df)?;
    Ok(TTestResult {
        kind,
        mean_difference,
        t,
        df,
        p_two_sided,
        n,
        ci95: (mean_difference - tc * se, mean_difference + tc * se),
    })
}

/// Paired-samples t-test on `(first, second)` observations.
///
/// Tests H0: mean(second − first) = 0. This is the test behind the paper's
/// Table 1 rows (class emphasis: mean diff −0.10 reported as first − second;
/// we report `second − first`, so the sign convention is documented on
/// [`TTestResult::mean_difference`]).
///
/// ```
/// use stats::t_test_paired;
/// let first  = [3.8, 3.9, 4.0, 3.7, 3.6];
/// let second = [4.0, 4.1, 4.2, 4.0, 3.9];
/// let r = t_test_paired(&first, &second).unwrap();
/// assert!(r.mean_difference > 0.0);
/// assert!(r.significant_at(0.05));
/// ```
pub fn t_test_paired(first: &[f64], second: &[f64]) -> Result<TTestResult> {
    if first.len() != second.len() {
        return Err(StatsError::LengthMismatch {
            left: first.len(),
            right: second.len(),
        });
    }
    if first.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: first.len(),
        });
    }
    ensure_finite(first)?;
    ensure_finite(second)?;
    let diffs: Vec<f64> = second.iter().zip(first).map(|(s, f)| s - f).collect();
    let summary = Summary::from_slice(&diffs)?;
    let sd = summary.sample_sd()?;
    if sd == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let n = diffs.len();
    let se = sd / (n as f64).sqrt();
    let mean_diff = summary.mean();
    let t = mean_diff / se;
    finish(TTestKind::Paired, mean_diff, t, (n - 1) as f64, n, se)
}

/// Independent two-sample t-test with pooled variance.
///
/// Tests H0: mean(a) = mean(b) assuming equal variances.
pub fn t_test_independent(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    let (sa, sb) = (Summary::from_slice(a)?, Summary::from_slice(b)?);
    let (na, nb) = (sa.n() as f64, sb.n() as f64);
    if na < 2.0 || nb < 2.0 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: na.min(nb) as usize,
        });
    }
    let (va, vb) = (sa.sample_variance()?, sb.sample_variance()?);
    let pooled = ((na - 1.0) * va + (nb - 1.0) * vb) / (na + nb - 2.0);
    if pooled == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let se = (pooled * (1.0 / na + 1.0 / nb)).sqrt();
    let mean_diff = sa.mean() - sb.mean();
    let t = mean_diff / se;
    finish(
        TTestKind::IndependentPooled,
        mean_diff,
        t,
        na + nb - 2.0,
        (na + nb) as usize,
        se,
    )
}

/// Welch's t-test (independent samples, unequal variances).
pub fn t_test_welch(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    let (sa, sb) = (Summary::from_slice(a)?, Summary::from_slice(b)?);
    let (na, nb) = (sa.n() as f64, sb.n() as f64);
    if na < 2.0 || nb < 2.0 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: na.min(nb) as usize,
        });
    }
    let (va, vb) = (sa.sample_variance()?, sb.sample_variance()?);
    let (ra, rb) = (va / na, vb / nb);
    if ra + rb == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let se = (ra + rb).sqrt();
    let df = (ra + rb).powi(2) / (ra * ra / (na - 1.0) + rb * rb / (nb - 1.0));
    let mean_diff = sa.mean() - sb.mean();
    let t = mean_diff / se;
    finish(TTestKind::Welch, mean_diff, t, df, (na + nb) as usize, se)
}

/// One-sample t-test against the hypothesised mean `mu`.
pub fn t_test_one_sample(data: &[f64], mu: f64) -> Result<TTestResult> {
    let s = Summary::from_slice(data)?;
    if s.n() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: s.n() as usize,
        });
    }
    let sd = s.sample_sd()?;
    if sd == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let n = s.n() as f64;
    let se = sd / n.sqrt();
    let mean_diff = s.mean() - mu;
    let t = mean_diff / se;
    finish(
        TTestKind::OneSample,
        mean_diff,
        t,
        n - 1.0,
        s.n() as usize,
        se,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_detects_consistent_shift() {
        let first: Vec<f64> = (0..30).map(|i| 3.5 + 0.01 * (i % 7) as f64).collect();
        let second: Vec<f64> = first
            .iter()
            .map(|x| x + 0.2 + 0.001 * (x * 100.0).sin())
            .collect();
        let r = t_test_paired(&first, &second).unwrap();
        assert_eq!(r.kind, TTestKind::Paired);
        assert!(r.mean_difference > 0.19 && r.mean_difference < 0.21);
        assert!(r.t > 10.0);
        assert!(r.p_two_sided < 1e-6);
        assert_eq!(r.n, 30);
        assert!(r.ci95.0 < r.mean_difference && r.mean_difference < r.ci95.1);
    }

    #[test]
    fn paired_no_effect_is_insignificant() {
        // Differences alternate ±0.1: mean difference 0.
        let first: Vec<f64> = (0..40).map(|i| 3.0 + (i % 5) as f64 * 0.1).collect();
        let second: Vec<f64> = first
            .iter()
            .enumerate()
            .map(|(i, x)| x + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let r = t_test_paired(&first, &second).unwrap();
        assert!(r.p_two_sided > 0.5);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn paired_rejects_mismatched_lengths() {
        assert_eq!(
            t_test_paired(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { left: 2, right: 1 })
        );
    }

    #[test]
    fn paired_rejects_constant_differences() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 3.0, 4.0];
        assert_eq!(t_test_paired(&a, &b), Err(StatsError::ZeroVariance));
    }

    #[test]
    fn paired_needs_two_pairs() {
        assert!(matches!(
            t_test_paired(&[1.0], &[2.0]),
            Err(StatsError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn independent_reference_value() {
        // Hand-checked example: a = [1..5], b = [2..6] shifted by 1.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 3.0, 4.0, 5.0, 6.0];
        let r = t_test_independent(&a, &b).unwrap();
        assert!((r.mean_difference + 1.0).abs() < 1e-12);
        assert!((r.t + 1.0).abs() < 1e-12); // se = sqrt(2.5*(2/5)) = 1
        assert!((r.df - 8.0).abs() < 1e-12);
    }

    #[test]
    fn welch_handles_unequal_variances() {
        let tight: Vec<f64> = (0..20).map(|i| 10.0 + 0.01 * (i % 3) as f64).collect();
        let wide: Vec<f64> = (0..20).map(|i| 12.0 + (i % 10) as f64).collect();
        let r = t_test_welch(&wide, &tight).unwrap();
        assert_eq!(r.kind, TTestKind::Welch);
        assert!(r.df < 38.0); // Welch df is less than pooled df = 38
        assert!(r.mean_difference > 0.0);
        assert!(r.significant_at(0.01));
    }

    #[test]
    fn one_sample_against_true_mean() {
        let data = [4.9, 5.1, 5.0, 4.95, 5.05];
        let r = t_test_one_sample(&data, 5.0).unwrap();
        assert!(r.p_two_sided > 0.5);
        let r = t_test_one_sample(&data, 4.0).unwrap();
        // t ≈ 28 at df = 4 → p ≈ 1e-5.
        assert!(r.p_two_sided < 1e-4);
    }

    #[test]
    fn one_sided_p_is_half_two_sided() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = t_test_one_sample(&a, 2.0).unwrap();
        assert!((r.p_one_sided() - r.p_two_sided / 2.0).abs() < 1e-15);
    }

    #[test]
    fn ci_widens_with_smaller_n() {
        let small = t_test_one_sample(&[1.0, 2.0, 3.0], 0.0).unwrap();
        let data: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64).collect();
        let big = t_test_one_sample(&data, 0.0).unwrap();
        assert!((small.ci95.1 - small.ci95.0) > (big.ci95.1 - big.ci95.0));
    }

    #[test]
    fn rejects_non_finite() {
        assert!(t_test_paired(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
        assert!(t_test_one_sample(&[1.0, f64::INFINITY], 0.0).is_err());
    }
}
