//! Composite scores per Beyerlein et al. (2005), used by Tables 5 and 6.
//!
//! Each survey element has one *definition* item and several *component*
//! items; the composite is the average of (a) the definition score and
//! (b) the mean of the component scores. The paper uses it because it
//! blends a "global" view (definition) with a "focused" view (components).

use crate::error::StatsError;
use crate::Result;

/// A composite score with its two ingredients.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeScore {
    /// Score on the element's definition item.
    pub definition: f64,
    /// Mean of the element's component items.
    pub components_mean: f64,
    /// `(definition + components_mean) / 2`.
    pub composite: f64,
}

/// Computes the composite score from a definition item and component items.
///
/// ```
/// use stats::composite_score;
/// let c = composite_score(4.0, &[4.0, 5.0, 3.0, 4.0]).unwrap();
/// assert!((c.components_mean - 4.0).abs() < 1e-12);
/// assert!((c.composite - 4.0).abs() < 1e-12);
/// ```
pub fn composite_score(definition: f64, components: &[f64]) -> Result<CompositeScore> {
    if components.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    if !definition.is_finite() || components.iter().any(|c| !c.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    let components_mean = components.iter().sum::<f64>() / components.len() as f64;
    Ok(CompositeScore {
        definition,
        components_mean,
        composite: (definition + components_mean) / 2.0,
    })
}

/// Averages many per-respondent composite scores into the element-level
/// value tabulated in Tables 5/6.
pub fn mean_composite(scores: &[CompositeScore]) -> Result<f64> {
    if scores.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    Ok(scores.iter().map(|s| s.composite).sum::<f64>() / scores.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_definition_and_components_equally() {
        // Definition 5, components all 3 → composite 4, not the 3.33 a
        // flat mean of all items would give.
        let c = composite_score(5.0, &[3.0, 3.0, 3.0]).unwrap();
        assert!((c.composite - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_component() {
        let c = composite_score(2.0, &[4.0]).unwrap();
        assert!((c.composite - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_components_error() {
        assert!(matches!(
            composite_score(3.0, &[]),
            Err(StatsError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        assert_eq!(
            composite_score(f64::NAN, &[1.0]),
            Err(StatsError::NonFinite)
        );
        assert_eq!(
            composite_score(1.0, &[f64::INFINITY]),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn mean_composite_averages() {
        let scores = vec![
            composite_score(4.0, &[4.0]).unwrap(),
            composite_score(2.0, &[2.0]).unwrap(),
        ];
        assert!((mean_composite(&scores).unwrap() - 3.0).abs() < 1e-12);
        assert!(mean_composite(&[]).is_err());
    }
}
