//! Plain-text and Markdown table rendering used by the `report` binary to
//! print the paper's tables, and by EXPERIMENTS.md generation.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left.
    Right,
    /// Pad on both sides.
    Center,
}

/// A simple table builder.
///
/// ```
/// use stats::table::Table;
/// let mut t = Table::new(vec!["Metric", "Value"]);
/// t.row(vec!["t".into(), "-2.63".into()]);
/// let text = t.render_ascii();
/// assert!(text.contains("Metric"));
/// assert!(text.contains("-2.63"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given column headers (left-aligned).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Table {
            title: None,
            headers,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Overrides column alignments (length must match the headers).
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(
            aligns.len(),
            self.headers.len(),
            "alignment count must match column count"
        );
        self.aligns = aligns;
        self
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// are truncated to the column count.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        let len = cell.chars().count();
        let gap = width.saturating_sub(len);
        match align {
            Align::Left => format!("{cell}{}", " ".repeat(gap)),
            Align::Right => format!("{}{cell}", " ".repeat(gap)),
            Align::Center => {
                let left = gap / 2;
                format!("{}{cell}{}", " ".repeat(left), " ".repeat(gap - left))
            }
        }
    }

    /// Renders with box-drawing rules, suitable for terminal output.
    pub fn render_ascii(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "{title}");
        }
        let rule: String = {
            let mut r = String::from("+");
            for w in &widths {
                r.push_str(&"-".repeat(w + 2));
                r.push('+');
            }
            r
        };
        let _ = writeln!(out, "{rule}");
        let mut header_line = String::from("|");
        for ((h, w), a) in self.headers.iter().zip(&widths).zip(&self.aligns) {
            let _ = write!(header_line, " {} |", Self::pad(h, *w, *a));
        }
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let mut line = String::from("|");
            for ((cell, w), a) in row.iter().zip(&widths).zip(&self.aligns) {
                let _ = write!(line, " {} |", Self::pad(cell, *w, *a));
            }
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "{rule}");
        out
    }

    /// Renders GitHub-flavoured Markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "**{title}**\n");
        }
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":--",
                Align::Right => "--:",
                Align::Center => ":-:",
            })
            .collect();
        let _ = writeln!(out, "| {} |", seps.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with `digits` decimal places (helper for table cells).
pub fn fnum(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["Name", "Score"]).with_title("Demo");
        t.row(vec!["Teamwork".into(), "4.38".into()]);
        t.row(vec!["Implementation".into(), "4.16".into()]);
        t
    }

    #[test]
    fn ascii_contains_all_cells_and_rules() {
        let s = sample().render_ascii();
        assert!(s.contains("Demo"));
        assert!(s.contains("Teamwork"));
        assert!(s.contains("4.16"));
        assert!(s.matches('+').count() >= 9, "has rules");
        // All data lines equal width.
        let widths: Vec<usize> = s
            .lines()
            .filter(|l| l.starts_with('|') || l.starts_with('+'))
            .map(|l| l.chars().count())
            .collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn markdown_has_separator_row() {
        let s = sample().render_markdown();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("**Demo**"));
        assert!(lines[3].contains(":--"));
        assert_eq!(lines.len(), 6); // title, blank, header, sep, 2 rows
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only".into()]);
        t.row(vec!["x".into(), "y".into(), "z".into()]);
        assert_eq!(t.len(), 2);
        let s = t.render_ascii();
        assert!(!s.contains('z'));
    }

    #[test]
    fn alignment_right_pads_left() {
        let mut t = Table::new(vec!["n"]).with_aligns(vec![Align::Right]);
        t.row(vec!["7".into()]);
        let s = t.render_ascii();
        // header "n" is width 1 so alignment invisible; widen:
        let mut t = Table::new(vec!["count"]).with_aligns(vec![Align::Right]);
        t.row(vec!["7".into()]);
        let s2 = t.render_ascii();
        assert!(s2.contains("     7 |"));
        drop(s);
    }

    #[test]
    fn center_alignment() {
        let mut t = Table::new(vec!["wide"]).with_aligns(vec![Align::Center]);
        t.row(vec!["x".into()]);
        let s = t.render_ascii();
        assert!(s.contains("|  x"), "centered cell: {s}");
    }

    #[test]
    fn empty_table_renders() {
        let t = Table::new(vec!["h"]);
        assert!(t.is_empty());
        let s = t.render_ascii();
        assert!(s.contains('h'));
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(0.5, 2), "0.50");
        assert_eq!(fnum(-2.629, 2), "-2.63");
        assert_eq!(fnum(4.0, 0), "4");
    }

    #[test]
    #[should_panic(expected = "alignment count")]
    fn mismatched_aligns_panic() {
        let _ = Table::new(vec!["a", "b"]).with_aligns(vec![Align::Left]);
    }
}
