//! One-pass descriptive statistics.
//!
//! [`Summary`] accumulates count, mean, and central moments with Welford's
//! numerically stable online algorithm, and additionally tracks min/max.
//! Order statistics (median, quartiles) are computed from a sorted copy on
//! demand via [`median`] / [`quantile`].

use crate::error::{ensure_finite, StatsError};
use crate::Result;

/// Online summary of a univariate sample.
///
/// ```
/// use stats::Summary;
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.n(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.sample_variance().unwrap() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice, rejecting non-finite values.
    pub fn from_slice(data: &[f64]) -> Result<Self> {
        ensure_finite(data)?;
        let mut s = Summary::new();
        for &x in data {
            s.push(x);
        }
        Ok(s)
    }

    /// Adds one observation (updates all four central moments).
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another summary into this one (parallel-combine form of
    /// Welford, usable from reduction trees).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        self.mean += delta * nb / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean. Zero for an empty summary.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Range (max − min), or `None` if empty.
    pub fn range(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max - self.min)
    }

    /// Unbiased sample variance (n − 1 denominator).
    pub fn sample_variance(&self) -> Result<f64> {
        if self.n < 2 {
            return Err(StatsError::NotEnoughData {
                needed: 2,
                got: self.n as usize,
            });
        }
        Ok(self.m2 / (self.n as f64 - 1.0))
    }

    /// Population variance (n denominator).
    pub fn population_variance(&self) -> Result<f64> {
        if self.n < 1 {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        Ok(self.m2 / self.n as f64)
    }

    /// Sample standard deviation.
    pub fn sample_sd(&self) -> Result<f64> {
        Ok(self.sample_variance()?.sqrt())
    }

    /// Standard error of the mean (sd / sqrt(n)).
    pub fn sem(&self) -> Result<f64> {
        Ok(self.sample_sd()? / (self.n as f64).sqrt())
    }

    /// Sample skewness (adjusted Fisher–Pearson g1 with bias correction).
    pub fn skewness(&self) -> Result<f64> {
        if self.n < 3 {
            return Err(StatsError::NotEnoughData {
                needed: 3,
                got: self.n as usize,
            });
        }
        if self.m2 == 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        let n = self.n as f64;
        let g1 = (n.sqrt() * self.m3) / self.m2.powf(1.5);
        Ok(g1 * (n * (n - 1.0)).sqrt() / (n - 2.0))
    }

    /// Excess kurtosis (sample-adjusted G2).
    pub fn excess_kurtosis(&self) -> Result<f64> {
        if self.n < 4 {
            return Err(StatsError::NotEnoughData {
                needed: 4,
                got: self.n as usize,
            });
        }
        if self.m2 == 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        let n = self.n as f64;
        let g2 = n * self.m4 / (self.m2 * self.m2) - 3.0;
        Ok(((n + 1.0) * g2 + 6.0) * (n - 1.0) / ((n - 2.0) * (n - 3.0)))
    }

    /// Coefficient of variation (sd / mean); error if the mean is zero.
    pub fn coefficient_of_variation(&self) -> Result<f64> {
        if self.mean == 0.0 {
            return Err(StatsError::InvalidParameter("mean is zero"));
        }
        Ok(self.sample_sd()? / self.mean)
    }
}

impl std::iter::FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Arithmetic mean of a slice.
pub fn mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    ensure_finite(data)?;
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Median (average of the two middle elements for even n).
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5)
}

/// Linear-interpolation quantile (type-7, the R/NumPy default).
///
/// `q` must be in `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter("quantile must be in [0,1]"));
    }
    ensure_finite(data)?;
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let h = (sorted.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// Element-wise mean of several equal-length rows; used to average all
/// survey items into the per-student score the paper analyses.
pub fn row_means(rows: &[Vec<f64>]) -> Result<Vec<f64>> {
    rows.iter().map(|row| mean(row)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn empty_summary_reports_nothing() {
        let s = Summary::new();
        assert_eq!(s.n(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.range(), None);
        assert!(s.sample_variance().is_err());
    }

    #[test]
    fn single_value() {
        let s = Summary::from_slice(&[7.0]).unwrap();
        assert_eq!(s.n(), 1);
        assert!(close(s.mean(), 7.0));
        assert_eq!(s.min(), Some(7.0));
        assert_eq!(s.max(), Some(7.0));
        assert!(close(s.population_variance().unwrap(), 0.0));
        assert!(s.sample_variance().is_err());
    }

    #[test]
    fn known_variance() {
        // Var of 2,4,4,4,5,5,7,9 is 4 (population), 32/7 (sample).
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!(close(s.mean(), 5.0));
        assert!(close(s.population_variance().unwrap(), 4.0));
        assert!(close(s.sample_variance().unwrap(), 32.0 / 7.0));
    }

    #[test]
    fn skewness_symmetric_is_zero() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(close(s.skewness().unwrap(), 0.0));
    }

    #[test]
    fn skewness_right_tail_positive() {
        let s = Summary::from_slice(&[1.0, 1.0, 1.0, 1.0, 10.0]).unwrap();
        assert!(s.skewness().unwrap() > 1.0);
    }

    #[test]
    fn kurtosis_of_uniformish_is_negative() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert!(s.excess_kurtosis().unwrap() < 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let whole = Summary::from_slice(&data).unwrap();
        let mut a = Summary::from_slice(&data[..37]).unwrap();
        let b = Summary::from_slice(&data[37..]).unwrap();
        a.merge(&b);
        assert_eq!(a.n(), whole.n());
        assert!(close(a.mean(), whole.mean()));
        assert!(close(
            a.sample_variance().unwrap(),
            whole.sample_variance().unwrap()
        ));
        assert!(close(a.skewness().unwrap(), whole.skewness().unwrap()));
        assert!(close(
            a.excess_kurtosis().unwrap(),
            whole.excess_kurtosis().unwrap()
        ));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0]).unwrap();
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn from_iterator_collects() {
        let s: Summary = (1..=4).map(|x| x as f64).collect();
        assert_eq!(s.n(), 4);
        assert!(close(s.mean(), 2.5));
    }

    #[test]
    fn rejects_nan() {
        assert!(Summary::from_slice(&[1.0, f64::NAN]).is_err());
        assert!(mean(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert!(close(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0));
        assert!(close(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5));
    }

    #[test]
    fn quantile_endpoints_and_interp() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert!(close(quantile(&d, 0.0).unwrap(), 1.0));
        assert!(close(quantile(&d, 1.0).unwrap(), 4.0));
        assert!(close(quantile(&d, 0.25).unwrap(), 1.75));
        assert!(quantile(&d, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn sem_shrinks_with_n() {
        let small = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let data: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let big = Summary::from_slice(&data).unwrap();
        assert!(big.sem().unwrap() < small.sem().unwrap());
    }

    #[test]
    fn row_means_averages_each_row() {
        let rows = vec![vec![1.0, 3.0], vec![2.0, 2.0, 2.0]];
        let m = row_means(&rows).unwrap();
        assert!(close(m[0], 2.0));
        assert!(close(m[1], 2.0));
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        let cv = s.coefficient_of_variation().unwrap();
        assert!(close(cv, (32.0f64 / 7.0).sqrt() / 5.0));
        let z = Summary::from_slice(&[-1.0, 1.0]).unwrap();
        assert!(z.coefficient_of_variation().is_err());
    }
}
