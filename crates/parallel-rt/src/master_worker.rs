//! The master–worker implementation strategy (Assignment 4's third
//! program): a master thread feeds a task queue; workers pull tasks as
//! they free up and send results back.
//!
//! Compared with fork–join (where the work split is fixed at the fork),
//! master–worker balances load dynamically — the comparison Assignment 4
//! asks students to make.

use crossbeam::channel;

/// Statistics from a master–worker run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasterWorkerStats {
    /// Tasks processed per worker, indexed by worker id.
    pub tasks_per_worker: Vec<usize>,
}

impl MasterWorkerStats {
    /// Largest minus smallest per-worker task count — the load imbalance.
    pub fn imbalance(&self) -> usize {
        let max = self.tasks_per_worker.iter().copied().max().unwrap_or(0);
        let min = self.tasks_per_worker.iter().copied().min().unwrap_or(0);
        max - min
    }
}

/// Processes `tasks` with `workers` worker threads pulling from a shared
/// queue; returns results in task order plus per-worker statistics.
///
/// # Panics
/// Panics if `workers` is zero or a worker panics.
pub fn master_worker_with_stats<T, R, F>(
    tasks: Vec<T>,
    workers: usize,
    work: F,
) -> (Vec<R>, MasterWorkerStats)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let n = tasks.len();
    let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, usize, R)>();
    for pair in tasks.into_iter().enumerate() {
        task_tx.send(pair).expect("queue open");
    }
    drop(task_tx); // closing the queue is the workers' stop signal

    let work = &work;
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut per_worker = vec![0usize; workers];
    std::thread::scope(|scope| {
        for worker_id in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Ok((idx, task)) = task_rx.recv() {
                    let out = work(task);
                    result_tx
                        .send((worker_id, idx, out))
                        .expect("master listening");
                }
            });
        }
        drop(result_tx);
        while let Ok((worker_id, idx, out)) = result_rx.recv() {
            per_worker[worker_id] += 1;
            results[idx] = Some(out);
        }
    });
    (
        results
            .into_iter()
            .map(|r| r.expect("every task produced a result"))
            .collect(),
        MasterWorkerStats {
            tasks_per_worker: per_worker,
        },
    )
}

/// [`master_worker_with_stats`] without the statistics.
pub fn master_worker<T, R, F>(tasks: Vec<T>, workers: usize, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    master_worker_with_stats(tasks, workers, work).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        let out = master_worker((0..100).collect(), 4, |x: i32| x * x);
        assert_eq!(out.len(), 100);
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i * i) as i32));
    }

    #[test]
    fn all_tasks_processed_exactly_once() {
        let (out, stats) = master_worker_with_stats((0..57).collect(), 3, |x: u32| x);
        assert_eq!(out.len(), 57);
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 57);
        assert_eq!(stats.tasks_per_worker.len(), 3);
    }

    #[test]
    fn empty_task_list() {
        let out: Vec<u8> = master_worker(Vec::<u8>::new(), 2, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_processes_everything() {
        let (_, stats) = master_worker_with_stats((0..10).collect(), 1, |x: u8| x);
        assert_eq!(stats.tasks_per_worker, vec![10]);
        assert_eq!(stats.imbalance(), 0);
    }

    #[test]
    fn heterogeneous_task_type() {
        let words = vec!["alpha".to_string(), "be".to_string(), "gamma".to_string()];
        let lens = master_worker(words, 2, |w: String| w.len());
        assert_eq!(lens, vec![5, 2, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = master_worker(vec![1], 0, |x: i32| x);
    }

    #[test]
    fn imbalance_math() {
        let s = MasterWorkerStats {
            tasks_per_worker: vec![10, 4, 7],
        };
        assert_eq!(s.imbalance(), 6);
        let empty = MasterWorkerStats {
            tasks_per_worker: vec![],
        };
        assert_eq!(empty.imbalance(), 0);
    }
}
