//! Reduction operators — the `reduction(op:var)` clause.
//!
//! A [`Reduction`] supplies an identity and an associative combine; the
//! runtime accumulates one partial per thread and folds them in
//! thread-id order, so integer reductions are exact and floating-point
//! reductions are deterministic for static schedules.
//!
//! The schedule-space explorer reuses [`Sum`] verbatim:
//! [`crate::explore::program::Finalize::SumVars`] folds the modeled
//! per-lane partials with the same operator the real runtime uses at
//! the join, so a certification of the reduction patternlet speaks
//! about this code path, not a re-implementation.

/// An associative reduction with an identity element.
pub trait Reduction<T> {
    /// The identity value (`0` for `+`, `1` for `*`, …).
    fn identity(&self) -> T;
    /// Combines two partial results.
    fn combine(&self, a: T, b: T) -> T;

    /// Folds a sequence of partials, starting from the identity.
    fn fold(&self, parts: impl IntoIterator<Item = T>) -> T
    where
        Self: Sized,
    {
        parts
            .into_iter()
            .fold(self.identity(), |acc, x| self.combine(acc, x))
    }
}

/// `reduction(+:x)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum;

/// `reduction(*:x)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Product;

/// `reduction(max:x)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Max;

/// `reduction(min:x)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Min;

macro_rules! impl_numeric_reductions {
    ($($t:ty => $min:expr, $max:expr;)*) => {
        $(
            impl Reduction<$t> for Sum {
                fn identity(&self) -> $t { 0 as $t }
                fn combine(&self, a: $t, b: $t) -> $t { a + b }
            }
            impl Reduction<$t> for Product {
                fn identity(&self) -> $t { 1 as $t }
                fn combine(&self, a: $t, b: $t) -> $t { a * b }
            }
            impl Reduction<$t> for Max {
                fn identity(&self) -> $t { $min }
                fn combine(&self, a: $t, b: $t) -> $t { if a >= b { a } else { b } }
            }
            impl Reduction<$t> for Min {
                fn identity(&self) -> $t { $max }
                fn combine(&self, a: $t, b: $t) -> $t { if a <= b { a } else { b } }
            }
        )*
    };
}

impl_numeric_reductions! {
    i32 => i32::MIN, i32::MAX;
    i64 => i64::MIN, i64::MAX;
    u32 => u32::MIN, u32::MAX;
    u64 => u64::MIN, u64::MAX;
    usize => usize::MIN, usize::MAX;
    f32 => f32::NEG_INFINITY, f32::INFINITY;
    f64 => f64::NEG_INFINITY, f64::INFINITY;
}

/// A reduction defined by closures — OpenMP's `declare reduction`.
#[derive(Debug, Clone, Copy)]
pub struct Custom<I, C> {
    identity: I,
    combine: C,
}

impl<I, C> Custom<I, C> {
    /// Builds a custom reduction from an identity constructor and a
    /// combine function.
    pub fn new(identity: I, combine: C) -> Self {
        Custom { identity, combine }
    }
}

impl<T, I, C> Reduction<T> for Custom<I, C>
where
    I: Fn() -> T,
    C: Fn(T, T) -> T,
{
    fn identity(&self) -> T {
        (self.identity)()
    }
    fn combine(&self, a: T, b: T) -> T {
        (self.combine)(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_product_identities() {
        assert_eq!(Reduction::<i64>::identity(&Sum), 0);
        assert_eq!(Reduction::<i64>::identity(&Product), 1);
        assert_eq!(Sum.combine(2i64, 3), 5);
        assert_eq!(Product.combine(2i64, 3), 6);
    }

    #[test]
    fn min_max_identities_absorb() {
        assert_eq!(Max.combine(Reduction::<i32>::identity(&Max), 7), 7);
        assert_eq!(Min.combine(Reduction::<i32>::identity(&Min), 7), 7);
        assert_eq!(Max.combine(3.0f64, f64::NEG_INFINITY), 3.0);
    }

    #[test]
    fn fold_sums_a_sequence() {
        assert_eq!(Sum.fold(1..=10i64), 55);
        assert_eq!(Product.fold([2i64, 3, 4]), 24);
        assert_eq!(Max.fold([3i32, 9, 1]), 9);
        assert_eq!(Min.fold([3i32, 9, 1]), 1);
    }

    #[test]
    fn fold_of_empty_is_identity() {
        assert_eq!(Sum.fold(std::iter::empty::<i64>()), 0);
        assert_eq!(Min.fold(std::iter::empty::<i32>()), i32::MAX);
    }

    #[test]
    fn custom_reduction() {
        // String concatenation as a declare-reduction.
        let concat = Custom::new(String::new, |mut a: String, b: String| {
            a.push_str(&b);
            a
        });
        let out = concat.fold(["a".to_string(), "b".to_string(), "c".to_string()]);
        assert_eq!(out, "abc");
    }

    #[test]
    fn float_reductions() {
        assert!((Sum.fold([0.5f64, 0.25, 0.25]) - 1.0).abs() < 1e-15);
        assert_eq!(Max.fold([1.5f32, -2.0, 0.0]), 1.5);
    }
}
