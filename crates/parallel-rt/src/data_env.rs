//! Data-environment semantics: OpenMP's `shared`, `private`,
//! `firstprivate`, and `lastprivate` clauses as explicit types.
//!
//! In OpenMP these clauses silently change which storage a name refers
//! to inside a region — the exact subtlety ("scope matters") Assignment
//! 2 teaches. Rust's ownership makes the distinction explicit; these
//! wrappers document each clause's behaviour and let the patternlets
//! state it in code.

use parking_lot::RwLock;

/// `shared(x)`: one storage location visible to the whole team. Reads
/// are concurrent; writes take the write lock (the student's unsynchronised
/// writes to a shared variable are precisely what [`crate::race`] shows
/// going wrong).
#[derive(Debug, Default)]
pub struct Shared<T> {
    value: RwLock<T>,
}

impl<T> Shared<T> {
    /// Wraps a value in shared storage.
    pub fn new(value: T) -> Self {
        Shared {
            value: RwLock::new(value),
        }
    }

    /// Reads through a closure (concurrent with other readers).
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.value.read())
    }

    /// Writes through a closure (exclusive).
    pub fn write<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.value.write())
    }

    /// Consumes the wrapper, returning the final value (the join point).
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: Clone> Shared<T> {
    /// Snapshot of the current value.
    pub fn get(&self) -> T {
        self.value.read().clone()
    }
}

/// `private(x)`: each thread gets fresh, uninitialised-in-OpenMP storage.
/// Here "uninitialised" is modelled by `Default`, avoiding UB while
/// keeping the semantics: the region never sees the outer value.
pub fn private<T: Default>() -> T {
    T::default()
}

/// `firstprivate(x)`: each thread gets its own copy initialised from the
/// value outside the region.
pub fn firstprivate<T: Clone>(outer: &T) -> T {
    outer.clone()
}

/// `lastprivate(x)` for a work-shared loop: after the loop, the outer
/// variable holds the value from the *sequentially last* iteration.
/// Implemented by tracking the highest iteration index that wrote.
#[derive(Debug)]
pub struct LastPrivate<T> {
    slot: RwLock<Option<(usize, T)>>,
}

impl<T> Default for LastPrivate<T> {
    fn default() -> Self {
        LastPrivate {
            slot: RwLock::new(None),
        }
    }
}

impl<T> LastPrivate<T> {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the value produced by iteration `index`.
    pub fn record(&self, index: usize, value: T) {
        let mut slot = self.slot.write();
        match &*slot {
            Some((best, _)) if *best >= index => {}
            _ => *slot = Some((index, value)),
        }
    }

    /// The value from the sequentially last recorded iteration.
    pub fn into_value(self) -> Option<T> {
        self.slot.into_inner().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use crate::team::Team;

    #[test]
    fn shared_is_visible_to_all_threads() {
        let team = Team::new(4);
        let total = Shared::new(0u64);
        let total_ref = &total;
        team.parallel(|_| {
            total_ref.write(|t| *t += 1);
        });
        assert_eq!(total.into_inner(), 4);
    }

    #[test]
    fn shared_read_and_get() {
        let s = Shared::new(vec![1, 2, 3]);
        assert_eq!(s.read(|v| v.len()), 3);
        assert_eq!(s.get(), vec![1, 2, 3]);
    }

    #[test]
    fn private_never_sees_outer_value() {
        let outer: u64 = 99;
        let team = Team::new(3);
        let results = team.parallel(|_| {
            let mine: u64 = private();
            assert_ne!(mine, outer, "private storage starts at Default");
            mine
        });
        assert_eq!(results, vec![0, 0, 0]);
    }

    #[test]
    fn firstprivate_copies_outer_value_per_thread() {
        let outer = vec![1, 2];
        let team = Team::new(3);
        let results = team.parallel(|ctx| {
            let mut mine = firstprivate(&outer);
            mine.push(ctx.id() as i32);
            mine
        });
        // Each thread mutated its own copy; the outer value is intact.
        assert_eq!(outer, vec![1, 2]);
        assert_eq!(results[2], vec![1, 2, 2]);
    }

    #[test]
    fn lastprivate_keeps_sequentially_last_iteration() {
        let team = Team::new(4);
        let last = LastPrivate::new();
        let last_ref = &last;
        team.parallel_for(0..100, Schedule::Dynamic(3), |i| {
            last_ref.record(i, i * 10);
        });
        assert_eq!(last.into_value(), Some(990));
    }

    #[test]
    fn lastprivate_empty_is_none() {
        let last: LastPrivate<u8> = LastPrivate::new();
        assert_eq!(last.into_value(), None);
    }

    #[test]
    fn lastprivate_ignores_lower_indices() {
        let last = LastPrivate::new();
        last.record(5, "five");
        last.record(3, "three");
        last.record(5, "five-again");
        assert_eq!(last.into_value(), Some("five"));
    }
}
