//! Standalone synchronisation helpers: atomic counters and accumulators
//! usable outside a parallel region, mirroring `#pragma omp atomic`.
//!
//! In the schedule-space explorer these operations are modeled by
//! [`crate::explore::program::Op::FetchAdd`]; the systematic search
//! certifies that model race-free over its *entire* schedule space (see
//! [`crate::explore`]), which is the formal counterpart of the claim
//! these helpers make informally.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// An atomic integer counter — `#pragma omp atomic` on an integer.
#[derive(Debug, Default)]
pub struct AtomicCounter {
    value: AtomicI64,
}

impl AtomicCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically adds `delta`, returning the previous value.
    pub fn add(&self, delta: i64) -> i64 {
        self.value.fetch_add(delta, Ordering::Relaxed)
    }

    /// Atomically increments by one.
    pub fn increment(&self) -> i64 {
        self.add(1)
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An atomic f64 accumulator built on compare-exchange over the bit
/// pattern — `#pragma omp atomic` on a double. Useful for demonstrating
/// why reductions beat atomics for hot loops (every add is a CAS).
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// New accumulator holding `value`.
    pub fn new(value: f64) -> Self {
        AtomicF64 {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Current value.
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Stores `value`.
    pub fn store(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Release);
    }

    /// Atomically adds `delta` via a CAS loop; returns the new value.
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(current) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(new),
                Err(observed) => current = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;

    #[test]
    fn counter_counts_under_contention() {
        let c = AtomicCounter::new();
        let team = Team::new(4);
        team.parallel(|_| {
            for _ in 0..10_000 {
                c.increment();
            }
        });
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn counter_add_returns_previous() {
        let c = AtomicCounter::new();
        assert_eq!(c.add(5), 0);
        assert_eq!(c.add(-2), 5);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn atomic_f64_accumulates_exactly_representable_values() {
        let acc = AtomicF64::new(0.0);
        let team = Team::new(4);
        team.parallel(|_| {
            for _ in 0..1_000 {
                acc.fetch_add(0.25);
            }
        });
        assert_eq!(acc.load(), 1_000.0);
    }

    #[test]
    fn atomic_f64_store_load() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-7.25);
        assert_eq!(a.load(), -7.25);
    }

    #[test]
    fn atomic_f64_fetch_add_returns_new_value() {
        let a = AtomicF64::new(1.0);
        assert_eq!(a.fetch_add(2.0), 3.0);
    }
}
