//! The data-race demonstration from Assignment 2: "by sharing one bank
//! of memory, programmers need to be a bit more careful about declaring
//! their variables (scope matters) to avoid the data race problem."
//!
//! In C/OpenMP the buggy program increments a shared `count++` without
//! synchronisation and loses updates. Safe Rust statically forbids that
//! program — which is itself a teaching point — so the racy schedule is
//! *emulated*: the increment is split into its constituent atomic load
//! and store, recreating the exact interleaving hazard (read–modify–
//! write torn by a peer's write) without undefined behaviour.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::reduction::Sum;
use crate::schedule::Schedule;
use crate::team::Team;

/// How a shared counter is updated by the demonstration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixStrategy {
    /// No fix: split load/add/store, the racy `count++`.
    None,
    /// `#pragma omp critical` around the increment.
    Critical,
    /// `#pragma omp atomic`: a single fetch-add.
    Atomic,
    /// `reduction(+:count)`: per-thread partials combined at the join.
    Reduction,
}

/// Result of one demonstration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceOutcome {
    /// The value the counter should reach.
    pub expected: u64,
    /// The value it actually reached.
    pub observed: u64,
    /// Which strategy produced it.
    pub strategy: FixStrategy,
}

impl RaceOutcome {
    /// Updates lost to the race (zero for every correct strategy).
    pub fn lost_updates(&self) -> u64 {
        self.expected - self.observed
    }

    /// Whether the run produced the correct count.
    pub fn is_correct(&self) -> bool {
        self.observed == self.expected
    }
}

/// Runs `increments` increments per thread on a `threads`-wide team
/// using `strategy`, and reports what the shared counter reached.
///
/// With [`FixStrategy::None`] the observed count is typically *less*
/// than expected (lost updates) — and never more — which is exactly the
/// behaviour the students see on the Pi. On a single-core host the OS
/// may serialise the threads so few or no updates are lost; the
/// interleaving-sensitivity is itself part of the lesson ("race
/// conditions are difficult to reproduce and debug", Assignment 4).
pub fn shared_counter_demo(threads: usize, increments: u64, strategy: FixStrategy) -> RaceOutcome {
    let team = Team::new(threads);
    let expected = threads as u64 * increments;
    let counter = AtomicU64::new(0);
    let observed = match strategy {
        FixStrategy::None => {
            team.parallel(|_| {
                for _ in 0..increments {
                    // The racy ++: read, compute, write — three separate
                    // steps a peer can interleave with.
                    let read = counter.load(Ordering::Relaxed);
                    let incremented = read + 1;
                    std::hint::spin_loop(); // widen the window
                    counter.store(incremented, Ordering::Relaxed);
                }
            });
            counter.load(Ordering::Relaxed)
        }
        FixStrategy::Critical => {
            team.parallel(|ctx| {
                for _ in 0..increments {
                    ctx.critical("count", || {
                        let read = counter.load(Ordering::Relaxed);
                        counter.store(read + 1, Ordering::Relaxed);
                    });
                }
            });
            counter.load(Ordering::Relaxed)
        }
        FixStrategy::Atomic => {
            team.parallel(|_| {
                for _ in 0..increments {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            });
            counter.load(Ordering::Relaxed)
        }
        FixStrategy::Reduction => team.parallel_for_reduce(
            0..(threads * increments as usize),
            Schedule::StaticBlock,
            Sum,
            |_| 1u64,
        ),
    };
    RaceOutcome {
        expected,
        observed,
        strategy,
    }
}

/// Why the race is hard to reproduce and debug (Assignment 4's
/// discussion question), as structured teaching points.
pub fn why_races_are_hard() -> &'static [&'static str] {
    &[
        "the bug depends on thread interleaving, which changes run to run",
        "adding print statements or a debugger changes the timing and hides the bug",
        "the loss rate depends on core count, cache coherence, and scheduler behaviour",
        "the program is correct under most interleavings, so tests usually pass",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixes_produce_the_exact_count() {
        for strategy in [
            FixStrategy::Critical,
            FixStrategy::Atomic,
            FixStrategy::Reduction,
        ] {
            let out = shared_counter_demo(4, 5_000, strategy);
            assert!(out.is_correct(), "{strategy:?}: {out:?}");
            assert_eq!(out.lost_updates(), 0);
        }
    }

    #[test]
    fn racy_run_never_overcounts() {
        let out = shared_counter_demo(4, 20_000, FixStrategy::None);
        assert!(
            out.observed <= out.expected,
            "lost updates only, never gained"
        );
        assert_eq!(out.expected, 80_000);
    }

    #[test]
    fn outcome_arithmetic() {
        let o = RaceOutcome {
            expected: 100,
            observed: 93,
            strategy: FixStrategy::None,
        };
        assert_eq!(o.lost_updates(), 7);
        assert!(!o.is_correct());
    }

    #[test]
    fn teaching_points_exist() {
        assert!(why_races_are_hard().len() >= 3);
        assert!(why_races_are_hard()
            .iter()
            .any(|p| p.contains("interleaving")));
    }

    #[test]
    fn single_thread_cannot_race() {
        let out = shared_counter_demo(1, 10_000, FixStrategy::None);
        assert!(out.is_correct(), "one thread has nobody to race with");
    }
}
