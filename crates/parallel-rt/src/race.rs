//! The data-race demonstration from Assignment 2: "by sharing one bank
//! of memory, programmers need to be a bit more careful about declaring
//! their variables (scope matters) to avoid the data race problem."
//!
//! In C/OpenMP the buggy program increments a shared `count++` without
//! synchronisation and loses updates. Safe Rust statically forbids that
//! program — which is itself a teaching point — so the racy schedule is
//! *emulated*: the increment is split into its constituent atomic load
//! and store, recreating the exact interleaving hazard (read–modify–
//! write torn by a peer's write) without undefined behaviour.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::explore::program::{Finalize, Op, Program};
use crate::reduction::Sum;
use crate::schedule::Schedule;
use crate::team::Team;

/// How a shared counter is updated by the demonstration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixStrategy {
    /// No fix: split load/add/store, the racy `count++`.
    None,
    /// `#pragma omp critical` around the increment.
    Critical,
    /// `#pragma omp atomic`: a single fetch-add.
    Atomic,
    /// `reduction(+:count)`: per-thread partials combined at the join.
    Reduction,
}

/// Result of one demonstration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceOutcome {
    /// The value the counter should reach.
    pub expected: u64,
    /// The value it actually reached.
    pub observed: u64,
    /// Which strategy produced it.
    pub strategy: FixStrategy,
}

impl RaceOutcome {
    /// Updates lost to the race (zero for every correct strategy).
    pub fn lost_updates(&self) -> u64 {
        self.expected - self.observed
    }

    /// Whether the run produced the correct count.
    pub fn is_correct(&self) -> bool {
        self.observed == self.expected
    }
}

/// Runs `increments` increments per thread on a `threads`-wide team
/// using `strategy`, and reports what the shared counter reached.
///
/// With [`FixStrategy::None`] the observed count is typically *less*
/// than expected (lost updates) — and never more — which is exactly the
/// behaviour the students see on the Pi. On a single-core host the OS
/// may serialise the threads so few or no updates are lost; the
/// interleaving-sensitivity is itself part of the lesson ("race
/// conditions are difficult to reproduce and debug", Assignment 4).
pub fn shared_counter_demo(threads: usize, increments: u64, strategy: FixStrategy) -> RaceOutcome {
    let team = Team::new(threads);
    let expected = threads as u64 * increments;
    let counter = AtomicU64::new(0);
    let observed = match strategy {
        FixStrategy::None => {
            team.parallel(|_| {
                for _ in 0..increments {
                    // The racy ++: read, compute, write — three separate
                    // steps a peer can interleave with.
                    let read = counter.load(Ordering::Relaxed);
                    let incremented = read + 1;
                    std::hint::spin_loop(); // widen the window
                    counter.store(incremented, Ordering::Relaxed);
                }
            });
            counter.load(Ordering::Relaxed)
        }
        FixStrategy::Critical => {
            team.parallel(|ctx| {
                for _ in 0..increments {
                    ctx.critical("count", || {
                        let read = counter.load(Ordering::Relaxed);
                        counter.store(read + 1, Ordering::Relaxed);
                    });
                }
            });
            counter.load(Ordering::Relaxed)
        }
        FixStrategy::Atomic => {
            team.parallel(|_| {
                for _ in 0..increments {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            });
            counter.load(Ordering::Relaxed)
        }
        FixStrategy::Reduction => team.parallel_for_reduce(
            0..(threads * increments as usize),
            Schedule::StaticBlock,
            Sum,
            |_| 1u64,
        ),
    };
    RaceOutcome {
        expected,
        observed,
        strategy,
    }
}

/// Models the shared-counter patternlet as an [`explore::Program`] so
/// the schedule-space explorer can search its interleavings instead of
/// sampling whatever the OS scheduler happens to produce.
///
/// [`explore::Program`]: crate::explore::program::Program
///
/// The mapping mirrors [`shared_counter_demo`] op for op:
///
/// * [`FixStrategy::None`] — the split `count++`: plain load, local
///   add, plain store on one shared variable;
/// * [`FixStrategy::Critical`] — the same three steps inside
///   `Lock(0)`/`Unlock(0)`;
/// * [`FixStrategy::Atomic`] — a single `FetchAdd`;
/// * [`FixStrategy::Reduction`] — each lane increments its own partial
///   variable, folded at the join by
///   [`Finalize::SumVars`] using the real [`Sum`] reduction.
pub fn patternlet_program(strategy: FixStrategy, threads: usize, increments: usize) -> Program {
    let (name, lanes, num_vars, num_locks, finalize) = match strategy {
        FixStrategy::None => (
            "race/none",
            vec![
                (0..increments)
                    .flat_map(|_| [Op::Load(0), Op::AddImm(1), Op::Store(0)])
                    .collect::<Vec<_>>();
                threads
            ],
            1,
            0,
            Finalize::Var(0),
        ),
        FixStrategy::Critical => (
            "race/critical",
            vec![
                (0..increments)
                    .flat_map(|_| {
                        [
                            Op::Lock(0),
                            Op::Load(0),
                            Op::AddImm(1),
                            Op::Store(0),
                            Op::Unlock(0),
                        ]
                    })
                    .collect::<Vec<_>>();
                threads
            ],
            1,
            1,
            Finalize::Var(0),
        ),
        FixStrategy::Atomic => (
            "race/atomic",
            vec![vec![Op::FetchAdd(0, 1); increments]; threads],
            1,
            0,
            Finalize::Var(0),
        ),
        FixStrategy::Reduction => (
            "race/reduction",
            (0..threads)
                .map(|lane| {
                    (0..increments)
                        .flat_map(|_| [Op::Load(lane), Op::AddImm(1), Op::Store(lane)])
                        .collect()
                })
                .collect(),
            threads,
            0,
            Finalize::SumVars(0..threads),
        ),
    };
    let program = Program {
        name: name.into(),
        lanes,
        num_vars,
        num_locks,
        finalize,
        expected: (threads * increments) as u64,
    };
    debug_assert_eq!(program.validate(), Ok(()));
    program
}

/// Why the race is hard to reproduce and debug (Assignment 4's
/// discussion question), as structured teaching points.
pub fn why_races_are_hard() -> &'static [&'static str] {
    &[
        "the bug depends on thread interleaving, which changes run to run",
        "adding print statements or a debugger changes the timing and hides the bug",
        "the loss rate depends on core count, cache coherence, and scheduler behaviour",
        "the program is correct under most interleavings, so tests usually pass",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixes_produce_the_exact_count() {
        for strategy in [
            FixStrategy::Critical,
            FixStrategy::Atomic,
            FixStrategy::Reduction,
        ] {
            let out = shared_counter_demo(4, 5_000, strategy);
            assert!(out.is_correct(), "{strategy:?}: {out:?}");
            assert_eq!(out.lost_updates(), 0);
        }
    }

    #[test]
    fn racy_run_never_overcounts() {
        let out = shared_counter_demo(4, 20_000, FixStrategy::None);
        assert!(
            out.observed <= out.expected,
            "lost updates only, never gained"
        );
        assert_eq!(out.expected, 80_000);
    }

    #[test]
    fn outcome_arithmetic() {
        let o = RaceOutcome {
            expected: 100,
            observed: 93,
            strategy: FixStrategy::None,
        };
        assert_eq!(o.lost_updates(), 7);
        assert!(!o.is_correct());
    }

    #[test]
    fn teaching_points_exist() {
        assert!(why_races_are_hard().len() >= 3);
        assert!(why_races_are_hard()
            .iter()
            .any(|p| p.contains("interleaving")));
    }

    #[test]
    fn single_thread_cannot_race() {
        let out = shared_counter_demo(1, 10_000, FixStrategy::None);
        assert!(out.is_correct(), "one thread has nobody to race with");
    }

    #[test]
    fn patternlet_programs_are_well_formed() {
        for strategy in [
            FixStrategy::None,
            FixStrategy::Critical,
            FixStrategy::Atomic,
            FixStrategy::Reduction,
        ] {
            let p = patternlet_program(strategy, 3, 2);
            assert_eq!(p.validate(), Ok(()), "{strategy:?}");
            assert_eq!(p.num_lanes(), 3);
            assert_eq!(p.expected, 6);
        }
    }

    #[test]
    fn explorer_verdicts_match_the_demo_semantics() {
        use crate::explore::search::{systematic, Budget};
        // The buggy patternlet races; every fix certifies over the
        // *entire* schedule space — a stronger statement than the
        // real-thread demo, which can only sample OS interleavings.
        let buggy = systematic(
            &patternlet_program(FixStrategy::None, 2, 1),
            Budget::schedules(100_000),
        );
        assert!(buggy.space_exhausted && !buggy.certified());
        assert!(buggy.lost_update_runs > 0, "some schedule loses an update");
        for strategy in [
            FixStrategy::Critical,
            FixStrategy::Atomic,
            FixStrategy::Reduction,
        ] {
            let r = systematic(
                &patternlet_program(strategy, 2, 2),
                Budget::schedules(100_000),
            );
            assert!(r.space_exhausted, "{strategy:?}: space within budget");
            assert!(r.certified(), "{strategy:?}: race-free over the space");
        }
    }
}
