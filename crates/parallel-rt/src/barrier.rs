//! Barriers: the sense-reversing atomic barrier the runtime uses, plus a
//! mutex/condvar barrier kept for the ablation bench (DESIGN.md §ablation
//! 3). Both are reusable across phases, like `#pragma omp barrier`.
//!
//! The schedule-space explorer models this construct as
//! [`crate::explore::program::Op::Barrier`]: lanes park until the team
//! is complete, and the release joins every lane's vector clock — the
//! "all arrive, all synchronise" semantics [`TeamBarrier::wait`]
//! provides on real threads.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

/// A reusable barrier for a fixed-size team.
pub trait TeamBarrier: Sync {
    /// Blocks until all team members have called `wait`. Returns true on
    /// exactly one member per episode (the "last to arrive"), mirroring
    /// `std::sync::Barrier`'s leader flag.
    fn wait(&self) -> bool;

    /// Number of completed episodes so far.
    fn episodes(&self) -> usize;
}

/// Centralised sense-reversing barrier built on atomics (the classic
/// construction from the concurrency literature): arrivals decrement a
/// counter; the last one flips the global sense, releasing spinners.
#[derive(Debug)]
pub struct SenseBarrier {
    team_size: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
    episodes: AtomicUsize,
    wait_span: Option<obs::Span>,
}

impl SenseBarrier {
    /// Creates a barrier for `team_size` threads.
    ///
    /// # Panics
    /// Panics if `team_size` is zero.
    pub fn new(team_size: usize) -> Self {
        assert!(team_size > 0, "team size must be positive");
        SenseBarrier {
            team_size,
            remaining: AtomicUsize::new(team_size),
            sense: AtomicBool::new(false),
            episodes: AtomicUsize::new(0),
            wait_span: None,
        }
    }

    /// Attaches a span that accumulates wall-clock nanoseconds spent in
    /// [`TeamBarrier::wait`] across all threads. Barrier waits are host
    /// timing, so register the span under [`obs::Domain::Wall`] — it is
    /// a diagnostic, never part of the deterministic snapshot.
    pub fn instrument(&mut self, span: obs::Span) {
        self.wait_span = Some(span);
    }

    fn wait_inner(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Acquire);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arrival: reset the counter and release everyone by
            // publishing the new sense.
            self.remaining.store(self.team_size, Ordering::Relaxed);
            self.episodes.fetch_add(1, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // On an oversubscribed (or single-core) host, pure
                    // spinning livelocks; yield to the OS scheduler.
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

impl TeamBarrier for SenseBarrier {
    fn wait(&self) -> bool {
        match &self.wait_span {
            Some(span) => span.time_wall(|| self.wait_inner()),
            None => self.wait_inner(),
        }
    }

    fn episodes(&self) -> usize {
        self.episodes.load(Ordering::Relaxed)
    }
}

/// Mutex + condvar barrier, the textbook blocking construction; used as
/// the ablation baseline against [`SenseBarrier`].
#[derive(Debug)]
pub struct CondvarBarrier {
    team_size: usize,
    state: Mutex<CondvarState>,
    condvar: Condvar,
    wait_span: Option<obs::Span>,
}

#[derive(Debug)]
struct CondvarState {
    arrived: usize,
    generation: usize,
    episodes: usize,
}

impl CondvarBarrier {
    /// Creates a barrier for `team_size` threads.
    ///
    /// # Panics
    /// Panics if `team_size` is zero.
    pub fn new(team_size: usize) -> Self {
        assert!(team_size > 0, "team size must be positive");
        CondvarBarrier {
            team_size,
            state: Mutex::new(CondvarState {
                arrived: 0,
                generation: 0,
                episodes: 0,
            }),
            condvar: Condvar::new(),
            wait_span: None,
        }
    }

    /// Attaches a wall-clock wait span; see [`SenseBarrier::instrument`].
    pub fn instrument(&mut self, span: obs::Span) {
        self.wait_span = Some(span);
    }

    fn wait_inner(&self) -> bool {
        let mut state = self.state.lock();
        state.arrived += 1;
        if state.arrived == self.team_size {
            state.arrived = 0;
            state.generation += 1;
            state.episodes += 1;
            self.condvar.notify_all();
            true
        } else {
            let gen = state.generation;
            while state.generation == gen {
                self.condvar.wait(&mut state);
            }
            false
        }
    }
}

impl TeamBarrier for CondvarBarrier {
    fn wait(&self) -> bool {
        match &self.wait_span {
            Some(span) => span.time_wall(|| self.wait_inner()),
            None => self.wait_inner(),
        }
    }

    fn episodes(&self) -> usize {
        self.state.lock().episodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn exercise(barrier: &dyn TeamBarrier, threads: usize, phases: usize) {
        // Every thread appends its phase tag; after each barrier all
        // phase-p tags must precede all phase-(p+1) tags.
        let log = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for phase in 0..phases {
                        log.lock().push(phase);
                        barrier.wait();
                    }
                });
            }
        });
        let log = log.into_inner();
        assert_eq!(log.len(), threads * phases);
        let mut sorted = log.clone();
        sorted.sort_unstable();
        assert_eq!(log, sorted, "phases never interleave across a barrier");
        assert_eq!(barrier.episodes(), phases);
    }

    #[test]
    fn sense_barrier_separates_phases() {
        exercise(&SenseBarrier::new(4), 4, 5);
    }

    #[test]
    fn condvar_barrier_separates_phases() {
        exercise(&CondvarBarrier::new(4), 4, 5);
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        let barrier = SenseBarrier::new(3);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..10 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn single_thread_barrier_is_a_noop() {
        let b = SenseBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
        assert_eq!(b.episodes(), 2);
        let c = CondvarBarrier::new(1);
        assert!(c.wait());
        assert_eq!(c.episodes(), 1);
    }

    #[test]
    #[should_panic(expected = "team size must be positive")]
    fn zero_team_panics() {
        let _ = SenseBarrier::new(0);
    }

    #[test]
    #[should_panic(expected = "team size must be positive")]
    fn zero_team_panics_condvar() {
        let _ = CondvarBarrier::new(0);
    }

    #[test]
    fn instrumented_barriers_record_wall_wait_spans() {
        let registry = obs::Registry::new();
        let mut barrier = SenseBarrier::new(3);
        barrier.instrument(registry.span("parallel_rt/barrier/wait", obs::Domain::Wall));
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..5 {
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(barrier.episodes(), 5);
        // Wall-domain: absent from the deterministic snapshot, present
        // in the full one, with one entry per wait call.
        assert!(registry.snapshot().metrics.is_empty());
        let all = registry.snapshot_all();
        assert_eq!(all.metrics.len(), 1);
        assert!(
            matches!(
                all.metrics[0].data,
                obs::MetricData::Span { entries: 15, .. }
            ),
            "{:?}",
            all.metrics[0].data
        );
        let mut cv = CondvarBarrier::new(2);
        cv.instrument(registry.span("parallel_rt/barrier/condvar_wait", obs::Domain::Wall));
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    cv.wait();
                });
            }
        });
        assert_eq!(cv.episodes(), 1);
    }

    #[test]
    fn oversubscribed_barrier_does_not_livelock() {
        // More threads than this host has cores: the yield fallback must
        // keep the sense barrier making progress.
        let barrier = SenseBarrier::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..3 {
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(barrier.episodes(), 3);
    }
}
