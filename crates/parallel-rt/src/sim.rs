//! The simulated backend: lowers work-shared loops onto the
//! deterministic [`pi_sim`] machine so scheduling and speedup behaviour
//! can be measured in virtual time, independent of the host (this build
//! host has a single core, so real-thread timing cannot show the
//! paper's 4-core shapes; the simulator can).

use pi_sim::event::Cycles;
use pi_sim::machine::{Machine, MachineConfig, RunReport};
use pi_sim::program::Program;

use crate::schedule::{guided_chunks, static_block, static_chunks, Schedule};

/// Per-iteration cost model for a simulated loop body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostModel {
    /// Every iteration costs the same — the patternlets' uniform loops.
    Uniform(Cycles),
    /// Cost grows linearly with the index: `base + slope * i`. Models
    /// triangular workloads where static scheduling load-imbalances.
    Linear {
        /// Cost of iteration 0.
        base: Cycles,
        /// Additional cycles per index step.
        slope: Cycles,
    },
    /// Cost alternates: even indices cost `even`, odd cost `odd`.
    /// A worst case for chunked static schedules.
    Alternating {
        /// Cost of even iterations.
        even: Cycles,
        /// Cost of odd iterations.
        odd: Cycles,
    },
}

impl CostModel {
    /// Cost of iteration `i`.
    pub fn cost(&self, i: usize) -> Cycles {
        match *self {
            CostModel::Uniform(c) => c,
            CostModel::Linear { base, slope } => base + slope * i as Cycles,
            CostModel::Alternating { even, odd } => {
                if i.is_multiple_of(2) {
                    even
                } else {
                    odd
                }
            }
        }
    }

    /// Total cost of `iterations` iterations, in closed form (O(1)):
    /// uniform loops are a product, linear ones an arithmetic series,
    /// alternating ones two products. Equals
    /// `(0..iterations).map(|i| self.cost(i)).sum()` exactly.
    pub fn total(&self, iterations: usize) -> Cycles {
        let n = iterations as Cycles;
        match *self {
            CostModel::Uniform(c) => c * n,
            CostModel::Linear { base, slope } => {
                // Arithmetic series: sum slope*i = slope * n(n-1)/2.
                // One of n, n-1 is even, so the division is exact.
                base * n + slope * (n * n.saturating_sub(1) / 2)
            }
            CostModel::Alternating { even, odd } => even * n.div_ceil(2) + odd * (n / 2),
        }
    }

    /// Total cost of iterations `0..i` — the prefix sum, in O(1).
    pub fn prefix_cost(&self, i: usize) -> Cycles {
        self.total(i)
    }

    /// Cost of the contiguous chunk `start..end`, in O(1) via prefix
    /// sums.
    pub fn chunk_cost(&self, chunk: &std::ops::Range<usize>) -> Cycles {
        debug_assert!(chunk.start <= chunk.end, "malformed chunk {chunk:?}");
        self.prefix_cost(chunk.end) - self.prefix_cost(chunk.start)
    }
}

/// Options for the simulated runs.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// The simulated machine (defaults to the quad-core Pi).
    pub machine: MachineConfig,
    /// Cycles charged per forked thread before useful work, modelling
    /// `#pragma omp parallel`'s thread-management overhead. This is what
    /// makes tiny loops slower in parallel — the crossover the course
    /// has students discover.
    pub fork_overhead: Cycles,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            machine: MachineConfig::pi(),
            fork_overhead: 20_000,
        }
    }
}

/// Result of a simulated parallel loop.
#[derive(Debug, Clone)]
pub struct SimLoopOutcome {
    /// Virtual makespan in cycles.
    pub cycles: Cycles,
    /// Iterations executed per thread (load balance evidence).
    pub iterations_per_thread: Vec<usize>,
    /// The underlying machine report.
    pub report: RunReport,
}

impl SimLoopOutcome {
    /// Largest minus smallest per-thread iteration count.
    pub fn imbalance(&self) -> usize {
        let max = self
            .iterations_per_thread
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let min = self
            .iterations_per_thread
            .iter()
            .copied()
            .min()
            .unwrap_or(0);
        max - min
    }
}

/// Chunk assignment per thread for any schedule, computed exactly for
/// static policies and via least-loaded-first greedy self-scheduling for
/// dynamic/guided (the deterministic analogue of "whichever thread is
/// free grabs the next chunk").
pub fn plan_assignment(
    iterations: usize,
    cost: &CostModel,
    schedule: Schedule,
    threads: usize,
) -> Vec<Vec<std::ops::Range<usize>>> {
    assert!(threads > 0);
    schedule.validate();
    match schedule {
        Schedule::StaticBlock => (0..threads)
            .map(|t| {
                let r = static_block(0..iterations, threads, t);
                if r.is_empty() {
                    vec![]
                } else {
                    vec![r]
                }
            })
            .collect(),
        Schedule::StaticChunk(c) => (0..threads)
            .map(|t| static_chunks(0..iterations, threads, t, c))
            .collect(),
        Schedule::Dynamic(c) => {
            let mut chunks = Vec::new();
            let mut start = 0;
            while start < iterations {
                chunks.push(start..(start + c).min(iterations));
                start += c;
            }
            greedy_assign(chunks, cost, threads)
        }
        Schedule::Guided(min_chunk) => greedy_assign(
            guided_chunks(0..iterations, threads, min_chunk),
            cost,
            threads,
        ),
    }
}

/// Assigns chunks in order to the least-loaded thread (ties to the
/// lowest id) — deterministic self-scheduling.
fn greedy_assign(
    chunks: Vec<std::ops::Range<usize>>,
    cost: &CostModel,
    threads: usize,
) -> Vec<Vec<std::ops::Range<usize>>> {
    let mut load = vec![0u128; threads];
    let mut out = vec![Vec::new(); threads];
    for chunk in chunks {
        let chunk_cost = cost.chunk_cost(&chunk);
        let (t, _) = load
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .expect("threads > 0");
        load[t] += chunk_cost as u128;
        out[t].push(chunk);
    }
    out
}

/// How a planned chunk assignment is turned into machine [`Program`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lowering {
    /// One `Compute` op per loop iteration — the reference lowering.
    /// Program size is O(iterations); exists as the oracle the
    /// run-length-encoded path is verified against.
    PerIteration,
    /// One run-length-encoded block per chunk: uniform chunks become a
    /// single `ComputeRepeat`, other cost models a single `Compute` of
    /// the chunk's closed-form total. Program size is O(chunks)
    /// regardless of the iteration count, and because compute is
    /// continuously interruptible the machine's timing is bit-identical
    /// to [`Lowering::PerIteration`].
    Rle,
}

/// Lowers a chunk assignment to one [`Program`] per thread.
pub fn lower_programs(
    assignment: &[Vec<std::ops::Range<usize>>],
    cost: &CostModel,
    fork_overhead: Cycles,
    lowering: Lowering,
) -> Vec<Program> {
    assignment
        .iter()
        .map(|chunks| {
            let mut p = Program::new().compute(fork_overhead);
            for chunk in chunks {
                match lowering {
                    Lowering::PerIteration => {
                        for i in chunk.clone() {
                            p = p.compute(cost.cost(i));
                        }
                    }
                    Lowering::Rle => match *cost {
                        CostModel::Uniform(c) => {
                            p = p.compute_repeat(c, chunk.len() as u64);
                        }
                        _ => {
                            let total = cost.chunk_cost(chunk);
                            if total > 0 {
                                p = p.compute(total);
                            }
                        }
                    },
                }
            }
            p
        })
        .collect()
}

/// Simulates the loop run by `threads` software threads on the
/// configured machine, using the O(chunks) run-length-encoded lowering.
pub fn simulate_parallel_loop(
    iterations: usize,
    cost: &CostModel,
    schedule: Schedule,
    threads: usize,
    opts: &SimOptions,
) -> SimLoopOutcome {
    simulate_parallel_loop_lowered(iterations, cost, schedule, threads, opts, Lowering::Rle)
}

/// [`simulate_parallel_loop`] additionally recording metrics into
/// `registry`: the planned chunk-size distribution under
/// `parallel_rt/chunks/<policy>` and the machine's `pi_sim/*` metrics
/// (per-core busy spans, bus contention, cache counters, event-queue
/// depth). All recorded values are virtual-time or counts, so the
/// snapshot is as deterministic as the outcome.
pub fn simulate_parallel_loop_with_metrics(
    iterations: usize,
    cost: &CostModel,
    schedule: Schedule,
    threads: usize,
    opts: &SimOptions,
    registry: &obs::Registry,
) -> SimLoopOutcome {
    let assignment = plan_assignment(iterations, cost, schedule, threads);
    let chunk_sizes = registry.histogram(
        &format!("parallel_rt/chunks/{}", schedule.label()),
        obs::Domain::Virtual,
        &crate::forloop::CHUNK_SIZE_EDGES,
    );
    for chunk in assignment.iter().flatten() {
        chunk_sizes.record(chunk.len() as u64);
    }
    let iterations_per_thread: Vec<usize> = assignment
        .iter()
        .map(|chunks| chunks.iter().map(|c| c.len()).sum())
        .collect();
    let programs = lower_programs(&assignment, cost, opts.fork_overhead, Lowering::Rle);
    let report = Machine::new(opts.machine).run_with_metrics(programs, registry);
    SimLoopOutcome {
        cycles: report.total_cycles,
        iterations_per_thread,
        report,
    }
}

/// [`simulate_parallel_loop`] additionally recording the deterministic
/// event trace: the machine's per-core slice spans and per-thread wait
/// spans, plus a `dispatch` lane of chunk-dispatch instants at each
/// chunk's *planned* start time (fork overhead plus the closed-form
/// cost of the chunks before it on the same thread — the uncontended
/// schedule the runtime intended, against which the machine lanes show
/// what actually happened).
pub fn simulate_parallel_loop_traced(
    iterations: usize,
    cost: &CostModel,
    schedule: Schedule,
    threads: usize,
    opts: &SimOptions,
    tcfg: &obs::trace::TraceConfig,
) -> (SimLoopOutcome, obs::trace::Trace) {
    let assignment = plan_assignment(iterations, cost, schedule, threads);
    let iterations_per_thread: Vec<usize> = assignment
        .iter()
        .map(|chunks| chunks.iter().map(|c| c.len()).sum())
        .collect();
    let programs = lower_programs(&assignment, cost, opts.fork_overhead, Lowering::Rle);
    let (report, mut trace) = Machine::new(opts.machine).run_with_trace(programs, tcfg);
    let mut dispatch =
        obs::trace::TraceBuffer::new(trace.next_lane(), "dispatch", tcfg.capacity_per_lane);
    for (t, chunks) in assignment.iter().enumerate() {
        let mut planned = opts.fork_overhead;
        for chunk in chunks {
            dispatch.instant(
                planned,
                format!("t{t} {}..{}", chunk.start, chunk.end),
                obs::trace::category::CHUNK,
                chunk.len() as u64,
            );
            planned += cost.chunk_cost(chunk);
        }
    }
    trace.absorb(dispatch);
    let outcome = SimLoopOutcome {
        cycles: report.total_cycles,
        iterations_per_thread,
        report,
    };
    (outcome, trace)
}

/// [`simulate_parallel_loop`] with an explicit lowering choice.
pub fn simulate_parallel_loop_lowered(
    iterations: usize,
    cost: &CostModel,
    schedule: Schedule,
    threads: usize,
    opts: &SimOptions,
    lowering: Lowering,
) -> SimLoopOutcome {
    let assignment = plan_assignment(iterations, cost, schedule, threads);
    let iterations_per_thread: Vec<usize> = assignment
        .iter()
        .map(|chunks| chunks.iter().map(|c| c.len()).sum())
        .collect();
    let programs = lower_programs(&assignment, cost, opts.fork_overhead, lowering);
    let report = Machine::new(opts.machine).run(programs);
    SimLoopOutcome {
        cycles: report.total_cycles,
        iterations_per_thread,
        report,
    }
}

/// Cumulative chunk costs for one thread of a lowered loop: `cum[j]` is
/// the total cost of that thread's first `j` chunks, so any chunk's
/// cost — and any uniform scaling of it — is two lookups away. Shared
/// by every scenario of a [`LoweredLoop`] sweep; the cost model itself
/// is never consulted again after the table is built.
#[derive(Debug, Clone)]
pub struct PrefixTable {
    cum: Vec<Cycles>,
}

impl PrefixTable {
    fn build(chunks: &[std::ops::Range<usize>], cost: &CostModel) -> Self {
        let mut cum = Vec::with_capacity(chunks.len() + 1);
        cum.push(0);
        for chunk in chunks {
            let last = *cum.last().expect("non-empty");
            cum.push(last + cost.chunk_cost(chunk));
        }
        PrefixTable { cum }
    }

    /// Number of chunks covered.
    pub fn chunks(&self) -> usize {
        self.cum.len() - 1
    }

    /// Cost of chunk `j`.
    pub fn chunk_cost(&self, j: usize) -> Cycles {
        self.cum[j + 1] - self.cum[j]
    }

    /// Total cost of every chunk on this thread.
    pub fn total(&self) -> Cycles {
        *self.cum.last().expect("non-empty")
    }
}

/// One parameter point of a [`LoweredLoop`] sweep: the machine to run
/// on, a uniform integer scaling of every iteration cost, and the fork
/// overhead. Scaling all costs by the same positive factor preserves
/// the greedy self-scheduling assignment exactly (the argmin over
/// scaled loads, ties included, is the argmin over the originals), so a
/// plan lowered once is valid for every point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The simulated machine for this scenario.
    pub machine: MachineConfig,
    /// Positive integer factor applied to every iteration's cost.
    pub cost_scale: Cycles,
    /// Cycles charged per forked thread before useful work.
    pub fork_overhead: Cycles,
}

impl SweepPoint {
    /// The unscaled point matching `opts` — the identity scenario.
    pub fn base(opts: &SimOptions) -> Self {
        SweepPoint {
            machine: opts.machine,
            cost_scale: 1,
            fork_overhead: opts.fork_overhead,
        }
    }
}

/// A parallel loop planned and lowered **once**, then fast-forwarded
/// through any number of [`SweepPoint`] scenarios. Planning (the greedy
/// chunk assignment) and per-chunk closed-form costing happen in
/// [`LoweredLoop::plan`]; each [`LoweredLoop::run`] only rebuilds the
/// O(chunks) run-length-encoded programs from the shared
/// [`PrefixTable`]s and runs the machine — the per-scenario cost of the
/// naive loop (re-plan, re-cost, re-lower) is paid a single time for
/// the whole sweep.
#[derive(Debug, Clone)]
pub struct LoweredLoop {
    cost: CostModel,
    assignment: Vec<Vec<std::ops::Range<usize>>>,
    iterations_per_thread: Vec<usize>,
    prefix: Vec<PrefixTable>,
}

impl LoweredLoop {
    /// Plans `iterations` of `cost` under `schedule` across `threads`
    /// and builds the shared prefix tables.
    pub fn plan(iterations: usize, cost: &CostModel, schedule: Schedule, threads: usize) -> Self {
        let assignment = plan_assignment(iterations, cost, schedule, threads);
        let iterations_per_thread = assignment
            .iter()
            .map(|chunks| chunks.iter().map(|c| c.len()).sum())
            .collect();
        let prefix = assignment
            .iter()
            .map(|chunks| PrefixTable::build(chunks, cost))
            .collect();
        LoweredLoop {
            cost: *cost,
            assignment,
            iterations_per_thread,
            prefix,
        }
    }

    /// The shared per-thread prefix tables.
    pub fn prefix_tables(&self) -> &[PrefixTable] {
        &self.prefix
    }

    /// Run-length-encoded programs for one sweep point, built from the
    /// prefix tables alone. Uniform chunks become `ComputeRepeat` of the
    /// scaled iteration cost; every other model becomes one `Compute` of
    /// the scaled chunk total — exactly what [`lower_programs`] emits
    /// for the scaled cost model, because every closed-form chunk cost
    /// is linear in the model's parameters.
    fn programs(&self, point: &SweepPoint) -> Vec<Program> {
        assert!(point.cost_scale > 0, "cost_scale must be positive");
        self.assignment
            .iter()
            .zip(&self.prefix)
            .map(|(chunks, prefix)| {
                let mut p = Program::new().compute(point.fork_overhead);
                for (j, chunk) in chunks.iter().enumerate() {
                    match self.cost {
                        CostModel::Uniform(c) => {
                            p = p.compute_repeat(c * point.cost_scale, chunk.len() as u64);
                        }
                        _ => {
                            let total = prefix.chunk_cost(j) * point.cost_scale;
                            if total > 0 {
                                p = p.compute(total);
                            }
                        }
                    }
                }
                p
            })
            .collect()
    }

    /// Simulates one sweep point. Equivalent, cycle for cycle, to
    /// [`simulate_parallel_loop_lowered`] with the scaled cost model and
    /// this point's machine and fork overhead (the equivalence the
    /// `sweep_matches_full_simulation` test pins down).
    pub fn run(&self, point: &SweepPoint) -> SimLoopOutcome {
        let programs = self.programs(point);
        let report = Machine::new(point.machine).run(programs);
        SimLoopOutcome {
            cycles: report.total_cycles,
            iterations_per_thread: self.iterations_per_thread.clone(),
            report,
        }
    }

    /// Simulates every point of the sweep in order.
    pub fn sweep(&self, points: &[SweepPoint]) -> Vec<SimLoopOutcome> {
        points.iter().map(|p| self.run(p)).collect()
    }
}

impl CostModel {
    /// This model with every iteration cost multiplied by `k` — the
    /// model a [`SweepPoint`] with `cost_scale = k` simulates.
    pub fn scaled(&self, k: Cycles) -> CostModel {
        match *self {
            CostModel::Uniform(c) => CostModel::Uniform(c * k),
            CostModel::Linear { base, slope } => CostModel::Linear {
                base: base * k,
                slope: slope * k,
            },
            CostModel::Alternating { even, odd } => CostModel::Alternating {
                even: even * k,
                odd: odd * k,
            },
        }
    }
}

/// Simulates the sequential baseline (no fork overhead, one thread).
pub fn simulate_sequential_loop(iterations: usize, cost: &CostModel, opts: &SimOptions) -> Cycles {
    let machine = Machine::new(MachineConfig {
        cores: 1,
        ..opts.machine
    });
    machine
        .run_sequential(Program::new().compute(cost.total(iterations).max(1)))
        .total_cycles
}

/// How per-thread partial results are combined in a simulated reduction —
/// the ablation DESIGN.md calls out (serial vs tree vs atomic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionStyle {
    /// Each thread writes one partial; the master combines serially.
    SerialCombine,
    /// Pairwise tree combine with barriers between levels.
    Tree,
    /// Every iteration does an atomic RMW on one shared accumulator.
    AtomicPerIteration,
}

/// Simulates a sum reduction over `iterations` uniform iterations of
/// `iter_cost` cycles, using `style`, returning the virtual makespan.
pub fn simulate_reduction(
    iterations: usize,
    iter_cost: Cycles,
    threads: usize,
    style: ReductionStyle,
    opts: &SimOptions,
) -> Cycles {
    let programs = reduction_programs(iterations, iter_cost, threads, style, opts);
    Machine::new(opts.machine).run(programs).total_cycles
}

/// [`simulate_reduction`] additionally recording the deterministic
/// event trace — the barrier-wait spans between tree-combine rounds
/// are where a reduction's lost time becomes visible.
pub fn simulate_reduction_traced(
    iterations: usize,
    iter_cost: Cycles,
    threads: usize,
    style: ReductionStyle,
    opts: &SimOptions,
    tcfg: &obs::trace::TraceConfig,
) -> (Cycles, obs::trace::Trace) {
    let programs = reduction_programs(iterations, iter_cost, threads, style, opts);
    let (report, trace) = Machine::new(opts.machine).run_with_trace(programs, tcfg);
    (report.total_cycles, trace)
}

fn reduction_programs(
    iterations: usize,
    iter_cost: Cycles,
    threads: usize,
    style: ReductionStyle,
    opts: &SimOptions,
) -> Vec<Program> {
    assert!(threads > 0);
    let combine_cost: Cycles = 50; // one partial-combine step
    let acc_addr = 0x9000_0000u64;
    (0..threads)
        .map(|t| {
            let my_iters = static_block(0..iterations, threads, t).len();
            let mut p = Program::new().compute(opts.fork_overhead);
            match style {
                ReductionStyle::SerialCombine => {
                    p = p.compute(my_iters as Cycles * iter_cost);
                    // Everyone publishes a partial, master combines after
                    // the barrier.
                    p = p.write(0x8000_0000 + t as u64 * 64);
                    p = p.barrier(0, threads as u32);
                    if t == 0 {
                        for peer in 0..threads {
                            p = p.read(0x8000_0000 + peer as u64 * 64).compute(combine_cost);
                        }
                    }
                }
                ReductionStyle::Tree => {
                    p = p.compute(my_iters as Cycles * iter_cost);
                    // log2 rounds of pairwise combines with barriers.
                    let mut stride = 1usize;
                    let mut round = 0u32;
                    while stride < threads {
                        p = p.barrier(100 + round, threads as u32);
                        if t % (2 * stride) == 0 && t + stride < threads {
                            p = p
                                .read(0x8000_0000 + (t + stride) as u64 * 64)
                                .compute(combine_cost)
                                .write(0x8000_0000 + t as u64 * 64);
                        }
                        stride *= 2;
                        round += 1;
                    }
                }
                ReductionStyle::AtomicPerIteration => {
                    for _ in 0..my_iters {
                        p = p.compute(iter_cost).atomic_rmw(acc_addr);
                    }
                }
            }
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_sim::perf::speedup;

    #[test]
    fn metrics_variant_matches_plain_simulation_and_is_deterministic() {
        let cost = CostModel::Linear {
            base: 100,
            slope: 7,
        };
        let opts = SimOptions::default();
        let plain = simulate_parallel_loop(5_000, &cost, Schedule::Guided(8), 4, &opts);
        let run = || {
            let registry = obs::Registry::new();
            let outcome = simulate_parallel_loop_with_metrics(
                5_000,
                &cost,
                Schedule::Guided(8),
                4,
                &opts,
                &registry,
            );
            (outcome, registry.snapshot())
        };
        let (a, snap_a) = run();
        let (b, snap_b) = run();
        assert_eq!(a.cycles, plain.cycles, "observer effect on the makespan");
        assert_eq!(a.iterations_per_thread, plain.iterations_per_thread);
        assert_eq!(b.cycles, plain.cycles);
        assert_eq!(snap_a.to_json(), snap_b.to_json());
        assert!(snap_a
            .metrics
            .iter()
            .any(|m| m.name == "parallel_rt/chunks/guided"));
        assert!(snap_a
            .metrics
            .iter()
            .any(|m| m.name == "pi_sim/cache/l1_hits"));
    }

    #[test]
    fn traced_loop_matches_plain_and_trace_is_byte_stable() {
        let cost = CostModel::Linear {
            base: 100,
            slope: 7,
        };
        let opts = SimOptions::default();
        let tcfg = obs::trace::TraceConfig::default();
        let plain = simulate_parallel_loop(5_000, &cost, Schedule::Guided(8), 4, &opts);
        let (a, ta) =
            simulate_parallel_loop_traced(5_000, &cost, Schedule::Guided(8), 4, &opts, &tcfg);
        let (_, tb) =
            simulate_parallel_loop_traced(5_000, &cost, Schedule::Guided(8), 4, &opts, &tcfg);
        assert_eq!(a.cycles, plain.cycles, "observer effect on the makespan");
        assert_eq!(ta.to_chrome_json(), tb.to_chrome_json());
        // The dispatch lane carries one instant per planned chunk.
        let chunks: usize = plan_assignment(5_000, &cost, Schedule::Guided(8), 4)
            .iter()
            .map(|c| c.len())
            .sum();
        let dispatch_lane = ta
            .lanes
            .iter()
            .find(|l| l.name == "dispatch")
            .expect("dispatch lane")
            .id;
        let dispatched = ta.events.iter().filter(|e| e.lane == dispatch_lane).count();
        assert_eq!(dispatched, chunks);
    }

    #[test]
    fn traced_tree_reduction_shows_barrier_waits() {
        let opts = SimOptions::default();
        let tcfg = obs::trace::TraceConfig::default();
        let plain = simulate_reduction(4_000, 25, 4, ReductionStyle::Tree, &opts);
        let (cycles, trace) =
            simulate_reduction_traced(4_000, 25, 4, ReductionStyle::Tree, &opts, &tcfg);
        assert_eq!(cycles, plain, "observer effect");
        assert!(trace
            .events
            .iter()
            .any(|e| e.category == obs::trace::category::BARRIER_WAIT));
        let analysis = obs::trace::analyze::analyze(&trace);
        assert!(analysis.attribution_is_exact());
        assert!(analysis.critical_cycles > 0);
    }

    #[test]
    fn cost_models_evaluate() {
        assert_eq!(CostModel::Uniform(10).cost(1234), 10);
        assert_eq!(CostModel::Linear { base: 5, slope: 2 }.cost(10), 25);
        assert_eq!(CostModel::Alternating { even: 1, odd: 9 }.cost(2), 1);
        assert_eq!(CostModel::Alternating { even: 1, odd: 9 }.cost(3), 9);
        assert_eq!(CostModel::Uniform(10).total(100), 1_000);
        assert_eq!(CostModel::Linear { base: 0, slope: 1 }.total(5), 10);
    }

    #[test]
    fn closed_form_total_matches_summation() {
        let models = [
            CostModel::Uniform(0),
            CostModel::Uniform(7),
            CostModel::Linear { base: 0, slope: 0 },
            CostModel::Linear { base: 5, slope: 3 },
            CostModel::Linear { base: 0, slope: 11 },
            CostModel::Alternating { even: 2, odd: 9 },
            CostModel::Alternating { even: 9, odd: 0 },
        ];
        for m in models {
            for n in [0usize, 1, 2, 3, 10, 101, 1_000] {
                let summed: Cycles = (0..n).map(|i| m.cost(i)).sum();
                assert_eq!(m.total(n), summed, "{m:?} n={n}");
                assert_eq!(m.prefix_cost(n), summed);
            }
        }
    }

    #[test]
    fn chunk_cost_matches_summation() {
        let m = CostModel::Alternating { even: 3, odd: 8 };
        for chunk in [0..0, 0..7, 3..3, 3..10, 101..257] {
            let summed: Cycles = chunk.clone().map(|i| m.cost(i)).sum();
            assert_eq!(m.chunk_cost(&chunk), summed, "{chunk:?}");
        }
    }

    #[test]
    fn rle_lowering_builds_o_chunks_programs() {
        let cost = CostModel::Uniform(250);
        let assignment = plan_assignment(1_000_000, &cost, Schedule::StaticChunk(1_000), 4);
        let programs = lower_programs(&assignment, &cost, 20_000, Lowering::Rle);
        for (p, chunks) in programs.iter().zip(&assignment) {
            // Fork overhead + one RLE block per chunk.
            assert_eq!(p.len(), 1 + chunks.len());
        }
        let total_units: u64 = programs.iter().map(|p| p.unit_len()).sum();
        assert_eq!(total_units, 1_000_000 + 4, "all iterations represented");
    }

    #[test]
    fn rle_and_per_iteration_lowerings_are_bit_identical() {
        let opts = SimOptions::default();
        for cost in [
            CostModel::Uniform(800),
            CostModel::Linear { base: 10, slope: 4 },
            CostModel::Alternating { even: 30, odd: 700 },
        ] {
            for schedule in [
                Schedule::StaticBlock,
                Schedule::StaticChunk(7),
                Schedule::Dynamic(16),
                Schedule::Guided(3),
            ] {
                for threads in [1usize, 3, 4, 6] {
                    let rle = simulate_parallel_loop_lowered(
                        2_003,
                        &cost,
                        schedule,
                        threads,
                        &opts,
                        Lowering::Rle,
                    );
                    let unit = simulate_parallel_loop_lowered(
                        2_003,
                        &cost,
                        schedule,
                        threads,
                        &opts,
                        Lowering::PerIteration,
                    );
                    assert_eq!(
                        rle.cycles, unit.cycles,
                        "{cost:?} {schedule:?} threads={threads}"
                    );
                    assert_eq!(rle.report.threads, unit.report.threads);
                    assert_eq!(rle.iterations_per_thread, unit.iterations_per_thread);
                    assert_eq!(rle.report.context_switches, unit.report.context_switches);
                }
            }
        }
    }

    #[test]
    fn sweep_matches_full_simulation() {
        // A lowered loop fast-forwarded through machine, cost-scale, and
        // fork-overhead scenarios must reproduce the full re-plan
        // simulation cycle for cycle.
        for cost in [
            CostModel::Uniform(800),
            CostModel::Linear { base: 10, slope: 4 },
            CostModel::Alternating { even: 30, odd: 700 },
        ] {
            for schedule in [
                Schedule::StaticBlock,
                Schedule::Dynamic(16),
                Schedule::Guided(3),
            ] {
                let lowered = LoweredLoop::plan(2_003, &cost, schedule, 4);
                let points = [
                    SweepPoint::base(&SimOptions::default()),
                    SweepPoint {
                        machine: MachineConfig {
                            cores: 2,
                            ..MachineConfig::pi()
                        },
                        cost_scale: 1,
                        fork_overhead: 20_000,
                    },
                    SweepPoint {
                        machine: MachineConfig::pi(),
                        cost_scale: 7,
                        fork_overhead: 20_000,
                    },
                    SweepPoint {
                        machine: MachineConfig::pi(),
                        cost_scale: 3,
                        fork_overhead: 500,
                    },
                ];
                for (outcome, point) in lowered.sweep(&points).iter().zip(&points) {
                    let full = simulate_parallel_loop_lowered(
                        2_003,
                        &cost.scaled(point.cost_scale),
                        schedule,
                        4,
                        &SimOptions {
                            machine: point.machine,
                            fork_overhead: point.fork_overhead,
                        },
                        Lowering::Rle,
                    );
                    assert_eq!(
                        outcome.cycles, full.cycles,
                        "{cost:?} {schedule:?} scale={}",
                        point.cost_scale
                    );
                    assert_eq!(outcome.iterations_per_thread, full.iterations_per_thread);
                    assert_eq!(
                        outcome.report.context_switches,
                        full.report.context_switches
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_tables_mirror_chunk_costs() {
        let cost = CostModel::Linear { base: 5, slope: 3 };
        let lowered = LoweredLoop::plan(1_001, &cost, Schedule::Dynamic(25), 4);
        let assignment = plan_assignment(1_001, &cost, Schedule::Dynamic(25), 4);
        for (table, chunks) in lowered.prefix_tables().iter().zip(&assignment) {
            assert_eq!(table.chunks(), chunks.len());
            for (j, chunk) in chunks.iter().enumerate() {
                assert_eq!(table.chunk_cost(j), cost.chunk_cost(chunk));
            }
            let total: Cycles = chunks.iter().map(|c| cost.chunk_cost(c)).sum();
            assert_eq!(table.total(), total);
        }
    }

    #[test]
    fn scaled_cost_model_scales_every_iteration() {
        for cost in [
            CostModel::Uniform(7),
            CostModel::Linear { base: 5, slope: 3 },
            CostModel::Alternating { even: 2, odd: 9 },
        ] {
            let scaled = cost.scaled(6);
            for i in [0usize, 1, 2, 17] {
                assert_eq!(scaled.cost(i), cost.cost(i) * 6, "{cost:?} i={i}");
            }
        }
    }

    #[test]
    fn plan_covers_every_iteration_once() {
        let cost = CostModel::Uniform(100);
        for schedule in [
            Schedule::StaticBlock,
            Schedule::StaticChunk(3),
            Schedule::Dynamic(5),
            Schedule::Guided(2),
        ] {
            let plan = plan_assignment(101, &cost, schedule, 4);
            let mut all: Vec<usize> = plan.iter().flatten().cloned().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..101).collect::<Vec<_>>(), "{schedule:?}");
        }
    }

    #[test]
    fn four_threads_speed_up_a_big_uniform_loop() {
        let cost = CostModel::Uniform(1_000);
        let opts = SimOptions::default();
        let seq = simulate_sequential_loop(10_000, &cost, &opts);
        let par = simulate_parallel_loop(10_000, &cost, Schedule::StaticBlock, 4, &opts);
        let s = speedup(seq as f64, par.cycles as f64);
        assert!(s > 3.5 && s <= 4.01, "speedup = {s}");
    }

    #[test]
    fn five_threads_on_four_cores_no_better_than_four() {
        // The Assignment 5 question: threads beyond the core count help
        // nothing (and cost context switches).
        let cost = CostModel::Uniform(1_000);
        let opts = SimOptions::default();
        let four = simulate_parallel_loop(10_000, &cost, Schedule::StaticBlock, 4, &opts);
        let five = simulate_parallel_loop(10_000, &cost, Schedule::StaticBlock, 5, &opts);
        assert!(
            five.cycles >= four.cycles,
            "5 threads {} vs 4 threads {}",
            five.cycles,
            four.cycles
        );
    }

    #[test]
    fn tiny_loops_lose_to_fork_overhead() {
        // Crossover: parallelising 10 cheap iterations costs more than
        // running them sequentially.
        let cost = CostModel::Uniform(100);
        let opts = SimOptions::default();
        let seq = simulate_sequential_loop(10, &cost, &opts);
        let par = simulate_parallel_loop(10, &cost, Schedule::StaticBlock, 4, &opts);
        assert!(par.cycles > seq, "fork overhead dominates tiny loops");
    }

    #[test]
    fn dynamic_beats_static_on_skewed_work() {
        // Linear (triangular) cost: static block gives the last thread
        // far more work; dynamic chunks rebalance.
        let cost = CostModel::Linear {
            base: 10,
            slope: 10,
        };
        let opts = SimOptions::default();
        let stat = simulate_parallel_loop(4_000, &cost, Schedule::StaticBlock, 4, &opts);
        let dyn_ = simulate_parallel_loop(4_000, &cost, Schedule::Dynamic(16), 4, &opts);
        assert!(
            dyn_.cycles < stat.cycles,
            "dynamic {} vs static {}",
            dyn_.cycles,
            stat.cycles
        );
    }

    #[test]
    fn chunk_size_interacts_with_alternating_costs() {
        // Alternating heavy/light iterations on 2 threads: chunk(1)
        // assigns all even (light) iterations to thread 0 and all odd
        // (heavy) ones to thread 1 — the worst case — while chunk(2)
        // pairs one heavy with one light per chunk and balances. This is
        // the Assignment 3 lesson that the chunk size, not just the
        // policy, determines load balance.
        let cost = CostModel::Alternating {
            even: 10,
            odd: 1_000,
        };
        let opts = SimOptions::default();
        let c1 = simulate_parallel_loop(1_000, &cost, Schedule::StaticChunk(1), 2, &opts);
        let c2 = simulate_parallel_loop(1_000, &cost, Schedule::StaticChunk(2), 2, &opts);
        assert!(
            c2.cycles < c1.cycles,
            "chunk(2) {} should beat chunk(1) {}",
            c2.cycles,
            c1.cycles
        );
        assert_eq!(c1.iterations_per_thread, vec![500, 500]);
        assert_eq!(c2.iterations_per_thread, vec![500, 500]);
    }

    #[test]
    fn imbalance_metric() {
        let cost = CostModel::Uniform(10);
        let plan =
            simulate_parallel_loop(10, &cost, Schedule::StaticBlock, 4, &SimOptions::default());
        // 10 over 4 → 3,3,2,2.
        assert_eq!(plan.imbalance(), 1);
    }

    #[test]
    fn reduction_styles_rank_as_expected() {
        // Serial/tree combine should beat per-iteration atomics, which
        // serialise on the shared accumulator.
        let opts = SimOptions::default();
        let serial = simulate_reduction(20_000, 100, 4, ReductionStyle::SerialCombine, &opts);
        let tree = simulate_reduction(20_000, 100, 4, ReductionStyle::Tree, &opts);
        let atomic = simulate_reduction(20_000, 100, 4, ReductionStyle::AtomicPerIteration, &opts);
        assert!(serial < atomic, "serial {serial} vs atomic {atomic}");
        assert!(tree < atomic, "tree {tree} vs atomic {atomic}");
    }

    #[test]
    fn sequential_zero_iterations_is_cheap() {
        let c = simulate_sequential_loop(0, &CostModel::Uniform(5), &SimOptions::default());
        assert!(c <= 1);
    }

    #[test]
    fn deterministic_outcomes() {
        let cost = CostModel::Linear { base: 3, slope: 7 };
        let opts = SimOptions::default();
        let a = simulate_parallel_loop(999, &cost, Schedule::Guided(2), 4, &opts);
        let b = simulate_parallel_loop(999, &cost, Schedule::Guided(2), 4, &opts);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.iterations_per_thread, b.iterations_per_thread);
    }
}
