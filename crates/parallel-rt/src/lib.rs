//! # parallel-rt — an OpenMP-like shared-memory runtime in safe Rust
//!
//! The course teaches shared-memory parallelism through OpenMP pragmas on
//! a Raspberry Pi. This crate is the Rust equivalent of that runtime: it
//! provides the same constructs the patternlets exercise, with the same
//! semantics students observe:
//!
//! | OpenMP | parallel-rt |
//! |---|---|
//! | `#pragma omp parallel` | [`Team::parallel`] (fork–join) |
//! | `omp_get_thread_num()/num_threads()` | [`ThreadCtx::id`] / [`ThreadCtx::num_threads`] |
//! | `#pragma omp parallel for` | [`Team::parallel_for`] |
//! | `schedule(static/dynamic/guided, chunk)` | [`schedule::Schedule`] |
//! | `reduction(+:x)` | [`Team::parallel_for_reduce`], [`reduction`] |
//! | `#pragma omp barrier` | [`ThreadCtx::barrier`] |
//! | `#pragma omp critical` | [`ThreadCtx::critical`] |
//! | `#pragma omp single` / `master` | [`ThreadCtx::single`] / [`ThreadCtx::if_master`] |
//! | `#pragma omp sections` | [`Team::sections`] |
//! | `OMP_NUM_THREADS` | the `PRT_NUM_THREADS` environment variable |
//! | master–worker pattern | [`master_worker`] |
//!
//! Two backends share the constructs:
//! * **real threads** (`std::thread::scope`) — correct everywhere, but on
//!   a 1-core host it cannot show speedups;
//! * **simulated** ([`sim`]) — lowers loop workloads onto the
//!   deterministic [`pi_sim`] quad-core machine, reproducing the paper's
//!   timing shapes on any host.
//!
//! The data-race pedagogy of Assignment 2 ("scope matters") lives in
//! [`race`]: safe Rust forbids true data races, so the racy OpenMP
//! program is emulated with a non-atomic read–modify–write sequence that
//! loses updates exactly the way the students' `count++` does.
//! [`explore`] goes further: it models the patternlet family under a
//! controlled scheduler and *searches* the interleaving space — finding
//! the race deterministically, shrinking the counterexample to a
//! minimal schedule, and certifying each fix race-free over the
//! explored space.
//!
//! ```
//! use parallel_rt::{Team, Schedule};
//! use parallel_rt::reduction::Sum;
//!
//! // #pragma omp parallel for reduction(+:total) schedule(dynamic, 8)
//! let team = Team::new(4);
//! let total: u64 =
//!     team.parallel_for_reduce(0..10_000, Schedule::Dynamic(8), Sum, |i| i as u64);
//! assert_eq!(total, 49_995_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod barrier;
pub mod data_env;
pub mod explore;
pub mod forloop;
pub mod master_worker;
pub mod race;
pub mod reduction;
pub mod schedule;
pub mod sim;
pub mod sync;
pub mod team;

pub use master_worker::master_worker;
pub use schedule::Schedule;
pub use sim::{plan_assignment, CostModel};
pub use team::{Team, ThreadCtx};
