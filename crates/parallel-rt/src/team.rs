//! Fork–join parallel regions and the per-thread execution context:
//! the `#pragma omp parallel` of this runtime.
//!
//! [`ThreadCtx::critical`]'s named-lock semantics are modeled in the
//! schedule-space explorer by [`crate::explore::program::Op::Lock`] /
//! [`Op::Unlock`](crate::explore::program::Op::Unlock): the explorer's
//! controlled scheduler never steps a lane into a held lock, and the
//! happens-before detector transfers the releaser's vector clock to
//! the next acquirer — which is why the `critical` fix certifies
//! race-free over the whole explored space ([`crate::explore`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::barrier::{SenseBarrier, TeamBarrier};
use crate::forloop;
use crate::reduction::Reduction;
use crate::schedule::Schedule;

/// Environment variable controlling the default team size, analogous to
/// `OMP_NUM_THREADS`.
pub const NUM_THREADS_ENV: &str = "PRT_NUM_THREADS";

/// A team of worker threads executing parallel constructs fork–join
/// style. Creating a `Team` is cheap; threads are spawned per region
/// (scoped), exactly like the fork–join diagrams in the course material.
#[derive(Debug, Clone)]
pub struct Team {
    num_threads: usize,
}

/// Shared state for one parallel region.
struct RegionShared {
    barrier: SenseBarrier,
    /// Named critical-section locks, created on demand.
    criticals: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// Arrival counts per `single` episode: the n-th `single` construct
    /// a thread encounters pairs with the n-th of every other thread,
    /// and the first arrival executes it.
    single_arrivals: Mutex<HashMap<usize, usize>>,
}

/// The per-thread view inside a parallel region: thread id, team size,
/// and the synchronisation constructs.
pub struct ThreadCtx<'r> {
    id: usize,
    num_threads: usize,
    shared: &'r RegionShared,
    /// Count of `single` constructs this thread has encountered, used to
    /// pair encounters across threads.
    singles_seen: std::cell::Cell<usize>,
}

impl Team {
    /// A team of exactly `num_threads` threads.
    ///
    /// # Panics
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "team needs at least one thread");
        Team { num_threads }
    }

    /// Team size from `PRT_NUM_THREADS`, falling back to the host's
    /// available parallelism (the `OMP_NUM_THREADS` behaviour the
    /// patternlets use "using the commandline to control the number of
    /// threads").
    pub fn from_env() -> Self {
        let n = std::env::var(NUM_THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Team::new(n)
    }

    /// Number of threads forked per region.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `body` on every team thread (fork), returning when all have
    /// finished (join) — `#pragma omp parallel`.
    ///
    /// Results are collected in thread-id order, so reductions over the
    /// return values are deterministic.
    pub fn parallel<R, F>(&self, body: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&ThreadCtx<'_>) -> R + Sync,
    {
        let shared = RegionShared {
            barrier: SenseBarrier::new(self.num_threads),
            criticals: Mutex::new(HashMap::new()),
            single_arrivals: Mutex::new(HashMap::new()),
        };
        let n = self.num_threads;
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for id in 0..n {
                let shared = &shared;
                let body = &body;
                handles.push(scope.spawn(move || {
                    let ctx = ThreadCtx {
                        id,
                        num_threads: n,
                        shared,
                        singles_seen: std::cell::Cell::new(0),
                    };
                    body(&ctx)
                }));
            }
            for (slot, handle) in results.iter_mut().zip(handles) {
                *slot = Some(handle.join().expect("team thread panicked"));
            }
        });
        results.into_iter().map(|r| r.expect("joined")).collect()
    }

    /// `#pragma omp parallel for schedule(...)`: applies `body` to every
    /// index in `range` under the scheduling policy.
    pub fn parallel_for<F>(&self, range: std::ops::Range<usize>, schedule: Schedule, body: F)
    where
        F: Fn(usize) + Sync,
    {
        forloop::parallel_for(self, range, schedule, body);
    }

    /// `#pragma omp parallel for reduction(op:acc)`: maps each index and
    /// folds the per-thread partials with the reduction in thread-id
    /// order.
    pub fn parallel_for_reduce<T, M, Red>(
        &self,
        range: std::ops::Range<usize>,
        schedule: Schedule,
        reduction: Red,
        map: M,
    ) -> T
    where
        T: Send + Clone,
        M: Fn(usize) -> T + Sync,
        Red: Reduction<T> + Sync,
    {
        forloop::parallel_for_reduce(self, range, schedule, reduction, map)
    }

    /// `#pragma omp sections`: distributes heterogeneous section bodies
    /// over the team, each executed exactly once.
    pub fn sections<'a>(&self, sections: Vec<Box<dyn Fn() + Send + Sync + 'a>>) {
        let next = AtomicUsize::new(0);
        let sections = &sections;
        let next = &next;
        self.parallel(|_ctx| loop {
            let idx = next.fetch_add(1, Ordering::Relaxed);
            match sections.get(idx) {
                Some(f) => f(),
                None => break,
            }
        });
    }
}

impl Default for Team {
    fn default() -> Self {
        Team::from_env()
    }
}

impl<'r> ThreadCtx<'r> {
    /// This thread's id within the team, `0..num_threads` —
    /// `omp_get_thread_num()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Team size — `omp_get_num_threads()`.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// True for thread 0 — the `master` construct's condition.
    pub fn is_master(&self) -> bool {
        self.id == 0
    }

    /// Runs `f` only on the master thread — `#pragma omp master`
    /// (no implied barrier, exactly like OpenMP).
    pub fn if_master<F: FnOnce()>(&self, f: F) {
        if self.is_master() {
            f();
        }
    }

    /// Blocks until the whole team reaches this point —
    /// `#pragma omp barrier`. Returns true on the last thread to arrive.
    pub fn barrier(&self) -> bool {
        self.shared.barrier.wait()
    }

    /// Runs `f` under the named mutual-exclusion lock —
    /// `#pragma omp critical(name)`.
    pub fn critical<R, F: FnOnce() -> R>(&self, name: &str, f: F) -> R {
        let lock = {
            let mut map = self.shared.criticals.lock();
            Arc::clone(
                map.entry(name.to_string())
                    .or_insert_with(|| Arc::new(Mutex::new(()))),
            )
        };
        let _guard = lock.lock();
        f()
    }

    /// Executes `f` on exactly one (the first-arriving) thread —
    /// `#pragma omp single nowait`. Returns `Some(result)` on the thread
    /// that executed it, `None` elsewhere. Combine with [`Self::barrier`]
    /// for the default (blocking) `single` semantics.
    pub fn single<R, F: FnOnce() -> R>(&self, f: F) -> Option<R> {
        let episode = self.singles_seen.get();
        self.singles_seen.set(episode + 1);
        let won = {
            let mut map = self.shared.single_arrivals.lock();
            let count = map.entry(episode).or_insert(0);
            *count += 1;
            *count == 1
        };
        if won {
            Some(f())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_join_runs_every_thread_once() {
        let team = Team::new(4);
        let ids = team.parallel(|ctx| {
            assert_eq!(ctx.num_threads(), 4);
            ctx.id()
        });
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn master_is_thread_zero() {
        let team = Team::new(3);
        let masters = team.parallel(|ctx| ctx.is_master());
        assert_eq!(masters, vec![true, false, false]);
    }

    #[test]
    fn if_master_runs_once() {
        let team = Team::new(4);
        let count = AtomicUsize::new(0);
        team.parallel(|ctx| {
            ctx.if_master(|| {
                count.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn barrier_orders_phases() {
        // Phase 1 writes must all precede phase 2 reads.
        let team = Team::new(4);
        let written = Mutex::new(vec![false; 4]);
        let seen = team.parallel(|ctx| {
            written.lock()[ctx.id()] = true;
            ctx.barrier();
            written.lock().iter().filter(|&&b| b).count()
        });
        assert!(seen.iter().all(|&c| c == 4), "{seen:?}");
    }

    #[test]
    fn critical_sections_exclude() {
        // A read-modify-write on a plain value under critical never
        // loses updates.
        let team = Team::new(4);
        let counter = Mutex::new(0u64);
        team.parallel(|ctx| {
            for _ in 0..1000 {
                ctx.critical("count", || {
                    let mut c = counter.lock();
                    *c += 1;
                });
            }
        });
        assert_eq!(*counter.lock(), 4000);
    }

    #[test]
    fn distinct_critical_names_do_not_exclude_each_other() {
        // Just checks both names work and the region completes.
        let team = Team::new(2);
        let hits = AtomicUsize::new(0);
        team.parallel(|ctx| {
            let name = if ctx.id() == 0 { "a" } else { "b" };
            ctx.critical(name, || hits.fetch_add(1, Ordering::Relaxed));
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn single_executes_exactly_once() {
        let team = Team::new(4);
        let count = AtomicUsize::new(0);
        let winners = team.parallel(|ctx| {
            let r = ctx.single(|| count.fetch_add(1, Ordering::Relaxed));
            ctx.barrier();
            r.is_some()
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
        assert_eq!(winners.iter().filter(|&&w| w).count(), 1);
    }

    #[test]
    fn consecutive_singles_each_execute_once() {
        let team = Team::new(3);
        let count = AtomicUsize::new(0);
        team.parallel(|ctx| {
            for _ in 0..5 {
                ctx.single(|| count.fetch_add(1, Ordering::Relaxed));
                ctx.barrier();
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn sections_each_run_once() {
        let counts: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        let team = Team::new(3);
        let sections: Vec<Box<dyn Fn() + Send + Sync>> = (0..5)
            .map(|i| {
                let counts = &counts;
                Box::new(move || {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn Fn() + Send + Sync>
            })
            .collect();
        team.sections(sections);
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn team_of_one_works() {
        let team = Team::new(1);
        let r = team.parallel(|ctx| {
            ctx.barrier();
            ctx.critical("x", || 7)
        });
        assert_eq!(r, vec![7]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = Team::new(0);
    }

    #[test]
    fn from_env_parses_variable() {
        // Avoid races with other tests reading env: use a scoped guard.
        std::env::set_var(NUM_THREADS_ENV, "3");
        assert_eq!(Team::from_env().num_threads(), 3);
        std::env::set_var(NUM_THREADS_ENV, "not-a-number");
        assert!(Team::from_env().num_threads() >= 1);
        std::env::remove_var(NUM_THREADS_ENV);
    }
}
