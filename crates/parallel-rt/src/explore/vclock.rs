//! Vector clocks and the happens-before race detector.
//!
//! Each lane carries a [`VClock`]; synchronisation operations (lock
//! release→acquire, barriers, atomics on the same variable) transfer
//! clocks, plain accesses do not. Two accesses to the same variable
//! *race* when at least one is a plain write and neither happens
//! before the other — the textbook definition, checked online while
//! the VM executes, so a single explored schedule can expose a race
//! even when that particular interleaving happened not to lose an
//! update ("the program is correct under most interleavings, so tests
//! usually pass").

use obs::trace::fnv1a;

use super::program::{AccessKind, VarId};

/// A vector clock over the program's lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock for `lanes` lanes.
    pub fn new(lanes: usize) -> Self {
        VClock(vec![0; lanes])
    }

    /// Advances `lane`'s own component (one per executed operation).
    pub fn tick(&mut self, lane: usize) {
        self.0[lane] += 1;
    }

    /// Pointwise maximum with `other` (clock join at a sync edge).
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// True when `self` happens before or equals `other` (pointwise ≤).
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// One component, for reports.
    pub fn get(&self, lane: usize) -> u64 {
        self.0[lane]
    }
}

/// One half of a racing pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The lane that performed the access.
    pub lane: usize,
    /// Global step index at which it executed.
    pub step: usize,
    /// Read, write or atomic.
    pub kind: AccessKind,
}

/// A detected race: two unordered conflicting accesses to one shared
/// variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The shared variable both sides touched.
    pub var: VarId,
    /// The earlier access (by global step).
    pub first: Access,
    /// The later access — the one whose execution exposed the race.
    pub second: Access,
}

impl RaceReport {
    /// Schedule-independent identity of the race: variable, lane pair
    /// and access kinds, but *not* step indices. Two schedules that
    /// expose "lane 1's plain write to v0 unordered with lane 0's
    /// plain read" share this signature, which is what counterexample
    /// shrinking preserves.
    pub fn signature(&self) -> u64 {
        fnv1a(
            format!(
                "race v{} {}:{:?} {}:{:?}",
                self.var, self.first.lane, self.first.kind, self.second.lane, self.second.kind
            )
            .as_bytes(),
        )
    }

    /// Schedule-specific fingerprint: the signature plus the exact
    /// step indices of both sides.
    pub fn digest(&self) -> u64 {
        fnv1a(
            format!(
                "{:016x}@{}+{}",
                self.signature(),
                self.first.step,
                self.second.step
            )
            .as_bytes(),
        )
    }

    /// Human rendering for reports and step summaries.
    pub fn render(&self) -> String {
        format!(
            "v{}: lane {} {:?} (step {}) unordered with lane {} {:?} (step {})",
            self.var,
            self.first.lane,
            self.first.kind,
            self.first.step,
            self.second.lane,
            self.second.kind,
            self.second.step
        )
    }
}

/// Per-variable detector state.
#[derive(Debug, Clone)]
struct VarState {
    /// Last plain write (access + the writer's clock at that point).
    last_write: Option<(Access, VClock)>,
    /// Plain reads since the last plain write, newest per lane.
    reads: Vec<(Access, VClock)>,
    /// Clock released by the last atomic on this variable (atomics on
    /// one variable synchronise with each other, like a tiny lock).
    sync: VClock,
}

/// Online happens-before race detector over one VM execution.
#[derive(Debug, Clone)]
pub struct Detector {
    lanes: usize,
    clocks: Vec<VClock>,
    vars: Vec<VarState>,
    locks: Vec<VClock>,
    races: Vec<RaceReport>,
}

impl Detector {
    /// A detector for `lanes` lanes, `num_vars` variables and
    /// `num_locks` locks, all clocks at zero.
    pub fn new(lanes: usize, num_vars: usize, num_locks: usize) -> Self {
        Detector {
            lanes,
            clocks: vec![VClock::new(lanes); lanes],
            vars: vec![
                VarState {
                    last_write: None,
                    reads: Vec::new(),
                    sync: VClock::new(lanes),
                };
                num_vars
            ],
            locks: vec![VClock::new(lanes); num_locks],
            races: Vec::new(),
        }
    }

    /// Races reported so far, in detection order.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// `lane`'s current clock.
    pub fn clock(&self, lane: usize) -> &VClock {
        &self.clocks[lane]
    }

    fn report(&mut self, var: VarId, first: Access, second: Access) {
        // Order the pair by step so reports read chronologically.
        let (first, second) = if first.step <= second.step {
            (first, second)
        } else {
            (second, first)
        };
        self.races.push(RaceReport { var, first, second });
    }

    /// A plain read of `var` by `lane` at global `step`.
    pub fn on_read(&mut self, lane: usize, var: VarId, step: usize) -> Option<RaceReport> {
        self.clocks[lane].tick(lane);
        let me = Access {
            lane,
            step,
            kind: AccessKind::Read,
        };
        let mut raced = None;
        if let Some((w, wc)) = &self.vars[var].last_write {
            if w.lane != lane && !wc.le(&self.clocks[lane]) {
                raced = Some((*w, me));
            }
        }
        if let Some((w, m)) = raced {
            self.report(var, w, m);
        }
        let clock = self.clocks[lane].clone();
        let state = &mut self.vars[var];
        state.reads.retain(|(a, _)| a.lane != lane);
        state.reads.push((me, clock));
        self.races.last().filter(|_| raced.is_some()).cloned()
    }

    /// A plain write of `var` by `lane` at global `step`.
    pub fn on_write(&mut self, lane: usize, var: VarId, step: usize) -> Option<RaceReport> {
        self.clocks[lane].tick(lane);
        let me = Access {
            lane,
            step,
            kind: AccessKind::Write,
        };
        let mut conflicts = Vec::new();
        if let Some((w, wc)) = &self.vars[var].last_write {
            if w.lane != lane && !wc.le(&self.clocks[lane]) {
                conflicts.push(*w);
            }
        }
        for (r, rc) in &self.vars[var].reads {
            if r.lane != lane && !rc.le(&self.clocks[lane]) {
                conflicts.push(*r);
            }
        }
        let had = !conflicts.is_empty();
        for other in conflicts {
            self.report(var, other, me);
        }
        let clock = self.clocks[lane].clone();
        let state = &mut self.vars[var];
        state.last_write = Some((me, clock));
        state.reads.clear();
        self.races.last().filter(|_| had).cloned()
    }

    /// An atomic read-modify-write of `var`: synchronises with every
    /// earlier atomic on the same variable (acquire its sync clock,
    /// release the joined clock back). Atomics never race with each
    /// other; mixed atomic/plain use of one variable is outside the
    /// patternlet family and is not flagged.
    pub fn on_atomic(&mut self, lane: usize, var: VarId) {
        self.clocks[lane].tick(lane);
        let sync = self.vars[var].sync.clone();
        self.clocks[lane].join(&sync);
        self.vars[var].sync = self.clocks[lane].clone();
    }

    /// Lock acquisition: join the clock the last release left behind.
    pub fn on_acquire(&mut self, lane: usize, lock: usize) {
        self.clocks[lane].tick(lane);
        let held = self.locks[lock].clone();
        self.clocks[lane].join(&held);
    }

    /// Lock release: publish the holder's clock into the lock.
    pub fn on_release(&mut self, lane: usize, lock: usize) {
        self.clocks[lane].tick(lane);
        self.locks[lock] = self.clocks[lane].clone();
    }

    /// A lane arriving at the barrier (its own step; ticks its clock).
    pub fn on_barrier_arrive(&mut self, lane: usize) {
        self.clocks[lane].tick(lane);
    }

    /// Barrier release: every lane's clock becomes the join of all
    /// (a barrier is a full synchronisation point).
    pub fn on_barrier(&mut self) {
        let mut joined = VClock::new(self.lanes);
        for c in &self.clocks {
            joined.join(c);
        }
        for c in &mut self.clocks {
            *c = joined.clone();
        }
    }

    /// Distinct race signatures seen, sorted.
    pub fn distinct_signatures(&self) -> Vec<u64> {
        let mut sigs: Vec<u64> = self.races.iter().map(RaceReport::signature).collect();
        sigs.sort_unstable();
        sigs.dedup();
        sigs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_join_and_order() {
        let mut a = VClock::new(2);
        let mut b = VClock::new(2);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b) && !b.le(&a), "concurrent");
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j) && b.le(&j));
        assert_eq!(j.get(0), 1);
        assert_eq!(j.get(1), 1);
    }

    #[test]
    fn unsynchronised_write_read_races() {
        let mut d = Detector::new(2, 1, 0);
        assert!(d.on_write(0, 0, 0).is_none(), "first access cannot race");
        let race = d.on_read(1, 0, 1).expect("unordered read after write");
        assert_eq!(race.var, 0);
        assert_eq!(race.first.lane, 0);
        assert_eq!(race.second.kind, AccessKind::Read);
    }

    #[test]
    fn lock_transfer_orders_accesses() {
        // lane 0: lock, write, unlock; lane 1: lock, read, unlock —
        // serialised by the lock, so no race.
        let mut d = Detector::new(2, 1, 1);
        d.on_acquire(0, 0);
        assert!(d.on_write(0, 0, 1).is_none());
        d.on_release(0, 0);
        d.on_acquire(1, 0);
        assert!(
            d.on_read(1, 0, 4).is_none(),
            "release→acquire edge orders it"
        );
        d.on_release(1, 0);
        assert!(d.races().is_empty());
    }

    #[test]
    fn atomics_synchronise_with_each_other() {
        let mut d = Detector::new(2, 1, 0);
        d.on_atomic(0, 0);
        d.on_atomic(1, 0);
        assert!(d.races().is_empty());
        // And they order a later plain read after an earlier plain
        // write only if the plain accesses themselves are ordered —
        // atomics on a different variable do not help.
        let mut d2 = Detector::new(2, 2, 0);
        d2.on_write(0, 0, 0);
        d2.on_atomic(0, 1);
        d2.on_atomic(1, 1);
        assert!(
            d2.on_read(1, 0, 3).is_none(),
            "write v0 → atomic v1 release → acquire → read v0 is ordered"
        );
    }

    #[test]
    fn barrier_orders_everything_before_it() {
        let mut d = Detector::new(2, 1, 0);
        d.on_write(0, 0, 0);
        d.on_barrier_arrive(0);
        d.on_barrier_arrive(1);
        d.on_barrier();
        assert!(d.on_read(1, 0, 2).is_none(), "barrier is a full sync point");
        assert!(d.races().is_empty());
    }

    #[test]
    fn signature_ignores_steps_but_digest_keeps_them() {
        let a = RaceReport {
            var: 0,
            first: Access {
                lane: 0,
                step: 3,
                kind: AccessKind::Write,
            },
            second: Access {
                lane: 1,
                step: 9,
                kind: AccessKind::Read,
            },
        };
        let b = RaceReport {
            first: Access { step: 5, ..a.first },
            second: Access {
                step: 11,
                ..a.second
            },
            ..a.clone()
        };
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.digest(), b.digest());
        assert!(a.render().contains("v0"));
    }

    #[test]
    fn write_write_and_read_write_conflicts_are_reported() {
        let mut d = Detector::new(2, 1, 0);
        d.on_write(0, 0, 0);
        d.on_write(1, 0, 1);
        assert_eq!(d.races().len(), 1);
        assert!(d.races()[0].second.kind.is_write_like());
        // A read recorded on lane 0, then an unordered write by lane 1
        // (read-write race, on top of the earlier write-write).
        let mut d2 = Detector::new(2, 1, 0);
        d2.on_read(0, 0, 0);
        d2.on_write(1, 0, 1);
        assert_eq!(d2.races().len(), 1);
        assert_eq!(d2.races()[0].first.kind, AccessKind::Read);
        assert_eq!(d2.distinct_signatures().len(), 1);
    }
}
