//! Schedule-space search: seeded random fuzzing and a DPOR-style
//! systematic mode.
//!
//! * [`fuzz`] samples `budget` random schedules, one per split seed
//!   (`stats::rng::StreamSeeder`, the same collision-free seed
//!   discipline the replication engine uses), so run *i* is
//!   reproducible from `(master_seed, i)` alone.
//! * [`systematic`] walks the whole bounded schedule space depth-first
//!   with **sleep sets**: after exploring lane `l` from a state, `l`
//!   sleeps for the remaining siblings and stays asleep down other
//!   branches until a *dependent* operation executes — pruning
//!   interleavings that merely commute independent steps
//!   (Mazurkiewicz-equivalent schedules) while still visiting every
//!   behaviourally distinct one.
//!
//! Either search certifies a program **race-free over the explored
//! space** (no race reports, no wrong outcomes) or produces a
//! [`Counterexample`] replayable from its seed / choice string.

use std::collections::BTreeSet;

use stats::rng::StreamSeeder;

use super::program::{dependent, Program};
use super::vm::{run_random, Execution, Vm};

/// How much schedule space a search may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum complete schedules to execute.
    pub schedules: usize,
}

impl Budget {
    /// A budget of `schedules` complete executions.
    pub fn schedules(schedules: usize) -> Self {
        Budget { schedules }
    }
}

/// A schedule that exposed a bug, replayable bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The split seed that produced it (`None` for systematic finds).
    pub seed: Option<u64>,
    /// The recorded choice string (index into the enabled set per
    /// decision) — the canonical name of the schedule.
    pub choices: Vec<usize>,
    /// Signature of the race it exposes (0 when it is a pure
    /// lost-update counterexample with no race report).
    pub race_signature: u64,
    /// Rendered description of the first race, for reports.
    pub race: String,
    /// Observed / expected values of the run.
    pub observed: u64,
    /// The value a correct run must observe.
    pub expected: u64,
    /// Steps in the schedule.
    pub steps: usize,
    /// Trace digest of the (traced) replay of `choices`.
    pub trace_digest: u64,
}

impl Counterexample {
    fn from_execution(seed: Option<u64>, exec: &Execution) -> Self {
        Counterexample {
            seed,
            choices: exec.choices.clone(),
            race_signature: exec.races.first().map_or(0, |r| r.signature()),
            race: exec.races.first().map_or_else(
                || "lost updates without a race report".into(),
                |r| r.render(),
            ),
            observed: exec.observed,
            expected: exec.expected,
            steps: exec.steps,
            trace_digest: exec.trace_digest.unwrap_or(0),
        }
    }
}

/// What one search (random or systematic) established about a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyReport {
    /// The program searched.
    pub program: String,
    /// Complete schedules executed.
    pub schedules: usize,
    /// Schedules that reported at least one race.
    pub race_runs: usize,
    /// Schedules whose observed value was wrong.
    pub lost_update_runs: usize,
    /// Sorted distinct race signatures across all runs.
    pub distinct_races: Vec<u64>,
    /// The first buggy schedule found, if any.
    pub counterexample: Option<Counterexample>,
    /// True when the systematic walk visited the *entire* (pruned)
    /// space within budget; always false for random fuzzing, which
    /// samples.
    pub space_exhausted: bool,
}

impl StrategyReport {
    /// Race-free and correct over everything explored. When
    /// [`Self::space_exhausted`] also holds, this is a proof over the
    /// program's full schedule space, not just a sample.
    pub fn certified(&self) -> bool {
        self.race_runs == 0 && self.lost_update_runs == 0
    }

    fn absorb(&mut self, seed: Option<u64>, exec: &Execution) {
        self.schedules += 1;
        if !exec.races.is_empty() {
            self.race_runs += 1;
        }
        if !exec.is_correct() {
            self.lost_update_runs += 1;
        }
        for sig in exec.race_signatures() {
            if let Err(at) = self.distinct_races.binary_search(&sig) {
                self.distinct_races.insert(at, sig);
            }
        }
        if self.counterexample.is_none() && (!exec.races.is_empty() || !exec.is_correct()) {
            self.counterexample = Some(Counterexample::from_execution(seed, exec));
        }
    }
}

/// Random interleaving search: `budget.schedules` runs, schedule *i*
/// seeded by `StreamSeeder::new(master_seed).split_seed(i)`.
pub fn fuzz(program: &Program, master_seed: u64, budget: Budget) -> StrategyReport {
    let seeder = StreamSeeder::new(master_seed);
    let mut report = StrategyReport {
        program: program.name.clone(),
        schedules: 0,
        race_runs: 0,
        lost_update_runs: 0,
        distinct_races: Vec::new(),
        counterexample: None,
        space_exhausted: false,
    };
    for i in 0..budget.schedules {
        let seed = seeder.split_seed(i as u64);
        let exec = run_random(program, seed);
        report.absorb(Some(seed), &exec);
    }
    report
}

/// Systematic sleep-set DFS over the bounded schedule space. Leaves
/// (complete schedules) count against `budget.schedules`; when the
/// walk finishes within budget, `space_exhausted` is set and a
/// [`StrategyReport::certified`] verdict covers the whole space.
pub fn systematic(program: &Program, budget: Budget) -> StrategyReport {
    let mut report = StrategyReport {
        program: program.name.clone(),
        schedules: 0,
        race_runs: 0,
        lost_update_runs: 0,
        distinct_races: Vec::new(),
        counterexample: None,
        space_exhausted: true,
    };
    let vm = Vm::new(program, false);
    dfs(&vm, BTreeSet::new(), &mut report, budget.schedules);
    report
}

fn dfs(vm: &Vm<'_>, sleep: BTreeSet<usize>, report: &mut StrategyReport, budget: usize) {
    if report.schedules >= budget {
        report.space_exhausted = false;
        return;
    }
    let enabled = vm.enabled();
    if enabled.is_empty() {
        let (exec, _) = vm.fork().finish();
        if !exec.races.is_empty() || !exec.is_correct() {
            // The walk runs traceless for speed; replay interesting
            // leaves traced so a counterexample carries its digest.
            let traced = super::vm::replay(vm.program(), &exec.choices);
            report.absorb(None, &traced);
        } else {
            report.absorb(None, &exec);
        }
        return;
    }
    let mut sleeping = sleep;
    for &lane in &enabled {
        if report.schedules >= budget {
            report.space_exhausted = false;
            return;
        }
        if sleeping.contains(&lane) {
            continue;
        }
        let executed = *vm.next_op(lane).expect("enabled lane has a next op");
        // The child inherits every sleeper whose pending op is
        // independent of the executed one (it still commutes).
        let child_sleep: BTreeSet<usize> = sleeping
            .iter()
            .copied()
            .filter(|&q| vm.next_op(q).is_some_and(|qop| !dependent(qop, &executed)))
            .collect();
        let mut child = vm.fork();
        let idx = enabled.iter().position(|&l| l == lane).expect("member");
        child.step_choice(idx);
        dfs(&child, child_sleep, report, budget);
        sleeping.insert(lane);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::program::{Finalize, Op};

    fn racy(threads: usize, increments: usize) -> Program {
        let body: Vec<Op> = (0..increments)
            .flat_map(|_| [Op::Load(0), Op::AddImm(1), Op::Store(0)])
            .collect();
        Program {
            name: "race/none".into(),
            lanes: vec![body; threads],
            num_vars: 1,
            num_locks: 0,
            finalize: Finalize::Var(0),
            expected: (threads * increments) as u64,
        }
    }

    fn atomic(threads: usize, increments: usize) -> Program {
        Program {
            name: "race/atomic".into(),
            lanes: vec![vec![Op::FetchAdd(0, 1); increments]; threads],
            num_vars: 1,
            num_locks: 0,
            finalize: Finalize::Var(0),
            expected: (threads * increments) as u64,
        }
    }

    #[test]
    fn fuzz_finds_the_race_and_is_reproducible() {
        let p = racy(2, 2);
        let a = fuzz(&p, 0xC0FFEE, Budget::schedules(32));
        assert_eq!(a.schedules, 32);
        assert!(a.race_runs > 0, "every schedule of the racy program races");
        assert!(!a.certified());
        let cex = a.counterexample.as_ref().expect("counterexample");
        assert!(cex.seed.is_some());
        assert_ne!(cex.race_signature, 0);
        // Bit-identical across repeated searches.
        let b = fuzz(&p, 0xC0FFEE, Budget::schedules(32));
        assert_eq!(a, b);
        // Replaying the counterexample reproduces its digest.
        let replayed = super::super::vm::replay(&p, &cex.choices);
        assert_eq!(replayed.trace_digest, Some(cex.trace_digest));
        assert!(replayed.has_race_signature(cex.race_signature));
    }

    #[test]
    fn fuzz_certifies_the_atomic_fix() {
        let r = fuzz(&atomic(3, 2), 7, Budget::schedules(64));
        assert!(r.certified());
        assert!(r.counterexample.is_none());
        assert!(r.distinct_races.is_empty());
        assert!(!r.space_exhausted, "sampling proves nothing exhaustive");
    }

    #[test]
    fn systematic_exhausts_small_spaces_and_finds_races() {
        let p = racy(2, 1);
        let r = systematic(&p, Budget::schedules(10_000));
        assert!(r.space_exhausted, "2x3 ops is a tiny space");
        assert!(r.race_runs > 0);
        assert!(r.lost_update_runs > 0, "some interleaving loses an update");
        let cex = r.counterexample.expect("found one");
        assert!(cex.seed.is_none(), "systematic finds carry choices only");
        let replayed = super::super::vm::replay(&p, &cex.choices);
        assert_eq!(replayed.trace_digest, Some(cex.trace_digest));
    }

    #[test]
    fn systematic_proves_the_atomic_fix_over_the_whole_space() {
        let r = systematic(&atomic(2, 2), Budget::schedules(10_000));
        assert!(r.space_exhausted);
        assert!(
            r.certified(),
            "no schedule of the atomic program misbehaves"
        );
    }

    #[test]
    fn sleep_sets_prune_but_do_not_miss_behaviours() {
        // Independent lanes (disjoint vars): 1 Mazurkiewicz trace.
        let p = Program {
            name: "indep".into(),
            lanes: vec![vec![Op::Store(0)], vec![Op::Store(1)]],
            num_vars: 2,
            num_locks: 0,
            finalize: Finalize::Var(0),
            expected: 0,
        };
        let r = systematic(&p, Budget::schedules(100));
        assert!(r.space_exhausted);
        assert_eq!(r.schedules, 1, "both orders commute; one schedule suffices");
        // Dependent lanes (same var): both orders explored.
        let q = Program {
            name: "dep".into(),
            lanes: vec![vec![Op::Store(0)], vec![Op::Store(0)]],
            num_vars: 1,
            num_locks: 0,
            finalize: Finalize::Var(0),
            expected: 0,
        };
        let r = systematic(&q, Budget::schedules(100));
        assert!(r.space_exhausted);
        assert_eq!(r.schedules, 2, "conflicting stores do not commute");
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let p = racy(3, 2);
        let r = systematic(&p, Budget::schedules(5));
        assert!(!r.space_exhausted);
        assert!(r.schedules <= 5);
    }
}
