//! The modeled-program language the explorer schedules.
//!
//! A [`Program`] is a set of straight-line per-lane operation lists
//! over shared variables, locks and barriers — the smallest language
//! that can express every synchronisation shape of the Assignment-2
//! patternlet family (racy split increment, critical section, atomic
//! add, per-lane reduction). Modeling the program instead of running
//! real threads is what makes the schedule space *enumerable*: every
//! operation is one scheduler step, so an interleaving is exactly a
//! sequence of lane choices and nothing the host OS does can perturb
//! it.

use crate::reduction::{Reduction, Sum};

/// Index of a shared variable (`0..Program::num_vars`).
pub type VarId = usize;

/// Index of a lock (`0..Program::num_locks`).
pub type LockId = usize;

/// How an operation touches a shared variable — the classification the
/// happens-before race detector works over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// A plain (unsynchronised) load.
    Read,
    /// A plain (unsynchronised) store.
    Write,
    /// A synchronising read-modify-write (`#pragma omp atomic`).
    Atomic,
}

impl AccessKind {
    /// True for accesses that conflict with any other access to the
    /// same variable (writes and atomics; two reads never conflict).
    pub fn is_write_like(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Atomic)
    }
}

/// One scheduler step of a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load a shared variable into the lane's accumulator (plain read).
    Load(VarId),
    /// Add an immediate to the accumulator (purely lane-local).
    AddImm(u64),
    /// Store the accumulator to a shared variable (plain write).
    Store(VarId),
    /// Atomically add an immediate to a shared variable.
    FetchAdd(VarId, u64),
    /// Acquire a lock (blocks while another lane holds it).
    Lock(LockId),
    /// Release a lock the lane holds.
    Unlock(LockId),
    /// Arrive at the team barrier; blocks until every lane arrives.
    Barrier,
}

impl Op {
    /// The shared-variable access this op performs, if any.
    pub fn access(&self) -> Option<(VarId, AccessKind)> {
        match *self {
            Op::Load(v) => Some((v, AccessKind::Read)),
            Op::Store(v) => Some((v, AccessKind::Write)),
            Op::FetchAdd(v, _) => Some((v, AccessKind::Atomic)),
            _ => None,
        }
    }

    /// The lock this op acquires or releases, if any.
    pub fn lock_id(&self) -> Option<LockId> {
        match *self {
            Op::Lock(l) | Op::Unlock(l) => Some(l),
            _ => None,
        }
    }

    /// Short assembly-style rendering used for trace event names.
    pub fn mnemonic(&self) -> String {
        match *self {
            Op::Load(v) => format!("load v{v}"),
            Op::AddImm(k) => format!("add #{k}"),
            Op::Store(v) => format!("store v{v}"),
            Op::FetchAdd(v, k) => format!("xadd v{v} #{k}"),
            Op::Lock(l) => format!("lock l{l}"),
            Op::Unlock(l) => format!("unlock l{l}"),
            Op::Barrier => "barrier".to_string(),
        }
    }
}

/// Whether two operations *dependent* — executing them in either order
/// can lead to different states or different happens-before edges, so
/// the systematic search must explore both orders. Independent pairs
/// commute and one order suffices (the sleep-set pruning rule).
pub fn dependent(a: &Op, b: &Op) -> bool {
    if matches!(a, Op::Barrier) || matches!(b, Op::Barrier) {
        return true;
    }
    if let (Some(la), Some(lb)) = (a.lock_id(), b.lock_id()) {
        if la == lb {
            return true;
        }
    }
    match (a.access(), b.access()) {
        (Some((va, ka)), Some((vb, kb))) if va == vb => ka.is_write_like() || kb.is_write_like(),
        _ => false,
    }
}

/// How the final observed value is computed once every lane finished —
/// the model of what happens at the join of the parallel region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finalize {
    /// Observed value is one shared variable (the shared-counter shape).
    Var(VarId),
    /// Observed value is the fold of a contiguous range of per-lane
    /// partial variables under [`crate::reduction::Sum`] — the
    /// `reduction(+:count)` shape, combined at the join exactly like
    /// [`crate::team::Team::parallel_for_reduce`] folds its partials.
    SumVars(std::ops::Range<VarId>),
}

/// A bounded, deterministic modeled program: the unit the explorer
/// fuzzes and exhausts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Human name ("race/none", "race/critical", ...).
    pub name: String,
    /// Per-lane straight-line operation lists.
    pub lanes: Vec<Vec<Op>>,
    /// Number of shared variables (all start at 0).
    pub num_vars: usize,
    /// Number of locks (all start free).
    pub num_locks: usize,
    /// Join-time reduction of the observed value.
    pub finalize: Finalize,
    /// The value a correct execution must observe.
    pub expected: u64,
}

impl Program {
    /// Total scheduler steps of any complete execution (every op is
    /// exactly one step regardless of interleaving).
    pub fn total_steps(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Checks the static well-formedness rules that make every
    /// schedule of the program deadlock-free and finite:
    ///
    /// * variable / lock indices in bounds;
    /// * per lane, `Lock`/`Unlock` strictly alternate per lock, end
    ///   released, and never hold more than one lock at once (no
    ///   hold-and-wait, hence no deadlock);
    /// * every lane executes the same number of `Barrier` ops (no lane
    ///   can finish while another still waits).
    pub fn validate(&self) -> Result<(), String> {
        if self.lanes.is_empty() {
            return Err("program has no lanes".into());
        }
        let mut barrier_counts = Vec::new();
        for (lane, ops) in self.lanes.iter().enumerate() {
            let mut held: Option<LockId> = None;
            let mut barriers = 0usize;
            for op in ops {
                if let Some((v, _)) = op.access() {
                    if v >= self.num_vars {
                        return Err(format!("lane {lane}: var v{v} out of bounds"));
                    }
                }
                match *op {
                    Op::Lock(l) => {
                        if l >= self.num_locks {
                            return Err(format!("lane {lane}: lock l{l} out of bounds"));
                        }
                        if held.is_some() {
                            return Err(format!(
                                "lane {lane}: nested lock acquisition (hold-and-wait)"
                            ));
                        }
                        held = Some(l);
                    }
                    Op::Unlock(l) => {
                        if held != Some(l) {
                            return Err(format!("lane {lane}: unlock l{l} without holding it"));
                        }
                        held = None;
                    }
                    Op::Barrier => {
                        if held.is_some() {
                            return Err(format!("lane {lane}: barrier while holding a lock"));
                        }
                        barriers += 1;
                    }
                    _ => {}
                }
            }
            if held.is_some() {
                return Err(format!("lane {lane}: lock held at lane end"));
            }
            barrier_counts.push(barriers);
        }
        if barrier_counts.iter().any(|&b| b != barrier_counts[0]) {
            return Err("lanes disagree on barrier count (deadlock)".into());
        }
        match &self.finalize {
            Finalize::Var(v) if *v >= self.num_vars => {
                Err(format!("finalize var v{v} out of bounds"))
            }
            Finalize::SumVars(r) if r.end > self.num_vars => {
                Err("finalize range out of bounds".into())
            }
            _ => Ok(()),
        }
    }

    /// Applies [`Finalize`] to the terminal shared-variable bank.
    pub fn finalize_value(&self, vars: &[u64]) -> u64 {
        match &self.finalize {
            Finalize::Var(v) => vars[*v],
            Finalize::SumVars(r) => Sum.fold(vars[r.start..r.end].iter().copied()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_lane(ops: Vec<Op>) -> Program {
        Program {
            name: "t".into(),
            lanes: vec![ops.clone(), ops],
            num_vars: 4,
            num_locks: 1,
            finalize: Finalize::Var(0),
            expected: 0,
        }
    }

    #[test]
    fn dependence_is_about_shared_state() {
        assert!(
            dependent(&Op::Load(0), &Op::Store(0)),
            "read-write conflict"
        );
        assert!(
            dependent(&Op::Store(0), &Op::Store(0)),
            "write-write conflict"
        );
        assert!(!dependent(&Op::Load(0), &Op::Load(0)), "reads commute");
        assert!(
            !dependent(&Op::Load(0), &Op::Store(1)),
            "distinct vars commute"
        );
        assert!(
            dependent(&Op::FetchAdd(0, 1), &Op::Load(0)),
            "atomic is write-like"
        );
        assert!(dependent(&Op::Lock(0), &Op::Unlock(0)), "same lock");
        assert!(
            !dependent(&Op::Lock(0), &Op::AddImm(1)),
            "local ops commute"
        );
        assert!(
            dependent(&Op::Barrier, &Op::AddImm(1)),
            "barrier orders everything"
        );
    }

    #[test]
    fn validate_accepts_well_formed_programs() {
        let p = two_lane(vec![
            Op::Lock(0),
            Op::Load(0),
            Op::AddImm(1),
            Op::Store(0),
            Op::Unlock(0),
        ]);
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.total_steps(), 10);
        assert_eq!(p.num_lanes(), 2);
    }

    #[test]
    fn validate_rejects_malformed_programs() {
        assert!(two_lane(vec![Op::Load(9)]).validate().is_err());
        assert!(two_lane(vec![Op::Lock(0)]).validate().is_err());
        assert!(two_lane(vec![Op::Unlock(0)]).validate().is_err());
        assert!(two_lane(vec![Op::Lock(0), Op::Barrier, Op::Unlock(0)])
            .validate()
            .is_err());
        let mut uneven = two_lane(vec![Op::Barrier]);
        uneven.lanes[1].clear();
        assert!(uneven.validate().is_err());
    }

    #[test]
    fn finalize_folds_partials_with_the_real_reduction() {
        let p = Program {
            name: "r".into(),
            lanes: vec![vec![]],
            num_vars: 4,
            num_locks: 0,
            finalize: Finalize::SumVars(1..4),
            expected: 0,
        };
        assert_eq!(p.finalize_value(&[9, 1, 2, 3]), 6);
        let single = Program {
            finalize: Finalize::Var(0),
            ..p
        };
        assert_eq!(single.finalize_value(&[9, 1, 2, 3]), 9);
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(Op::Load(2).mnemonic(), "load v2");
        assert_eq!(Op::FetchAdd(0, 3).mnemonic(), "xadd v0 #3");
        assert_eq!(Op::Barrier.mnemonic(), "barrier");
    }
}
