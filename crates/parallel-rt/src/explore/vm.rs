//! The controlled-scheduler virtual machine.
//!
//! Real threads hand interleaving decisions to the host OS; this VM
//! takes them back. Every operation of a [`Program`] is one step, the
//! VM serialises steps at every synchronisation / shared-access point,
//! and a pluggable [`Chooser`] picks which enabled lane moves next.
//! The chosen *index into the enabled set* is recorded at every
//! decision, so an execution is fully described by its choice string:
//! replaying the same choices reproduces the same schedule, the same
//! race reports and a byte-identical [`obs::trace::Trace`].

use obs::trace::{category, Trace, TraceConfig, TraceRecorder};
use stats::rng::Xoshiro256;

use super::program::{Op, Program};
use super::vclock::{Detector, RaceReport};

/// Picks the next lane to step from the enabled set. Implementations
/// must return an index strictly below `enabled_len` (callers pass
/// `enabled_len >= 1`).
pub trait Chooser {
    /// Index into the current enabled set.
    fn choose(&mut self, enabled_len: usize) -> usize;
}

/// Random schedule search: draws each choice from a seeded
/// [`Xoshiro256`], so one `u64` seed names the whole schedule.
#[derive(Debug)]
pub struct RngChooser(pub Xoshiro256);

impl RngChooser {
    /// A chooser seeded with `seed`.
    pub fn seeded(seed: u64) -> Self {
        RngChooser(Xoshiro256::seed_from_u64(seed))
    }
}

impl Chooser for RngChooser {
    fn choose(&mut self, enabled_len: usize) -> usize {
        if enabled_len <= 1 {
            0
        } else {
            self.0.next_below(enabled_len)
        }
    }
}

/// Replays an explicit choice string. Out-of-range entries wrap onto
/// the enabled set and an exhausted string continues with choice 0, so
/// *every* `(program, choices)` pair denotes exactly one complete
/// execution — the totality that makes delta-debugging candidates
/// always runnable.
#[derive(Debug)]
pub struct ReplayChooser<'a> {
    choices: &'a [usize],
    at: usize,
}

impl<'a> ReplayChooser<'a> {
    /// A chooser replaying `choices`.
    pub fn new(choices: &'a [usize]) -> Self {
        ReplayChooser { choices, at: 0 }
    }
}

impl Chooser for ReplayChooser<'_> {
    fn choose(&mut self, enabled_len: usize) -> usize {
        let raw = self.choices.get(self.at).copied().unwrap_or(0);
        self.at += 1;
        raw % enabled_len
    }
}

/// The result of driving one [`Program`] to completion under one
/// schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// Recorded choice (index into the enabled set) per decision.
    pub choices: Vec<usize>,
    /// The lane that moved at each step (derived from the choices).
    pub schedule: Vec<usize>,
    /// The value a correct run must observe.
    pub expected: u64,
    /// The value this run observed after the join-time finalize.
    pub observed: u64,
    /// Total steps executed.
    pub steps: usize,
    /// Happens-before races detected during the run.
    pub races: Vec<RaceReport>,
    /// FNV-1a digest of the run's Chrome trace JSON (`None` for the
    /// traceless executions the systematic search forks).
    pub trace_digest: Option<u64>,
}

impl Execution {
    /// True when the observed value matches the expectation.
    pub fn is_correct(&self) -> bool {
        self.observed == self.expected
    }

    /// Updates the schedule lost (0 for correct runs).
    pub fn lost_updates(&self) -> u64 {
        self.expected.saturating_sub(self.observed)
    }

    /// Sorted, deduplicated race signatures of the run.
    pub fn race_signatures(&self) -> Vec<u64> {
        let mut sigs: Vec<u64> = self.races.iter().map(RaceReport::signature).collect();
        sigs.sort_unstable();
        sigs.dedup();
        sigs
    }

    /// True when some detected race carries `signature`.
    pub fn has_race_signature(&self, signature: u64) -> bool {
        self.races.iter().any(|r| r.signature() == signature)
    }
}

/// VM state for one execution in progress. [`Vm::fork`] clones the
/// machine (without its trace recorder) so the systematic search can
/// branch mid-schedule without re-running prefixes.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    pcs: Vec<usize>,
    accs: Vec<u64>,
    vars: Vec<u64>,
    lock_owner: Vec<Option<usize>>,
    at_barrier: Vec<bool>,
    arrivals: usize,
    detector: Detector,
    choices: Vec<usize>,
    schedule: Vec<usize>,
    step: usize,
    recorder: Option<TraceRecorder>,
}

impl<'p> Vm<'p> {
    /// A fresh VM over `program`. With `traced`, every step emits an
    /// [`obs::trace`] instant (category [`category::STEP`], virtual
    /// time = global step index) and every detected race a
    /// [`category::RACE`] instant on the racing lane.
    ///
    /// # Panics
    /// Panics if the program fails [`Program::validate`].
    pub fn new(program: &'p Program, traced: bool) -> Self {
        if let Err(e) = program.validate() {
            panic!("invalid explore program {:?}: {e}", program.name);
        }
        let lanes = program.num_lanes();
        let recorder = traced.then(|| {
            let mut rec = TraceRecorder::new(&TraceConfig::default());
            for i in 0..lanes {
                rec.lane(format!("lane/{i}"));
            }
            rec
        });
        Vm {
            program,
            pcs: vec![0; lanes],
            accs: vec![0; lanes],
            vars: vec![0; program.num_vars],
            lock_owner: vec![None; program.num_locks],
            at_barrier: vec![false; lanes],
            arrivals: 0,
            detector: Detector::new(lanes, program.num_vars, program.num_locks),
            choices: Vec::new(),
            schedule: Vec::new(),
            step: 0,
            recorder: None,
        }
        .with_recorder(recorder)
    }

    fn with_recorder(mut self, recorder: Option<TraceRecorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// A traceless copy at the current state — the branch point of the
    /// systematic search.
    pub fn fork(&self) -> Vm<'p> {
        Vm {
            program: self.program,
            pcs: self.pcs.clone(),
            accs: self.accs.clone(),
            vars: self.vars.clone(),
            lock_owner: self.lock_owner.clone(),
            at_barrier: self.at_barrier.clone(),
            arrivals: self.arrivals,
            detector: self.detector.clone(),
            choices: self.choices.clone(),
            schedule: self.schedule.clone(),
            step: self.step,
            recorder: None,
        }
    }

    /// Lanes that can take a step right now, in lane order: not
    /// finished, not parked at the barrier, and not about to acquire a
    /// lock another lane holds.
    pub fn enabled(&self) -> Vec<usize> {
        (0..self.program.num_lanes())
            .filter(|&l| {
                if self.at_barrier[l] {
                    return false;
                }
                match self.next_op(l) {
                    None => false,
                    Some(Op::Lock(k)) => self.lock_owner[*k].is_none(),
                    Some(_) => true,
                }
            })
            .collect()
    }

    /// The lane's next operation, `None` when it finished.
    pub fn next_op(&self, lane: usize) -> Option<&Op> {
        self.program.lanes[lane].get(self.pcs[lane])
    }

    /// True once every lane ran to completion.
    pub fn is_done(&self) -> bool {
        self.pcs
            .iter()
            .zip(&self.program.lanes)
            .all(|(&pc, ops)| pc >= ops.len())
    }

    fn emit(&mut self, lane: usize, name: String, cat: &'static str, value: u64) {
        let time = self.step as u64;
        if let Some(rec) = &mut self.recorder {
            rec.buf(lane as u32).instant(time, name, cat, value);
        }
    }

    /// Executes the recorded choice `idx` into the current enabled
    /// set, stepping that lane.
    ///
    /// # Panics
    /// Panics if `idx` is not a valid index into [`Vm::enabled`].
    pub fn step_choice(&mut self, idx: usize) {
        let enabled = self.enabled();
        let lane = enabled[idx];
        self.choices.push(idx);
        self.step_lane(lane);
    }

    fn step_lane(&mut self, lane: usize) {
        let op = *self.next_op(lane).expect("stepping a finished lane");
        let step = self.step;
        self.schedule.push(lane);
        let mut advance = true;
        let mut race: Option<RaceReport> = None;
        match op {
            Op::Load(v) => {
                race = self.detector.on_read(lane, v, step);
                self.accs[lane] = self.vars[v];
                self.emit(lane, op.mnemonic(), category::STEP, self.vars[v]);
            }
            Op::AddImm(k) => {
                self.accs[lane] = self.accs[lane].wrapping_add(k);
                self.emit(lane, op.mnemonic(), category::STEP, self.accs[lane]);
            }
            Op::Store(v) => {
                race = self.detector.on_write(lane, v, step);
                self.vars[v] = self.accs[lane];
                self.emit(lane, op.mnemonic(), category::STEP, self.vars[v]);
            }
            Op::FetchAdd(v, k) => {
                self.detector.on_atomic(lane, v);
                self.vars[v] = self.vars[v].wrapping_add(k);
                self.emit(lane, op.mnemonic(), category::STEP, self.vars[v]);
            }
            Op::Lock(l) => {
                debug_assert!(self.lock_owner[l].is_none(), "stepping a blocked lane");
                self.detector.on_acquire(lane, l);
                self.lock_owner[l] = Some(lane);
                self.emit(lane, op.mnemonic(), category::STEP, l as u64);
            }
            Op::Unlock(l) => {
                debug_assert_eq!(self.lock_owner[l], Some(lane), "unlock without lock");
                self.detector.on_release(lane, l);
                self.lock_owner[l] = None;
                self.emit(lane, op.mnemonic(), category::STEP, l as u64);
            }
            Op::Barrier => {
                self.detector.on_barrier_arrive(lane);
                self.at_barrier[lane] = true;
                self.arrivals += 1;
                self.emit(lane, op.mnemonic(), category::STEP, self.arrivals as u64);
                advance = false;
                if self.arrivals == self.program.num_lanes() {
                    // Last arrival releases the whole team.
                    self.detector.on_barrier();
                    self.arrivals = 0;
                    for l in 0..self.program.num_lanes() {
                        self.at_barrier[l] = false;
                        self.pcs[l] += 1;
                    }
                }
            }
        }
        if let Some(r) = race {
            self.emit(
                lane,
                format!("race v{}", r.var),
                category::RACE,
                r.signature(),
            );
        }
        if advance {
            self.pcs[lane] += 1;
        }
        self.step += 1;
    }

    /// Consumes the finished VM into its [`Execution`] (and the trace,
    /// when recording was on).
    ///
    /// # Panics
    /// Panics if the VM has not run to completion.
    pub fn finish(self) -> (Execution, Option<Trace>) {
        assert!(self.is_done(), "finish() on an unfinished VM");
        let observed = self.program.finalize_value(&self.vars);
        let trace = self.recorder.map(TraceRecorder::finish);
        let exec = Execution {
            choices: self.choices,
            schedule: self.schedule,
            expected: self.program.expected,
            observed,
            steps: self.step,
            races: self.detector.races().to_vec(),
            trace_digest: trace.as_ref().map(Trace::digest),
        };
        (exec, trace)
    }

    /// Shared-variable bank (for finalize shapes in tests).
    pub fn vars(&self) -> &[u64] {
        &self.vars
    }

    /// The program this VM executes.
    pub fn program(&self) -> &'p Program {
        self.program
    }
}

/// Drives `program` to completion under `chooser`, recording a trace.
pub fn run_with_trace(program: &Program, chooser: &mut dyn Chooser) -> (Execution, Trace) {
    let mut vm = Vm::new(program, true);
    loop {
        let enabled = vm.enabled();
        if enabled.is_empty() {
            break;
        }
        let idx = chooser.choose(enabled.len());
        vm.step_choice(idx);
    }
    let (exec, trace) = vm.finish();
    (exec, trace.expect("recording was on"))
}

/// One random schedule from `seed` (traced; the digest is the replay
/// oracle).
pub fn run_random(program: &Program, seed: u64) -> Execution {
    run_with_trace(program, &mut RngChooser::seeded(seed)).0
}

/// Replays an explicit choice string (traced). The same choices always
/// produce a byte-identical trace — [`Execution::trace_digest`] equal —
/// which CI asserts before trusting any counterexample.
pub fn replay(program: &Program, choices: &[usize]) -> Execution {
    run_with_trace(program, &mut ReplayChooser::new(choices)).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::program::{Finalize, Op};

    fn racy(threads: usize, increments: usize) -> Program {
        let body: Vec<Op> = (0..increments)
            .flat_map(|_| [Op::Load(0), Op::AddImm(1), Op::Store(0)])
            .collect();
        Program {
            name: "racy".into(),
            lanes: vec![body; threads],
            num_vars: 1,
            num_locks: 0,
            finalize: Finalize::Var(0),
            expected: (threads * increments) as u64,
        }
    }

    #[test]
    fn single_lane_runs_in_program_order() {
        let p = Program {
            name: "seq".into(),
            lanes: vec![vec![Op::Load(0), Op::AddImm(5), Op::Store(0)]],
            num_vars: 1,
            num_locks: 0,
            finalize: Finalize::Var(0),
            expected: 5,
        };
        let e = run_random(&p, 1);
        assert!(e.is_correct());
        assert!(e.races.is_empty(), "one lane has nobody to race with");
        assert_eq!(e.steps, 3);
        assert_eq!(e.schedule, vec![0, 0, 0]);
    }

    #[test]
    fn adversarial_schedule_loses_updates_and_reports_the_race() {
        // Two lanes, one increment each; interleave load/load/store/
        // store so one update vanishes. Choice indices: both lanes
        // enabled throughout, so index == lane id here.
        let p = racy(2, 1);
        let e = replay(&p, &[0, 1, 0, 1, 0, 1]);
        assert_eq!(e.observed, 1, "lost exactly one update");
        assert_eq!(e.lost_updates(), 1);
        assert!(!e.races.is_empty(), "detector flags the unordered accesses");
    }

    #[test]
    fn sequential_schedule_is_correct_but_still_races() {
        // Lane 0 runs fully, then lane 1: the count is right, yet the
        // accesses are unordered — exactly why "tests usually pass".
        let p = racy(2, 1);
        let e = replay(&p, &[0, 0, 0, 1, 1, 1]);
        assert!(e.is_correct());
        assert!(!e.races.is_empty(), "race exists on every schedule");
    }

    #[test]
    fn replay_reproduces_random_runs_bit_identically() {
        let p = racy(3, 2);
        for seed in [1u64, 7, 42] {
            let a = run_random(&p, seed);
            let b = run_random(&p, seed);
            assert_eq!(a, b, "same seed, same everything");
            let r = replay(&p, &a.choices);
            assert_eq!(r.trace_digest, a.trace_digest, "choices name the schedule");
            assert_eq!(r.schedule, a.schedule);
        }
    }

    #[test]
    fn locks_block_and_serialise() {
        let body = vec![
            Op::Lock(0),
            Op::Load(0),
            Op::AddImm(1),
            Op::Store(0),
            Op::Unlock(0),
        ];
        let p = Program {
            name: "crit".into(),
            lanes: vec![body.clone(), body],
            num_vars: 1,
            num_locks: 1,
            finalize: Finalize::Var(0),
            expected: 2,
        };
        // Try to interleave maximally; the lock forbids it.
        for seed in 0..16u64 {
            let e = run_random(&p, seed);
            assert!(e.is_correct(), "critical section cannot lose updates");
            assert!(e.races.is_empty(), "lock edges order the accesses");
        }
        // While lane 0 holds the lock, lane 1 is not enabled at its
        // Lock op.
        let mut vm = Vm::new(&p, false);
        vm.step_choice(0); // lane 0 acquires
        assert_eq!(vm.enabled(), vec![0], "lane 1 blocked on the lock");
    }

    #[test]
    fn barrier_parks_lanes_until_all_arrive() {
        let p = Program {
            name: "bar".into(),
            lanes: vec![
                vec![Op::Store(0), Op::Barrier, Op::Load(1)],
                vec![Op::Store(1), Op::Barrier, Op::Load(0)],
            ],
            num_vars: 2,
            num_locks: 0,
            finalize: Finalize::Var(0),
            expected: 0,
        };
        let mut vm = Vm::new(&p, false);
        vm.step_choice(0); // lane 0 store
        vm.step_choice(0); // lane 0 arrives at barrier
        assert_eq!(vm.enabled(), vec![1], "lane 0 parked");
        vm.step_choice(0); // lane 1 store
        vm.step_choice(0); // lane 1 arrives: barrier releases
        assert_eq!(vm.enabled(), vec![0, 1], "all released");
        for _ in 0..2 {
            vm.step_choice(0);
        }
        assert!(vm.is_done());
        let (e, _) = vm.finish();
        assert!(
            e.races.is_empty(),
            "cross-barrier read-write pairs are ordered"
        );
    }

    #[test]
    fn atomics_never_lose_updates() {
        let p = Program {
            name: "atomic".into(),
            lanes: vec![vec![Op::FetchAdd(0, 1); 3]; 4],
            num_vars: 1,
            num_locks: 0,
            finalize: Finalize::Var(0),
            expected: 12,
        };
        for seed in 0..8u64 {
            let e = run_random(&p, seed);
            assert!(e.is_correct());
            assert!(e.races.is_empty());
        }
    }

    #[test]
    fn reduction_shape_finalizes_through_sum() {
        let p = Program {
            name: "red".into(),
            lanes: vec![
                vec![Op::AddImm(2), Op::Store(1)],
                vec![Op::AddImm(3), Op::Store(2)],
            ],
            num_vars: 3,
            num_locks: 0,
            finalize: Finalize::SumVars(1..3),
            expected: 5,
        };
        let e = run_random(&p, 9);
        assert!(e.is_correct());
        assert!(e.races.is_empty(), "distinct partial vars cannot race");
    }

    #[test]
    fn fork_continues_identically_without_a_trace() {
        let p = racy(2, 2);
        let mut vm = Vm::new(&p, false);
        for _ in 0..4 {
            vm.step_choice(0);
        }
        let mut forked = vm.fork();
        while !forked.is_done() {
            forked.step_choice(0);
        }
        let (fe, ft) = forked.finish();
        assert!(ft.is_none());
        // Drive the original down the same path.
        while !vm.is_done() {
            vm.step_choice(0);
        }
        let (oe, _) = vm.finish();
        assert_eq!(fe, oe);
    }
}
