//! Minimal-counterexample schedule shrinking.
//!
//! A found counterexample is a choice string — often long and mostly
//! irrelevant, because only a handful of decisions around the racy
//! accesses matter. [`shrink`] delta-debugs the string down to a
//! *1-minimal* schedule: no prefix truncation, no chunk removal and no
//! single choice canonicalised to 0 can be applied without losing the
//! race. Every accepted mutation is verified by a full replay, so the
//! result is reproducing **by construction** — the shrinker can return
//! a shorter schedule or the input itself, never a broken one.
//!
//! Replay totality (out-of-range choices wrap, exhausted strings
//! continue with lane-order choice 0 — see
//! [`super::vm::ReplayChooser`]) is what makes arbitrary candidate
//! strings legal to try.

use super::program::Program;
use super::search::Counterexample;
use super::vm::{replay, Execution};

/// Does `choices` still expose the race named by `signature` on
/// `program`? (The reproduction oracle every candidate must pass.)
pub fn reproduces(program: &Program, choices: &[usize], signature: u64) -> bool {
    replay(program, choices).has_race_signature(signature)
}

/// Shrinks `choices` to a 1-minimal schedule that still reproduces
/// `signature`. Deterministic: the same inputs always shrink to the
/// same output.
///
/// # Panics
/// Panics if `choices` does not reproduce `signature` in the first
/// place (shrinking an honest counterexample is the only use).
pub fn shrink(program: &Program, choices: &[usize], signature: u64) -> Vec<usize> {
    assert!(
        reproduces(program, choices, signature),
        "shrink() needs a reproducing counterexample to start from"
    );
    let mut best = choices.to_vec();

    // Phase 1: shortest reproducing prefix. Replay pads exhausted
    // strings with 0s, so a prefix is a complete schedule. The racy
    // pair happens at some step; prefixes covering it reproduce, so
    // binary search on length is sound (verified anyway).
    let mut lo = 0usize;
    let mut hi = best.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if reproduces(program, &best[..mid], signature) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if reproduces(program, &best[..hi], signature) {
        best.truncate(hi);
    }

    // Phases 2+3 to fixpoint: ddmin chunk removal, then canonicalise
    // choices to 0 (first enabled lane) where the race survives it.
    loop {
        let mut changed = false;

        // ddmin: try removing chunks at halving granularity.
        let mut chunk = best.len().div_ceil(2).max(1);
        while chunk >= 1 {
            let mut at = 0;
            while at < best.len() {
                let mut candidate = best.clone();
                let end = (at + chunk).min(candidate.len());
                candidate.drain(at..end);
                if reproduces(program, &candidate, signature) {
                    best = candidate;
                    changed = true;
                    // Same position now holds the next chunk.
                } else {
                    at += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Canonicalise: a 0 means "first enabled lane", the default
        // the padded tail uses; zeroing shrinks toward it.
        for i in 0..best.len() {
            if best[i] != 0 {
                let mut candidate = best.clone();
                candidate[i] = 0;
                if reproduces(program, &candidate, signature) {
                    best = candidate;
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }
    best
}

/// Shrinks a [`Counterexample`] in place: minimises its choice string,
/// then refreshes every schedule-derived field (steps, digest,
/// observed value, race rendering) from a traced replay of the
/// minimal schedule.
pub fn shrink_counterexample(
    program: &Program,
    cex: &Counterexample,
) -> (Counterexample, Execution) {
    let minimal = if cex.race_signature != 0 {
        shrink(program, &cex.choices, cex.race_signature)
    } else {
        cex.choices.clone()
    };
    let exec = replay(program, &minimal);
    let shrunk = Counterexample {
        seed: cex.seed,
        choices: minimal,
        race_signature: cex.race_signature,
        race: exec
            .races
            .iter()
            .find(|r| r.signature() == cex.race_signature)
            .map_or_else(|| cex.race.clone(), |r| r.render()),
        observed: exec.observed,
        expected: exec.expected,
        steps: exec.steps,
        trace_digest: exec.trace_digest.unwrap_or(0),
    };
    (shrunk, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::program::{Finalize, Op};
    use crate::explore::search::{fuzz, Budget};

    fn racy(threads: usize, increments: usize) -> Program {
        let body: Vec<Op> = (0..increments)
            .flat_map(|_| [Op::Load(0), Op::AddImm(1), Op::Store(0)])
            .collect();
        Program {
            name: "race/none".into(),
            lanes: vec![body; threads],
            num_vars: 1,
            num_locks: 0,
            finalize: Finalize::Var(0),
            expected: (threads * increments) as u64,
        }
    }

    #[test]
    fn shrunk_schedules_still_reproduce_and_never_grow() {
        let p = racy(3, 3);
        let report = fuzz(&p, 99, Budget::schedules(8));
        let cex = report.counterexample.expect("racy program always races");
        let minimal = shrink(&p, &cex.choices, cex.race_signature);
        assert!(reproduces(&p, &minimal, cex.race_signature));
        assert!(minimal.len() <= cex.choices.len());
    }

    #[test]
    fn shrinking_is_deterministic_and_idempotent() {
        let p = racy(2, 2);
        let report = fuzz(&p, 5, Budget::schedules(4));
        let cex = report.counterexample.expect("cex");
        let a = shrink(&p, &cex.choices, cex.race_signature);
        let b = shrink(&p, &cex.choices, cex.race_signature);
        assert_eq!(a, b);
        let again = shrink(&p, &a, cex.race_signature);
        assert_eq!(again, a, "1-minimal schedules are fixpoints");
    }

    #[test]
    fn all_zero_schedules_shrink_to_empty() {
        // The race survives even the default lane-order schedule, so
        // the minimal counterexample is the empty choice string.
        let p = racy(2, 1);
        let exec = replay(&p, &[]);
        assert!(!exec.races.is_empty());
        let sig = exec.races[0].signature();
        let minimal = shrink(&p, &[0, 0, 0, 0, 0, 0], sig);
        assert!(minimal.is_empty());
    }

    #[test]
    fn shrink_counterexample_refreshes_derived_fields() {
        let p = racy(2, 3);
        let report = fuzz(&p, 12, Budget::schedules(8));
        let cex = report.counterexample.expect("cex");
        let (shrunk, exec) = shrink_counterexample(&p, &cex);
        assert_eq!(shrunk.race_signature, cex.race_signature);
        assert_eq!(shrunk.steps, exec.steps);
        assert_eq!(Some(shrunk.trace_digest), exec.trace_digest);
        assert!(exec.has_race_signature(shrunk.race_signature));
        // Replays of the shrunk schedule are bit-identical.
        let again = replay(&p, &shrunk.choices);
        assert_eq!(again.trace_digest, exec.trace_digest);
    }

    #[test]
    #[should_panic(expected = "reproducing counterexample")]
    fn shrinking_a_non_reproducing_string_panics() {
        let p = racy(2, 1);
        shrink(&p, &[], 0xDEAD_BEEF);
    }
}
