//! Seeded, fully deterministic schedule-space exploration.
//!
//! Assignment 4's lesson — "race conditions are difficult to reproduce
//! and debug" — is a statement about *uncontrolled* schedulers. This
//! module removes the scheduler from the OS's hands: programs are
//! modeled as per-lane operation lists ([`program`]), a controlled VM
//! serialises them one shared-access step at a time ([`vm`]), and the
//! interleaving becomes a first-class value (the *choice string*) that
//! can be searched, replayed bit-identically, and shrunk.
//!
//! The pipeline:
//!
//! 1. [`program::Program`] — model of a patternlet over shared vars /
//!    locks / barriers ([`crate::race::patternlet_program`] bridges the
//!    Assignment-2 shared-counter family into it);
//! 2. [`vm::Vm`] — controlled scheduler; every run records its choice
//!    string and (optionally) a virtual-time [`obs::trace`] whose FNV
//!    digest is the bit-identity oracle;
//! 3. [`vclock::Detector`] — happens-before race detection with vector
//!    clocks, run *inside* every execution;
//! 4. [`search`] — random interleaving search from split seeds
//!    ([`search::fuzz`]) and sleep-set DPOR over the bounded space
//!    ([`search::systematic`]), both producing a
//!    [`search::StrategyReport`] that either certifies race-freedom
//!    over the explored space or carries a replayable
//!    [`search::Counterexample`];
//! 5. [`shrink`] — delta-debugging the counterexample's choice string
//!    to a 1-minimal schedule that still exposes the same race
//!    signature.
//!
//! ```
//! use parallel_rt::explore::{search, shrink};
//! use parallel_rt::race::{patternlet_program, FixStrategy};
//!
//! // The buggy patternlet: the explorer finds the race...
//! let buggy = patternlet_program(FixStrategy::None, 2, 2);
//! let report = search::fuzz(&buggy, 42, search::Budget::schedules(16));
//! let cex = report.counterexample.expect("the race is found");
//!
//! // ...shrinks it to a minimal schedule that still reproduces it...
//! let minimal = shrink::shrink(&buggy, &cex.choices, cex.race_signature);
//! assert!(shrink::reproduces(&buggy, &minimal, cex.race_signature));
//!
//! // ...while every fix certifies clean over the whole space.
//! let fixed = patternlet_program(FixStrategy::Atomic, 2, 2);
//! let proof = search::systematic(&fixed, search::Budget::schedules(100_000));
//! assert!(proof.certified() && proof.space_exhausted);
//! ```

pub mod program;
pub mod search;
pub mod shrink;
pub mod vclock;
pub mod vm;

pub use program::{AccessKind, Finalize, Op, Program};
pub use search::{fuzz, systematic, Budget, Counterexample, StrategyReport};
pub use shrink::{shrink, shrink_counterexample};
pub use vclock::{Detector, RaceReport};
pub use vm::{replay, run_random, run_with_trace, Execution, Vm};
