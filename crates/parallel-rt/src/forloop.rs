//! Work-sharing loops: `#pragma omp parallel for` with every schedule,
//! and the `reduction` clause variant.

use std::ops::Range;

use crate::reduction::Reduction;
use crate::schedule::{ChunkDispenser, Schedule};
use crate::team::Team;

/// Bucket edges for the per-policy chunk-size histograms: power-of-two
/// sizes up to 4096 iterations.
pub(crate) const CHUNK_SIZE_EDGES: [u64; 13] =
    [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Registers the chunk-size histogram for `schedule` in `registry` and
/// attaches it to `dispenser`. The metric is keyed by policy
/// (`parallel_rt/chunks/<label>`), so loops sharing a policy accumulate
/// into one distribution.
fn instrument_dispenser(
    dispenser: &mut ChunkDispenser,
    schedule: Schedule,
    registry: &obs::Registry,
) {
    dispenser.instrument(registry.histogram(
        &format!("parallel_rt/chunks/{}", schedule.label()),
        obs::Domain::Virtual,
        &CHUNK_SIZE_EDGES,
    ));
}

fn run_work_shared<F>(team: &Team, dispenser: &ChunkDispenser, body: &F)
where
    F: Fn(usize) + Sync,
{
    team.parallel(|ctx| {
        if dispenser.is_dynamic() {
            while let Some(chunk) = dispenser.next_chunk() {
                for i in chunk {
                    body(i);
                }
            }
        } else {
            for chunk in dispenser.static_assignment(ctx.id()) {
                for i in chunk {
                    body(i);
                }
            }
        }
    });
}

/// Applies `body` to every index in `range`, work-shared across the
/// team under `schedule`. Equivalent to
/// `#pragma omp parallel for schedule(...)`.
pub fn parallel_for<F>(team: &Team, range: Range<usize>, schedule: Schedule, body: F)
where
    F: Fn(usize) + Sync,
{
    let dispenser = ChunkDispenser::new(range, team.num_threads(), schedule);
    run_work_shared(team, &dispenser, &body);
}

/// [`parallel_for`] recording the chunk-size distribution into
/// `registry` under `parallel_rt/chunks/<policy>`. The multiset of
/// chunk sizes is determined by the range and policy alone, so the
/// histogram is identical whatever the thread count or host timing.
pub fn parallel_for_with_metrics<F>(
    team: &Team,
    range: Range<usize>,
    schedule: Schedule,
    registry: &obs::Registry,
    body: F,
) where
    F: Fn(usize) + Sync,
{
    let mut dispenser = ChunkDispenser::new(range, team.num_threads(), schedule);
    instrument_dispenser(&mut dispenser, schedule, registry);
    run_work_shared(team, &dispenser, &body);
}

/// `parallel for` with a `reduction` clause: maps every index through
/// `map` and folds per-thread partials with `reduction`, combining them
/// in thread-id order.
pub fn parallel_for_reduce<T, M, Red>(
    team: &Team,
    range: Range<usize>,
    schedule: Schedule,
    reduction: Red,
    map: M,
) -> T
where
    T: Send + Clone,
    M: Fn(usize) -> T + Sync,
    Red: Reduction<T> + Sync,
{
    let dispenser = ChunkDispenser::new(range, team.num_threads(), schedule);
    let dispenser = &dispenser;
    let map = &map;
    let reduction_ref = &reduction;
    let partials = team.parallel(|ctx| {
        let mut acc = reduction_ref.identity();
        if dispenser.is_dynamic() {
            while let Some(chunk) = dispenser.next_chunk() {
                for i in chunk {
                    acc = reduction_ref.combine(acc, map(i));
                }
            }
        } else {
            for chunk in dispenser.static_assignment(ctx.id()) {
                for i in chunk {
                    acc = reduction_ref.combine(acc, map(i));
                }
            }
        }
        acc
    });
    reduction.fold(partials)
}

/// Fills `out[i] = f(i)` in parallel — the idiomatic way to get
/// per-index results out of a parallel loop without locking: each index
/// is owned by exactly one thread, so disjoint `&mut` access is safe via
/// chunked splitting.
pub fn parallel_fill<T, F>(team: &Team, out: &mut [T], schedule: Schedule, f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Static block split: hand each thread a disjoint sub-slice.
    match schedule {
        Schedule::StaticBlock => {
            let n = out.len();
            let nthreads = team.num_threads();
            let base = n / nthreads;
            let extra = n % nthreads;
            let mut slices = Vec::with_capacity(nthreads);
            let mut rest = out;
            let mut offset = 0usize;
            for t in 0..nthreads {
                let len = base + usize::from(t < extra);
                let (head, tail) = rest.split_at_mut(len);
                slices.push((offset, head));
                rest = tail;
                offset += len;
            }
            let slices = parking_lot::Mutex::new(slices);
            let f = &f;
            let slices = &slices;
            team.parallel(|_ctx| loop {
                let part = slices.lock().pop();
                let Some((start, slice)) = part else { break };
                for (k, slot) in slice.iter_mut().enumerate() {
                    *slot = f(start + k);
                }
            });
        }
        other => {
            // For chunked policies, collect into an indexed buffer under
            // a lock per chunk (still disjoint writes, but simplest safe
            // formulation).
            let results = parking_lot::Mutex::new(Vec::<(usize, T)>::with_capacity(out.len()));
            let f = &f;
            let results_ref = &results;
            parallel_for(team, 0..out.len(), other, move |i| {
                let v = f(i);
                results_ref.lock().push((i, v));
            });
            for (i, v) in results.into_inner() {
                out[i] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::{Max, Sum};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn parallel_for_visits_every_index_once() {
        for schedule in [
            Schedule::StaticBlock,
            Schedule::StaticChunk(1),
            Schedule::StaticChunk(3),
            Schedule::Dynamic(1),
            Schedule::Dynamic(4),
            Schedule::Guided(2),
        ] {
            let team = Team::new(4);
            let visits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(&team, 0..100, schedule, |i| {
                visits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                visits.iter().all(|v| v.load(Ordering::Relaxed) == 1),
                "{schedule:?}"
            );
        }
    }

    #[test]
    fn parallel_for_empty_range() {
        let team = Team::new(3);
        let hits = AtomicUsize::new(0);
        parallel_for(&team, 10..10, Schedule::StaticBlock, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn reduce_sum_matches_closed_form() {
        let team = Team::new(4);
        for schedule in [
            Schedule::StaticBlock,
            Schedule::StaticChunk(2),
            Schedule::Dynamic(3),
            Schedule::Guided(1),
        ] {
            let s: u64 = parallel_for_reduce(&team, 0..1001, schedule, Sum, |i| i as u64);
            assert_eq!(s, 500_500, "{schedule:?}");
        }
    }

    #[test]
    fn reduce_max_finds_peak() {
        let team = Team::new(3);
        let m: i64 = parallel_for_reduce(&team, 0..500, Schedule::Dynamic(7), Max, |i| {
            let x = i as i64;
            -(x - 250) * (x - 250) // peak at i = 250
        });
        assert_eq!(m, 0);
    }

    #[test]
    fn reduce_on_empty_range_is_identity() {
        let team = Team::new(2);
        let s: u64 = parallel_for_reduce(&team, 0..0, Schedule::StaticBlock, Sum, |i| i as u64);
        assert_eq!(s, 0);
    }

    #[test]
    fn reduce_with_single_thread_team() {
        let team = Team::new(1);
        let s: u64 = parallel_for_reduce(&team, 0..10, Schedule::StaticBlock, Sum, |i| i as u64);
        assert_eq!(s, 45);
    }

    #[test]
    fn trapezoid_integration_like_the_patternlet() {
        // ∫₀¹ x² dx = 1/3, via the trapezoidal rule with a reduction —
        // the Assignment 4 program.
        let team = Team::new(4);
        let n = 100_000usize;
        let h = 1.0 / n as f64;
        let f = |x: f64| x * x;
        let interior: f64 =
            parallel_for_reduce(&team, 1..n, Schedule::StaticBlock, Sum, |i| f(i as f64 * h));
        let integral = h * ((f(0.0) + f(1.0)) / 2.0 + interior);
        assert!((integral - 1.0 / 3.0).abs() < 1e-8);
    }

    #[test]
    fn parallel_fill_static() {
        let team = Team::new(4);
        let mut out = vec![0usize; 97];
        parallel_fill(&team, &mut out, Schedule::StaticBlock, |i| i * 2);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn parallel_fill_dynamic() {
        let team = Team::new(3);
        let mut out = vec![0usize; 50];
        parallel_fill(&team, &mut out, Schedule::Dynamic(4), |i| i + 1);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn parallel_fill_empty() {
        let team = Team::new(2);
        let mut out: Vec<usize> = vec![];
        parallel_fill(&team, &mut out, Schedule::StaticBlock, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn instrumented_loop_records_a_thread_count_invariant_histogram() {
        // Dynamic(7) over 0..500 hands out 71 full chunks and one of 3,
        // whichever threads grab them — so the histogram must be
        // byte-identical across team sizes.
        let snapshot_for = |threads: usize| {
            let registry = obs::Registry::new();
            let team = Team::new(threads);
            let visits = AtomicUsize::new(0);
            parallel_for_with_metrics(&team, 0..500, Schedule::Dynamic(7), &registry, |_| {
                visits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(visits.load(Ordering::Relaxed), 500, "threads={threads}");
            registry.snapshot()
        };
        let one = snapshot_for(1);
        assert_eq!(one.to_json(), snapshot_for(2).to_json());
        assert_eq!(one.to_json(), snapshot_for(4).to_json());
        let m = &one.metrics[0];
        assert_eq!(m.name, "parallel_rt/chunks/dynamic");
        assert!(
            matches!(
                m.data,
                obs::MetricData::Histogram {
                    count: 72,
                    sum: 500,
                    min: 3,
                    max: 7,
                    ..
                }
            ),
            "{m:?}"
        );
    }

    #[test]
    fn instrumented_static_loop_records_per_thread_blocks() {
        let registry = obs::Registry::new();
        let team = Team::new(4);
        parallel_for_with_metrics(&team, 0..100, Schedule::StaticBlock, &registry, |_| {});
        let snap = registry.snapshot();
        assert_eq!(snap.metrics[0].name, "parallel_rt/chunks/static_block");
        assert!(
            matches!(
                snap.metrics[0].data,
                obs::MetricData::Histogram {
                    count: 4,
                    sum: 100,
                    ..
                }
            ),
            "{:?}",
            snap.metrics[0].data
        );
    }

    #[test]
    fn work_is_actually_shared_across_threads() {
        // With a dynamic schedule and enough chunks, a 4-thread team on
        // any host must hand chunks to more than one logical worker —
        // verified by tagging work with thread ids via Team::parallel.
        let team = Team::new(4);
        let per_thread: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        let dispenser = ChunkDispenser::new(0..400, 4, Schedule::StaticChunk(1));
        let dispenser = &dispenser;
        let per_thread_ref = &per_thread;
        team.parallel(|ctx| {
            for chunk in dispenser.static_assignment(ctx.id()) {
                per_thread_ref[ctx.id()].fetch_add(chunk.len() as u64, Ordering::Relaxed);
            }
        });
        for t in &per_thread {
            assert_eq!(t.load(Ordering::Relaxed), 100, "static chunk(1) is fair");
        }
    }
}
