//! Loop scheduling policies: OpenMP's `schedule(static|dynamic|guided,
//! chunk)` clause.
//!
//! Assignment 3's "Scheduling of Parallel Loops" patternlet has students
//! map threads to iterations "in chunks of size one, two, and three" and
//! observe the assignment; the pure functions here compute exactly those
//! assignments, and the runtime executes them.

use std::ops::Range;

/// A loop scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Iterations divided into contiguous equal blocks, one per thread
    /// (OpenMP's default `schedule(static)`).
    StaticBlock,
    /// Round-robin chunks of the given size (`schedule(static, chunk)`).
    StaticChunk(usize),
    /// Threads grab the next chunk when free (`schedule(dynamic, chunk)`).
    Dynamic(usize),
    /// Chunks shrink as the loop drains: each grab takes
    /// `remaining / (2 * nthreads)` clamped below by the given minimum
    /// (`schedule(guided, min)`).
    Guided(usize),
}

impl Schedule {
    /// Stable lowercase policy name, used to key per-policy metrics
    /// (`parallel_rt/chunks/<label>`).
    pub fn label(&self) -> &'static str {
        match self {
            Schedule::StaticBlock => "static_block",
            Schedule::StaticChunk(_) => "static_chunk",
            Schedule::Dynamic(_) => "dynamic",
            Schedule::Guided(_) => "guided",
        }
    }

    /// The chunk-size parameter, if the policy has one.
    pub fn chunk(&self) -> Option<usize> {
        match self {
            Schedule::StaticBlock => None,
            Schedule::StaticChunk(c) | Schedule::Dynamic(c) | Schedule::Guided(c) => Some(*c),
        }
    }

    /// Validates the policy for execution.
    ///
    /// # Panics
    /// Panics on a zero chunk size.
    pub fn validate(&self) {
        if let Some(0) = self.chunk() {
            panic!("chunk size must be positive");
        }
    }
}

/// The iterations `thread` executes under `schedule(static)` (block
/// decomposition): the first `n % t` threads get one extra iteration.
pub fn static_block(range: Range<usize>, nthreads: usize, thread: usize) -> Range<usize> {
    assert!(nthreads > 0 && thread < nthreads);
    let n = range.len();
    let base = n / nthreads;
    let extra = n % nthreads;
    let start = range.start + thread * base + thread.min(extra);
    let len = base + usize::from(thread < extra);
    start..start + len
}

/// The chunks `thread` executes under `schedule(static, chunk)`:
/// round-robin chunks of fixed size.
pub fn static_chunks(
    range: Range<usize>,
    nthreads: usize,
    thread: usize,
    chunk: usize,
) -> Vec<Range<usize>> {
    assert!(nthreads > 0 && thread < nthreads && chunk > 0);
    let mut out = Vec::new();
    let mut start = range.start + thread * chunk;
    while start < range.end {
        out.push(start..(start + chunk).min(range.end));
        start += nthreads * chunk;
    }
    out
}

/// Every chunk a guided schedule with `nthreads` threads and minimum
/// chunk `min_chunk` produces, in grab order.
pub fn guided_chunks(range: Range<usize>, nthreads: usize, min_chunk: usize) -> Vec<Range<usize>> {
    assert!(nthreads > 0 && min_chunk > 0);
    let mut out = Vec::new();
    let mut start = range.start;
    while start < range.end {
        let remaining = range.end - start;
        let size = (remaining / (2 * nthreads)).max(min_chunk).min(remaining);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// A work-sharing iterator handing out chunks of an index range to
/// however many threads poll it. Thread-safe via an atomic cursor for
/// the fixed-size policies and a small mutex for guided.
#[derive(Debug)]
pub struct ChunkDispenser {
    range: Range<usize>,
    nthreads: usize,
    schedule: Schedule,
    cursor: std::sync::atomic::AtomicUsize,
    guided: parking_lot::Mutex<usize>,
    /// Observability hook: records the size of every chunk handed out.
    chunk_sizes: Option<obs::Histogram>,
}

impl ChunkDispenser {
    /// Creates a dispenser over `range` for a team of `nthreads`.
    pub fn new(range: Range<usize>, nthreads: usize, schedule: Schedule) -> Self {
        assert!(nthreads > 0, "need at least one thread");
        schedule.validate();
        ChunkDispenser {
            cursor: std::sync::atomic::AtomicUsize::new(range.start),
            guided: parking_lot::Mutex::new(range.start),
            range,
            nthreads,
            schedule,
            chunk_sizes: None,
        }
    }

    /// Attaches a histogram that records the length of every chunk this
    /// dispenser hands out. The multiset of chunk sizes is a function of
    /// the range and policy alone (dynamic grabs race for *which thread*
    /// gets a chunk, never for its size; guided sizes are serialised
    /// under the cursor lock), so the recorded distribution is
    /// invariant across thread counts and grab interleavings.
    pub fn instrument(&mut self, histogram: obs::Histogram) {
        self.chunk_sizes = Some(histogram);
    }

    fn observe(&self, chunk: &Range<usize>) {
        if let Some(h) = &self.chunk_sizes {
            h.record(chunk.len() as u64);
        }
    }

    /// All chunks for `thread` under a static policy, computed without
    /// synchronisation (static schedules are deterministic by design).
    pub fn static_assignment(&self, thread: usize) -> Vec<Range<usize>> {
        let chunks = match self.schedule {
            Schedule::StaticBlock => {
                let r = static_block(self.range.clone(), self.nthreads, thread);
                if r.is_empty() {
                    vec![]
                } else {
                    vec![r]
                }
            }
            Schedule::StaticChunk(c) => static_chunks(self.range.clone(), self.nthreads, thread, c),
            _ => panic!("static_assignment on a dynamic policy"),
        };
        for chunk in &chunks {
            self.observe(chunk);
        }
        chunks
    }

    /// Grabs the next chunk under a dynamic/guided policy; `None` when
    /// the loop is drained.
    pub fn next_chunk(&self) -> Option<Range<usize>> {
        use std::sync::atomic::Ordering;
        match self.schedule {
            Schedule::Dynamic(chunk) => {
                let start = self.cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= self.range.end {
                    None
                } else {
                    Some(start..(start + chunk).min(self.range.end))
                }
            }
            Schedule::Guided(min_chunk) => {
                let mut cursor = self.guided.lock();
                if *cursor >= self.range.end {
                    return None;
                }
                let remaining = self.range.end - *cursor;
                let size = (remaining / (2 * self.nthreads))
                    .max(min_chunk)
                    .min(remaining);
                let start = *cursor;
                *cursor += size;
                Some(start..start + size)
            }
            _ => panic!("next_chunk on a static policy"),
        }
        .inspect(|chunk| self.observe(chunk))
    }

    /// Whether this policy hands out chunks dynamically.
    pub fn is_dynamic(&self) -> bool {
        matches!(self.schedule, Schedule::Dynamic(_) | Schedule::Guided(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_block_splits_evenly() {
        // 12 iterations over 4 threads: 3 each, contiguous.
        let parts: Vec<_> = (0..4).map(|t| static_block(0..12, 4, t)).collect();
        assert_eq!(parts, vec![0..3, 3..6, 6..9, 9..12]);
    }

    #[test]
    fn static_block_distributes_remainder_to_leading_threads() {
        // 10 over 4: 3,3,2,2.
        let parts: Vec<_> = (0..4).map(|t| static_block(0..10, 4, t)).collect();
        assert_eq!(parts, vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn static_block_covers_range_exactly() {
        for n in [0usize, 1, 5, 17, 100] {
            for t in [1usize, 2, 3, 4, 7] {
                let mut all: Vec<usize> = Vec::new();
                for th in 0..t {
                    all.extend(static_block(0..n, t, th));
                }
                all.sort_unstable();
                assert_eq!(all, (0..n).collect::<Vec<_>>(), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn static_chunks_round_robin() {
        // The patternlet's chunk-of-1 deal: thread t gets t, t+n, t+2n…
        let c = static_chunks(0..8, 4, 1, 1);
        assert_eq!(c, vec![1..2, 5..6]);
        // Chunk of 3, 2 threads, 10 iterations.
        let c = static_chunks(0..10, 2, 0, 3);
        assert_eq!(c, vec![0..3, 6..9]);
        let c = static_chunks(0..10, 2, 1, 3);
        assert_eq!(c, vec![3..6, 9..10]);
    }

    #[test]
    fn static_chunks_partition_for_chunks_1_2_3() {
        // Assignment 3 asks for chunk sizes one, two, and three.
        for chunk in [1usize, 2, 3] {
            let mut all: Vec<usize> = Vec::new();
            for t in 0..4 {
                for r in static_chunks(0..16, 4, t, chunk) {
                    all.extend(r);
                }
            }
            all.sort_unstable();
            assert_eq!(all, (0..16).collect::<Vec<_>>(), "chunk={chunk}");
        }
    }

    #[test]
    fn guided_chunks_shrink() {
        let chunks = guided_chunks(0..100, 4, 2);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        // First grab: 100/8 = 12; they shrink toward the minimum.
        assert_eq!(sizes[0], 12);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        // Every chunk honours the minimum except possibly the final
        // remainder chunk.
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s >= 2));
        assert!(*sizes.last().unwrap() <= 2);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 100);
    }

    #[test]
    fn dispenser_dynamic_hands_out_everything_once() {
        let d = ChunkDispenser::new(0..23, 4, Schedule::Dynamic(5));
        let mut all = Vec::new();
        while let Some(c) = d.next_chunk() {
            all.extend(c);
        }
        assert_eq!(all, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn dispenser_dynamic_is_safe_under_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let d = ChunkDispenser::new(0..1000, 4, Schedule::Dynamic(7));
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(c) = d.next_chunk() {
                        total.fetch_add(c.len(), Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn dispenser_guided_drains_exactly() {
        let d = ChunkDispenser::new(0..57, 3, Schedule::Guided(4));
        let mut all = Vec::new();
        while let Some(c) = d.next_chunk() {
            all.extend(c);
        }
        assert_eq!(all, (0..57).collect::<Vec<_>>());
        assert!(d.is_dynamic());
    }

    #[test]
    fn dispenser_static_assignment_matches_pure_functions() {
        let d = ChunkDispenser::new(0..10, 4, Schedule::StaticBlock);
        assert_eq!(d.static_assignment(0), vec![0..3]);
        assert!(!d.is_dynamic());
        let d = ChunkDispenser::new(0..10, 4, Schedule::StaticChunk(2));
        assert_eq!(d.static_assignment(1), static_chunks(0..10, 4, 1, 2));
    }

    #[test]
    fn empty_range_static_assignment_is_empty() {
        let d = ChunkDispenser::new(5..5, 4, Schedule::StaticBlock);
        assert!(d.static_assignment(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = ChunkDispenser::new(0..10, 2, Schedule::Dynamic(0));
    }

    #[test]
    #[should_panic(expected = "static_assignment on a dynamic policy")]
    fn wrong_mode_panics() {
        let d = ChunkDispenser::new(0..10, 2, Schedule::Dynamic(1));
        let _ = d.static_assignment(0);
    }

    #[test]
    fn schedule_chunk_accessor() {
        assert_eq!(Schedule::StaticBlock.chunk(), None);
        assert_eq!(Schedule::StaticChunk(2).chunk(), Some(2));
        assert_eq!(Schedule::Dynamic(3).chunk(), Some(3));
        assert_eq!(Schedule::Guided(4).chunk(), Some(4));
    }
}
