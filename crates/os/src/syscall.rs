//! The syscall surface: what a process can ask the kernel to do.
//!
//! Programs enter the kernel through an explicit
//! [`crate::process::OsOp::Trap`] step that costs
//! [`crate::kernel::OsConfig::trap_cost`] cycles, so every kernel
//! entry — and therefore every context switch — is a scheduled,
//! replayable event in virtual time, never a race.

use pi_sim::event::Cycles;

use crate::process::{Pid, ProcProgram};

/// A signal deliverable with [`Syscall::Signal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Interrupts a sleeping target: it wakes immediately (EINTR-style)
    /// instead of at its deadline. Recorded but otherwise inert for
    /// runnable targets.
    Interrupt,
    /// Terminates the target, exactly like [`Syscall::Kill`].
    Terminate,
    /// A user-defined signal: counted in the target's pending-signal
    /// tally, no state change.
    User(u8),
}

/// One request a process makes of the kernel via a trap step.
#[derive(Debug, Clone, PartialEq)]
pub enum Syscall {
    /// Duplicate the calling process. Parent and child both resume at
    /// the op after the trap; the syscall return register distinguishes
    /// them (child pid in the parent, 0 in the child — branch on it
    /// with [`crate::process::OsOp::SkipIfChild`]).
    Fork,
    /// Replace the calling process's program text and restart it from
    /// op 0 with fresh registers.
    Exec(ProcProgram),
    /// Reap one zombie child, blocking until a child exits if none is
    /// ready. Returns immediately (register 0) when the caller has no
    /// unreaped children.
    Wait,
    /// Block for the given number of virtual cycles.
    Sleep(Cycles),
    /// Voluntarily give up the CPU; the caller goes to the back of the
    /// run queue.
    Yield,
    /// Force-terminate the target process at its next instruction
    /// boundary (or immediately if it is blocked). Orphaned children
    /// are reparented to the kernel and auto-reaped.
    Kill(Pid),
    /// Deliver `signal` to `target`.
    Signal {
        /// Receiving process.
        target: Pid,
        /// What to deliver.
        signal: Signal,
    },
    /// Terminate the calling process with an exit code.
    Exit(i32),
}

impl Syscall {
    /// The syscall's name, used as the trap span label on core lanes.
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Fork => "fork",
            Syscall::Exec(_) => "exec",
            Syscall::Wait => "wait",
            Syscall::Sleep(_) => "sleep",
            Syscall::Yield => "yield",
            Syscall::Kill(_) => "kill",
            Syscall::Signal { .. } => "signal",
            Syscall::Exit(_) => "exit",
        }
    }
}
