//! The paper's scheduling questions, run as OS workloads.
//!
//! Two scenarios:
//!
//! 1. **Oversubscription** — the timing chapter's "what happens when
//!    you ask for 5 threads on 4 cores?" A cohort of P identical
//!    compute+memory workers runs on C cores under each scheduler;
//!    the study reports makespan, context-switch counts, the longest
//!    Ready-queue wait, and the completion spread, all pinned by
//!    digest in `BENCH_os.json`.
//! 2. **Static vs guided loops** — the patternlet loop-schedule
//!    comparison, but executed as *preemptible processes*: each
//!    simulated thread's chunk list (from
//!    [`parallel_rt::sim::plan_assignment`]) becomes a process program
//!    with a `yield` at every chunk boundary (the runtime's scheduling
//!    point), and 5 threads share 4 cores, so the guided schedule's
//!    balance advantage shows up *through* the OS layer.

use obs::trace::fnv1a;
use parallel_rt::sim::{plan_assignment, CostModel};
use parallel_rt::Schedule;

use crate::kernel::{Os, OsConfig, OsReport};
use crate::process::ProcProgram;
use crate::sched::{Cfs, PriorityRr, RoundRobin, Scheduler};

/// The three schedulers the studies sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// Classic round-robin.
    RoundRobin,
    /// Priority round-robin (strict levels).
    PriorityRr,
    /// CFS-style integer-vruntime fair scheduler.
    Cfs,
}

impl SchedKind {
    /// All schedulers, in sweep order.
    pub const ALL: [SchedKind; 3] = [SchedKind::RoundRobin, SchedKind::PriorityRr, SchedKind::Cfs];

    /// Stable label (matches `Scheduler::name`).
    pub fn label(self) -> &'static str {
        match self {
            SchedKind::RoundRobin => "rr",
            SchedKind::PriorityRr => "prio_rr",
            SchedKind::Cfs => "cfs",
        }
    }

    /// A fresh scheduler instance.
    pub fn make(self) -> Box<dyn Scheduler> {
        match self {
            SchedKind::RoundRobin => Box::new(RoundRobin::new()),
            SchedKind::PriorityRr => Box::new(PriorityRr::new()),
            SchedKind::Cfs => Box::new(Cfs::new()),
        }
    }
}

/// The oversubscription worker: alternating compute bursts and strided
/// reads over a private address range, ~16 quantum-sized chunks. All
/// workers are identical up to their address base, so retired work is
/// exactly `P * work_units` regardless of scheduler — the invariant the
/// gate pins.
pub fn oversub_worker(index: usize) -> ProcProgram {
    let base = (index as u64 + 1) << 24; // disjoint working sets
    let mut prog = ProcProgram::new();
    for chunk in 0..16u64 {
        prog = prog
            .compute_repeat(1_000, 40)
            .read_stride(base + chunk * 8_192, 64, 64);
    }
    prog.exit(0)
}

/// The P-process oversubscription cohort: identical programs, priority
/// `index % 2` (so priority RR and CFS have two classes to separate).
pub fn oversub_workload(procs: usize) -> Vec<(ProcProgram, u8)> {
    (0..procs)
        .map(|i| (oversub_worker(i), (i % 2) as u8))
        .collect()
}

/// Runs one oversubscription cell: P processes on C cores under `kind`.
pub fn run_oversub(cores: usize, procs: usize, kind: SchedKind) -> OsReport {
    Os::new(OsConfig::pi_with_cores(cores)).run(oversub_workload(procs), kind.make())
}

/// One cell of the oversubscription sweep.
#[derive(Debug, Clone)]
pub struct StudyCell {
    /// Cohort size P.
    pub procs: usize,
    /// Scheduler under test.
    pub kind: SchedKind,
    /// The run's full report.
    pub report: OsReport,
}

/// The oversubscription sweep: P ∈ `procs` × the three schedulers on a
/// fixed core count.
#[derive(Debug, Clone)]
pub struct OversubStudy {
    /// Core count C.
    pub cores: usize,
    /// Cells in sweep order (P-major, scheduler-minor).
    pub cells: Vec<StudyCell>,
}

impl OversubStudy {
    /// Digest over every cell's report digest *and* retired-work total,
    /// so either a schedule change or a lost unit of work trips the
    /// `BENCH_os.json` pin.
    pub fn digest(&self) -> u64 {
        let mut text = format!("oversub/v1 cores={}\n", self.cores);
        for cell in &self.cells {
            text.push_str(&format!(
                "p={} sched={} digest={:016x} retired={}\n",
                cell.procs,
                cell.kind.label(),
                cell.report.digest(),
                cell.report.retired_work
            ));
        }
        fnv1a(text.as_bytes())
    }
}

/// Runs the paper sweep: P ∈ `procs` on `cores` cores, all schedulers.
pub fn oversubscription_study(cores: usize, procs: &[usize]) -> OversubStudy {
    let cells = procs
        .iter()
        .flat_map(|&p| SchedKind::ALL.into_iter().map(move |kind| (p, kind)))
        .map(|(p, kind)| StudyCell {
            procs: p,
            kind,
            report: run_oversub(cores, p, kind),
        })
        .collect();
    OversubStudy { cores, cells }
}

/// The static-vs-guided loop comparison executed through the OS.
#[derive(Debug, Clone)]
pub struct LoopStudy {
    /// Simulated runtime threads (one process each).
    pub threads: usize,
    /// Cores they share.
    pub cores: usize,
    /// Loop iterations.
    pub iterations: usize,
    /// Report for `Schedule::StaticBlock`.
    pub static_report: OsReport,
    /// Report for `Schedule::Guided(16)`.
    pub guided_report: OsReport,
}

impl LoopStudy {
    /// Digest over both reports.
    pub fn digest(&self) -> u64 {
        let text = format!(
            "loop/v1 threads={} cores={} iters={} static={:016x} guided={:016x}\n",
            self.threads,
            self.cores,
            self.iterations,
            self.static_report.digest(),
            self.guided_report.digest()
        );
        fnv1a(text.as_bytes())
    }
}

/// Lowers one simulated thread's chunk list to a process program: each
/// chunk is a compute burst of its closed-form cost, with a `yield` at
/// every chunk boundary — the runtime's scheduling point.
fn thread_program(chunks: &[std::ops::Range<usize>], cost: &CostModel) -> ProcProgram {
    let mut prog = ProcProgram::new();
    for chunk in chunks {
        let c = cost.chunk_cost(chunk);
        if c > 0 {
            prog = prog.compute(c);
        }
        prog = prog.yield_cpu();
    }
    prog.exit(0)
}

/// Runs the patternlet loop study: 5 runtime threads on 4 cores over a
/// triangular (linearly growing) workload, static block vs guided.
pub fn loop_study() -> LoopStudy {
    let threads = 5;
    let cores = 4;
    let iterations = 512;
    let cost = CostModel::Linear {
        base: 500,
        slope: 40,
    };
    let run = |schedule: Schedule| {
        let plan = plan_assignment(iterations, &cost, schedule, threads);
        let procs = plan
            .iter()
            .map(|chunks| (thread_program(chunks, &cost), 0))
            .collect();
        Os::new(OsConfig::pi_with_cores(cores)).run(procs, Box::new(RoundRobin::new()))
    };
    LoopStudy {
        threads,
        cores,
        iterations,
        static_report: run(Schedule::StaticBlock),
        guided_report: run(Schedule::Guided(16)),
    }
}

/// Digest over both studies — the single pin `BENCH_os.json` carries.
pub fn study_digest() -> u64 {
    let oversub = oversubscription_study(4, &[4, 5, 8]);
    let loops = loop_study();
    let text = format!(
        "os-study/v1 oversub={:016x} loop={:016x}\n",
        oversub.digest(),
        loops.digest()
    );
    fnv1a(text.as_bytes())
}

/// The `report -- os` artefact: the oversubscription table, the loop
/// comparison, and a traced-run summary, all deterministic text.
pub fn os_artefact() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("OS inside pi-sim: preemptive scheduling on the quad-core Pi\n");
    out.push_str("===========================================================\n\n");
    out.push_str(
        "Oversubscription sweep: P identical workers on C = 4 cores.\n\
         Each worker retires the same units under every scheduler; only\n\
         *when* it runs changes. P = 5 is the paper's \"one thread too\n\
         many\" case: makespan barely moves but context switches and\n\
         ready-queue waits jump.\n\n",
    );
    let study = oversubscription_study(4, &[4, 5, 8]);
    out.push_str("  P  sched     makespan      ctx  preempt   yields   max_wait     spread\n");
    out.push_str("  -  -------  ---------  -------  -------  -------  ---------  ---------\n");
    for cell in &study.cells {
        let r = &cell.report;
        let max_wait = r.procs.iter().map(|p| p.max_ready_wait).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "  {}  {:<7}  {:>9}  {:>7}  {:>7}  {:>7}  {:>9}  {:>9}",
            cell.procs,
            cell.kind.label(),
            r.makespan,
            r.context_switches,
            r.involuntary_preemptions,
            r.voluntary_yields,
            max_wait,
            r.completion_spread()
        );
    }
    let _ = writeln!(out, "\n  sweep digest: 0x{:016x}", study.digest());

    out.push_str(
        "\nStatic vs guided loops as preemptible processes: 5 runtime\n\
         threads on 4 cores, triangular per-iteration cost. Guided\n\
         chunks shrink toward the tail, so no process drags a huge\n\
         static block across the oversubscribed finish line.\n\n",
    );
    let loops = loop_study();
    for (name, r) in [
        ("static", &loops.static_report),
        ("guided", &loops.guided_report),
    ] {
        let _ = writeln!(
            out,
            "  {:<7}  makespan {:>9}  ctx {:>5}  yields {:>5}  spread {:>9}",
            name,
            r.makespan,
            r.context_switches,
            r.voluntary_yields,
            r.completion_spread()
        );
    }
    let _ = writeln!(out, "\n  loop digest:  0x{:016x}", loops.digest());

    // One traced run so the artefact shows the event-level evidence.
    let (report, trace) = Os::new(OsConfig::pi_with_cores(4))
        .run_traced(oversub_workload(5), SchedKind::RoundRobin.make());
    let analysis = obs::trace::analyze::analyze(&trace);
    let (total, involuntary) = analysis.context_switches().unwrap_or((0, 0));
    let _ = writeln!(
        out,
        "\nTraced run (P = 5, rr): {} events across {} lanes; {} context\n\
         switches ({} involuntary); attribution exact: {}.",
        trace.events.len(),
        trace.lanes.len(),
        total,
        involuntary,
        analysis.attribution_is_exact()
    );
    let _ = writeln!(out, "report digest: 0x{:016x}", report.digest());
    let _ = writeln!(out, "study digest:  0x{:016x}", study_digest());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversub_retired_work_is_scheduler_invariant() {
        let per = oversub_worker(0).work_units();
        for p in [4usize, 5] {
            let retired: Vec<u64> = SchedKind::ALL
                .iter()
                .map(|&k| run_oversub(4, p, k).retired_work)
                .collect();
            assert!(
                retired.iter().all(|&r| r == per * p as u64),
                "P={p}: retired {retired:?} != {}",
                per * p as u64
            );
        }
    }

    #[test]
    fn oversubscription_increases_preemption_pressure() {
        let four = run_oversub(4, 4, SchedKind::RoundRobin);
        let five = run_oversub(4, 5, SchedKind::RoundRobin);
        let wait = |r: &OsReport| r.procs.iter().map(|p| p.max_ready_wait).max().unwrap_or(0);
        assert!(
            five.involuntary_preemptions > four.involuntary_preemptions,
            "four: {four:?}\nfive: {five:?}"
        );
        assert!(wait(&five) > wait(&four));
    }

    #[test]
    fn study_digest_is_stable_across_reruns() {
        assert_eq!(study_digest(), study_digest());
    }

    #[test]
    fn guided_beats_static_through_the_os() {
        let s = loop_study();
        assert!(
            s.guided_report.makespan < s.static_report.makespan,
            "static {} vs guided {}",
            s.static_report.makespan,
            s.guided_report.makespan
        );
    }

    #[test]
    fn artefact_renders_all_sections() {
        let a = os_artefact();
        assert!(a.contains("Oversubscription sweep"));
        assert!(a.contains("sweep digest: 0x"));
        assert!(a.contains("guided"));
        assert!(a.contains("attribution exact: true"));
        assert!(a.contains("study digest"));
    }
}
