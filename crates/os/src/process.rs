//! Processes as data: programs, registers, PCBs, and the
//! `Ready/Running/Blocked/Zombie` state machine.

use pi_sim::event::Cycles;

use crate::syscall::Syscall;

/// Process identifier. Pids are allocated sequentially from 0 in spawn
/// order, which makes every tie-break on pid deterministic.
pub type Pid = u32;

/// One step of a process program.
///
/// Compute and memory ops mirror the pi-sim program vocabulary and are
/// executed through the same cache hierarchy and bus-contention model;
/// machine-level sync ops (barriers, locks) are deliberately absent —
/// OS processes coordinate through syscalls instead, so every blocking
/// edge is a kernel event.
#[derive(Debug, Clone, PartialEq)]
pub enum OsOp {
    /// Burn CPU for the given cycles. Preemptible at cycle granularity:
    /// a quantum boundary splits the burst and the remainder is saved
    /// in the PCB's register snapshot.
    Compute(Cycles),
    /// `count` repetitions of a `cost`-cycle loop body (run-length
    /// encoded, same as pi-sim's RLE programs).
    ComputeRepeat {
        /// Cycles per repetition.
        cost: Cycles,
        /// Number of repetitions.
        count: u64,
    },
    /// One read through the cache hierarchy.
    Read(u64),
    /// One write through the cache hierarchy.
    Write(u64),
    /// One atomic read-modify-write (write + RMW penalty).
    AtomicRmw(u64),
    /// `count` reads at `base + i * stride`. Executed in batches; a
    /// preemption lands between batches (instruction boundary), with
    /// progress saved in the PCB.
    ReadStride {
        /// First address.
        base: u64,
        /// Address step per access.
        stride: u64,
        /// Number of accesses.
        count: u64,
    },
    /// `count` writes at `base + i * stride`.
    WriteStride {
        /// First address.
        base: u64,
        /// Address step per access.
        stride: u64,
        /// Number of accesses.
        count: u64,
    },
    /// Skip the next `n` ops when the syscall return register is 0 —
    /// i.e. in the child after a [`Syscall::Fork`] (and after a `Wait`
    /// that found no child). The only branch in the op set; costs zero
    /// cycles.
    SkipIfChild(usize),
    /// Enter the kernel: the explicit trap step. Costs
    /// [`crate::kernel::OsConfig::trap_cost`] cycles on the core.
    Trap(Syscall),
}

/// A process program: a finite op list. Running past the end is an
/// implicit `Exit(0)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProcProgram {
    /// The op list, executed in order (subject to [`OsOp::SkipIfChild`]).
    pub ops: Vec<OsOp>,
}

impl ProcProgram {
    /// An empty program (exits immediately).
    pub fn new() -> Self {
        ProcProgram { ops: Vec::new() }
    }

    /// Appends a compute burst.
    pub fn compute(mut self, cycles: Cycles) -> Self {
        self.ops.push(OsOp::Compute(cycles));
        self
    }

    /// Appends an RLE compute loop.
    pub fn compute_repeat(mut self, cost: Cycles, count: u64) -> Self {
        self.ops.push(OsOp::ComputeRepeat { cost, count });
        self
    }

    /// Appends one read.
    pub fn read(mut self, addr: u64) -> Self {
        self.ops.push(OsOp::Read(addr));
        self
    }

    /// Appends one write.
    pub fn write(mut self, addr: u64) -> Self {
        self.ops.push(OsOp::Write(addr));
        self
    }

    /// Appends one atomic read-modify-write.
    pub fn atomic_rmw(mut self, addr: u64) -> Self {
        self.ops.push(OsOp::AtomicRmw(addr));
        self
    }

    /// Appends a strided read batch.
    pub fn read_stride(mut self, base: u64, stride: u64, count: u64) -> Self {
        self.ops.push(OsOp::ReadStride {
            base,
            stride,
            count,
        });
        self
    }

    /// Appends a strided write batch.
    pub fn write_stride(mut self, base: u64, stride: u64, count: u64) -> Self {
        self.ops.push(OsOp::WriteStride {
            base,
            stride,
            count,
        });
        self
    }

    /// Appends an explicit trap.
    pub fn trap(mut self, sys: Syscall) -> Self {
        self.ops.push(OsOp::Trap(sys));
        self
    }

    /// Appends a `fork` trap.
    pub fn fork(self) -> Self {
        self.trap(Syscall::Fork)
    }

    /// Appends an `exec` trap.
    pub fn exec(self, program: ProcProgram) -> Self {
        self.trap(Syscall::Exec(program))
    }

    /// Appends a `wait` trap.
    pub fn wait(self) -> Self {
        self.trap(Syscall::Wait)
    }

    /// Appends a `sleep` trap.
    pub fn sleep(self, cycles: Cycles) -> Self {
        self.trap(Syscall::Sleep(cycles))
    }

    /// Appends a `yield` trap.
    pub fn yield_cpu(self) -> Self {
        self.trap(Syscall::Yield)
    }

    /// Appends a `kill` trap.
    pub fn kill(self, target: Pid) -> Self {
        self.trap(Syscall::Kill(target))
    }

    /// Appends a `signal` trap.
    pub fn signal(self, target: Pid, signal: crate::syscall::Signal) -> Self {
        self.trap(Syscall::Signal { target, signal })
    }

    /// Appends an `exit` trap.
    pub fn exit(self, code: i32) -> Self {
        self.trap(Syscall::Exit(code))
    }

    /// Appends a [`OsOp::SkipIfChild`] branch.
    pub fn skip_if_child(mut self, n: usize) -> Self {
        self.ops.push(OsOp::SkipIfChild(n));
        self
    }

    /// The program's retired-work units when executed straight through
    /// (no fork/exec): compute cycles plus memory-op count. This is the
    /// schedule-independent measure of work — memory *latencies* vary
    /// with cache and contention state, so they are not part of it.
    pub fn work_units(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                OsOp::Compute(c) => *c,
                OsOp::ComputeRepeat { cost, count } => cost.saturating_mul(*count),
                OsOp::Read(_) | OsOp::Write(_) | OsOp::AtomicRmw(_) => 1,
                OsOp::ReadStride { count, .. } | OsOp::WriteStride { count, .. } => *count,
                OsOp::SkipIfChild(_) | OsOp::Trap(_) => 0,
            })
            .sum()
    }
}

/// The register/PC snapshot saved and restored across context switches.
/// Together with the program text this is the *entire* resumable state
/// of a process — which is what makes preemption replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Regs {
    /// Index of the next op to execute.
    pub pc: usize,
    /// Unexecuted cycles of a partially completed compute burst.
    pub burst_remaining: Cycles,
    /// Completed accesses of the current stride op.
    pub unit_progress: u64,
    /// Syscall return register: child pid after `fork` in the parent,
    /// 0 in the child; reaped pid after `wait` (0 if no child).
    pub last_ret: u64,
}

/// Why a blocked process is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Sleeping until the given virtual time.
    Sleep {
        /// Absolute wake time.
        until: Cycles,
    },
    /// Waiting for a child to exit.
    WaitChild,
}

/// The process state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable, queued in the scheduler.
    Ready,
    /// Currently on a core.
    Running,
    /// Off the run queue until an event (wake time, child exit).
    Blocked(BlockReason),
    /// Exited; holds its exit code until reaped by the parent.
    Zombie,
}

/// A process control block: identity, tree links, saved registers,
/// scheduling parameters, and per-process accounting.
#[derive(Debug, Clone)]
pub struct Pcb {
    /// This process's pid.
    pub pid: Pid,
    /// Parent pid; `None` for initial processes and reparented orphans.
    pub parent: Option<Pid>,
    /// Children in spawn order.
    pub children: Vec<Pid>,
    /// Current state.
    pub state: ProcState,
    /// Saved registers.
    pub regs: Regs,
    /// Program text.
    pub program: ProcProgram,
    /// Static priority: 0 is highest. Round-robin ignores it, priority
    /// RR queues by it, CFS weights vruntime by it.
    pub priority: u8,
    /// CFS virtual runtime (integer; advances `(1 + priority)` cycles
    /// per cycle of CPU).
    pub vruntime: u64,
    /// Exit code once exited.
    pub exit_code: Option<i32>,
    /// True once the parent (or the kernel) collected the zombie.
    pub reaped: bool,
    /// Set by `kill`: the process dies at its next scheduling boundary.
    pub killed: bool,
    /// Pending (non-wake) signals received.
    pub pending_signals: u64,

    /// CPU cycles actually executed (compute + memory latencies).
    pub cpu_cycles: Cycles,
    /// Schedule-independent retired work: compute cycles + memory ops.
    pub retired_work: u64,
    /// Times switched onto a core.
    pub context_switches: u64,
    /// Quantum-expiry preemptions suffered.
    pub involuntary_preemptions: u64,
    /// Voluntary `yield` calls made.
    pub voluntary_yields: u64,
    /// Syscalls entered.
    pub syscalls: u64,
    /// When the process last became Ready (for wait accounting).
    pub ready_since: Cycles,
    /// Longest single Ready→dispatch wait observed.
    pub max_ready_wait: Cycles,
    /// Virtual time of exit (0 until exited).
    pub completed_at: Cycles,
}

impl Pcb {
    /// A fresh PCB in the Ready state.
    pub fn new(pid: Pid, parent: Option<Pid>, program: ProcProgram, priority: u8) -> Self {
        Pcb {
            pid,
            parent,
            children: Vec::new(),
            state: ProcState::Ready,
            regs: Regs::default(),
            program,
            priority,
            vruntime: 0,
            exit_code: None,
            reaped: false,
            killed: false,
            pending_signals: 0,
            cpu_cycles: 0,
            retired_work: 0,
            context_switches: 0,
            involuntary_preemptions: 0,
            voluntary_yields: 0,
            syscalls: 0,
            ready_since: 0,
            max_ready_wait: 0,
            completed_at: 0,
        }
    }

    /// True while the process can still run or be woken.
    pub fn alive(&self) -> bool {
        !matches!(self.state, ProcState::Zombie)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::Signal;

    #[test]
    fn builder_appends_in_order_and_counts_work() {
        let p = ProcProgram::new()
            .compute(100)
            .compute_repeat(10, 5)
            .read(64)
            .write_stride(0, 64, 7)
            .yield_cpu()
            .skip_if_child(2)
            .signal(3, Signal::Interrupt)
            .exit(0);
        assert_eq!(p.ops.len(), 8);
        // 100 + 50 compute cycles, 1 + 7 memory ops; traps are free.
        assert_eq!(p.work_units(), 158);
        assert!(matches!(p.ops[4], OsOp::Trap(Syscall::Yield)));
    }

    #[test]
    fn pcb_starts_ready_with_clean_registers() {
        let pcb = Pcb::new(3, Some(1), ProcProgram::new().compute(5), 2);
        assert_eq!(pcb.state, ProcState::Ready);
        assert_eq!(pcb.regs, Regs::default());
        assert!(pcb.alive());
        assert_eq!(pcb.priority, 2);
    }
}
