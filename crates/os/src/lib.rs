//! # pbl-os — an operating system inside pi-sim
//!
//! The paper's central timing experiments — 4 vs 5 threads on 4 Pi
//! cores, static vs guided scheduling — are really questions about
//! *preemption and oversubscription*, which the cooperative pi-sim
//! cores cannot express. This crate adds the missing OS layer, built
//! so the scheduler itself is an inspectable artifact rather than an
//! opaque host facility:
//!
//! * [`process`] — processes as data: a PCB with a register/PC
//!   snapshot, the `Ready/Running/Blocked/Zombie` state machine, and a
//!   parent/child tree.
//! * [`sched`] — the pluggable [`sched::Scheduler`] trait with
//!   round-robin, priority round-robin, and a CFS-style integer
//!   vruntime scheduler (deterministic `(vruntime, pid)` tie-breaks).
//! * [`syscall`] — `fork/exec/wait/sleep/yield/kill/signal/exit`,
//!   entered through an explicit trap step so every context switch is
//!   a replayable event.
//! * [`kernel`] — the machine: CPU cores, the OS timer, and the sleep
//!   queue are [`pi_sim::event::Component`]s under one
//!   [`pi_sim::event::Kernel`], so preemption interleaves with the
//!   existing cache/bus model in a single deterministic virtual-time
//!   order.
//! * [`study`] — the paper scenarios: the oversubscription sweep
//!   (P processes on C cores) and static-vs-guided patternlet loops
//!   executed as preemptible processes.
//!
//! Everything is bit-identical across runs and hosts: time is virtual,
//! ties resolve by `(time, component registration order)`, and every
//! report carries an FNV-1a digest that CI pins in `BENCH_os.json`.
//!
//! ```
//! use os::kernel::{Os, OsConfig};
//! use os::process::ProcProgram;
//! use os::sched::RoundRobin;
//!
//! // Five identical compute processes on a four-core Pi: the paper's
//! // "increase the number of threads to 5" question, now first-class.
//! let procs = (0..5)
//!     .map(|_| (ProcProgram::new().compute(200_000), 0))
//!     .collect();
//! let report = Os::new(OsConfig::pi()).run(procs, Box::new(RoundRobin::new()));
//! assert_eq!(report.procs.len(), 5);
//! assert!(report.involuntary_preemptions > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kernel;
pub mod process;
pub mod sched;
pub mod study;
pub mod syscall;

pub use kernel::{Os, OsConfig, OsReport, ProcReport};
pub use process::{Pcb, Pid, ProcProgram, ProcState};
pub use sched::{Cfs, PriorityRr, RoundRobin, Scheduler};
pub use syscall::{Signal, Syscall};
