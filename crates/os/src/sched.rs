//! Pluggable preemptive schedulers.
//!
//! The kernel owns *when* scheduling decisions happen (quantum expiry,
//! block, exit — all kernel events); a [`Scheduler`] only decides *who*
//! runs next. Every implementation is fully deterministic: queues are
//! FIFO per class and the CFS tree breaks ties on `(vruntime, pid)`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use pi_sim::event::Cycles;

use crate::process::{Pcb, Pid};

/// A run-queue policy.
pub trait Scheduler {
    /// The policy's name (report and digest label).
    fn name(&self) -> &'static str;
    /// `pcb` became runnable: add it to the run queue.
    fn enqueue(&mut self, pcb: &Pcb);
    /// Remove and return the next process to run, if any.
    fn pick(&mut self) -> Option<Pid>;
    /// Account `ran` cycles of CPU to `pcb` (vruntime bookkeeping).
    fn charge(&mut self, pcb: &mut Pcb, ran: Cycles);
    /// The timeslice to grant `pcb`, given the configured default.
    fn timeslice(&self, pcb: &Pcb, default_slice: Cycles) -> Cycles {
        let _ = pcb;
        default_slice
    }
    /// Number of queued runnable processes.
    fn queued(&self) -> usize;
}

/// Classic round-robin: one FIFO queue, equal slices for everyone.
#[derive(Debug, Default)]
pub struct RoundRobin {
    queue: VecDeque<Pid>,
}

impl RoundRobin {
    /// An empty round-robin queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "rr"
    }
    fn enqueue(&mut self, pcb: &Pcb) {
        self.queue.push_back(pcb.pid);
    }
    fn pick(&mut self) -> Option<Pid> {
        self.queue.pop_front()
    }
    fn charge(&mut self, _pcb: &mut Pcb, _ran: Cycles) {}
    fn queued(&self) -> usize {
        self.queue.len()
    }
}

/// Priority round-robin: one FIFO queue per priority level, strictly
/// highest (numerically lowest) level first — a starvation-prone
/// policy on purpose, so the oversubscription study can show it.
#[derive(Debug, Default)]
pub struct PriorityRr {
    queues: BTreeMap<u8, VecDeque<Pid>>,
    queued: usize,
}

impl PriorityRr {
    /// An empty priority round-robin queue set.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for PriorityRr {
    fn name(&self) -> &'static str {
        "prio_rr"
    }
    fn enqueue(&mut self, pcb: &Pcb) {
        self.queues
            .entry(pcb.priority)
            .or_default()
            .push_back(pcb.pid);
        self.queued += 1;
    }
    fn pick(&mut self) -> Option<Pid> {
        let (&level, _) = self.queues.iter().find(|(_, q)| !q.is_empty())?;
        let pid = self.queues.get_mut(&level)?.pop_front()?;
        self.queued -= 1;
        Some(pid)
    }
    fn charge(&mut self, _pcb: &mut Pcb, _ran: Cycles) {}
    fn queued(&self) -> usize {
        self.queued
    }
}

/// CFS-style fair scheduler over an integer virtual runtime.
///
/// The run queue is an ordered set of `(vruntime, pid)` — always pick
/// the smallest, ties broken by pid, so the order is deterministic with
/// no red-black-tree insertion nondeterminism to worry about. Charging
/// `ran` cycles advances vruntime by `ran * (1 + priority)`: priority 0
/// accrues at wall (virtual) rate, lower priorities proportionally
/// faster, so they run proportionally less. A process enqueued after a
/// sleep is clamped up to the minimum vruntime seen, so sleepers cannot
/// bank unbounded credit. Integer arithmetic throughout.
#[derive(Debug, Default)]
pub struct Cfs {
    tree: BTreeSet<(u64, Pid)>,
    min_vruntime: u64,
}

impl Cfs {
    /// An empty CFS run queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// The clamp floor: the smallest vruntime observed at any pick.
    pub fn min_vruntime(&self) -> u64 {
        self.min_vruntime
    }
}

impl Scheduler for Cfs {
    fn name(&self) -> &'static str {
        "cfs"
    }
    fn enqueue(&mut self, pcb: &Pcb) {
        let key = pcb.vruntime.max(self.min_vruntime);
        self.tree.insert((key, pcb.pid));
    }
    fn pick(&mut self) -> Option<Pid> {
        let (vruntime, pid) = self.tree.pop_first()?;
        self.min_vruntime = self.min_vruntime.max(vruntime);
        Some(pid)
    }
    fn charge(&mut self, pcb: &mut Pcb, ran: Cycles) {
        let weight = 1 + pcb.priority as u64;
        pcb.vruntime = pcb.vruntime.saturating_add(ran.saturating_mul(weight));
        // Keep the clamp floor from racing ahead of reality: it only
        // rises at picks, which is exactly "the least-run runnable
        // process's position".
        pcb.vruntime = pcb.vruntime.max(self.min_vruntime);
    }
    fn queued(&self) -> usize {
        self.tree.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcProgram;

    fn pcb(pid: Pid, priority: u8) -> Pcb {
        Pcb::new(pid, None, ProcProgram::new(), priority)
    }

    #[test]
    fn round_robin_is_fifo() {
        let mut s = RoundRobin::new();
        for pid in [3, 1, 2] {
            s.enqueue(&pcb(pid, 0));
        }
        assert_eq!(s.queued(), 3);
        assert_eq!(s.pick(), Some(3));
        assert_eq!(s.pick(), Some(1));
        assert_eq!(s.pick(), Some(2));
        assert_eq!(s.pick(), None);
    }

    #[test]
    fn priority_rr_drains_higher_levels_first() {
        let mut s = PriorityRr::new();
        s.enqueue(&pcb(10, 1));
        s.enqueue(&pcb(11, 0));
        s.enqueue(&pcb(12, 1));
        s.enqueue(&pcb(13, 0));
        let order: Vec<Pid> = std::iter::from_fn(|| s.pick()).collect();
        assert_eq!(order, vec![11, 13, 10, 12]);
    }

    #[test]
    fn cfs_picks_least_vruntime_with_pid_tiebreak() {
        let mut s = Cfs::new();
        let mut a = pcb(1, 0);
        let mut b = pcb(2, 0);
        a.vruntime = 100;
        b.vruntime = 100;
        s.enqueue(&b);
        s.enqueue(&a);
        assert_eq!(s.pick(), Some(1), "equal vruntime ties break on pid");
        assert_eq!(s.pick(), Some(2));
    }

    #[test]
    fn cfs_charges_vruntime_weighted_by_priority() {
        let mut s = Cfs::new();
        let mut nice0 = pcb(1, 0);
        let mut nice3 = pcb(2, 3);
        s.charge(&mut nice0, 10);
        s.charge(&mut nice3, 10);
        assert_eq!(nice0.vruntime, 10);
        assert_eq!(nice3.vruntime, 40, "priority 3 accrues 4x faster");
    }

    #[test]
    fn cfs_clamps_sleepers_to_min_vruntime() {
        let mut s = Cfs::new();
        let mut hog = pcb(1, 0);
        s.charge(&mut hog, 1_000);
        s.enqueue(&hog);
        assert_eq!(s.pick(), Some(1));
        assert_eq!(s.min_vruntime(), 1_000);
        // A long-sleeping process with stale vruntime 0 enqueues at the
        // floor, not infinitely in credit.
        let sleeper = pcb(2, 0);
        s.enqueue(&sleeper);
        assert!(s.tree.contains(&(1_000, 2)));
    }
}
