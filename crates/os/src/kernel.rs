//! The OS machine: CPU cores, the OS timer, and the sleep queue as
//! [`Component`]s under pi-sim's unified event [`Kernel`].
//!
//! ## Preemption determinism
//!
//! Every scheduling decision is a kernel event in virtual time:
//!
//! * Cores execute processes in *micro-steps* — a compute burst capped
//!   at the quantum deadline, one batch of memory accesses through the
//!   pi-sim cache hierarchy, or one explicit trap step. A micro-step is
//!   announced (`next_tick`) before it is committed (`tick`), so the
//!   event kernel totally orders it against every other component.
//! * The OS timer is its own component: it fires at quantum deadlines
//!   and *flags* the core for rescheduling; the core acts on the flag
//!   at its next instruction boundary — exactly the "timer interrupt,
//!   handled at the next safe point" structure of a real kernel, minus
//!   the races.
//! * Ties on virtual time resolve by component registration order
//!   (timer, then waker, then cores 0..C), so a run is a pure function
//!   of `(programs, scheduler, config)` — any `(scheduler, timeslice,
//!   seed)` triple replays bit-identically.
//!
//! Memory micro-steps go through [`pi_sim::cache::Hierarchy`] with the
//! [`MachineConfig`] latencies and bus-contention model, which is what
//! makes preemption *interleave* with the cache model: a context switch
//! moves a process's working set off a core's L1, and the report shows
//! the cost.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use obs::trace::{category, fnv1a, Trace, TraceConfig, TraceRecorder};
use pi_sim::cache::{Hierarchy, HitLevel};
use pi_sim::event::{Component, Cycles, Kernel};
use pi_sim::machine::MachineConfig;

use crate::process::{BlockReason, OsOp, Pcb, Pid, ProcProgram, ProcState, Regs};
use crate::sched::Scheduler;
use crate::syscall::{Signal, Syscall};

/// Configuration of the OS machine.
#[derive(Debug, Clone)]
pub struct OsConfig {
    /// Hardware cores (also sizes the cache hierarchy).
    pub cores: usize,
    /// Default scheduler quantum in cycles.
    pub timeslice: Cycles,
    /// Cost of switching a core to a different process.
    pub context_switch_cost: Cycles,
    /// Cost of the explicit trap step entering the kernel.
    pub trap_cost: Cycles,
    /// Memory accesses per micro-step for strided ops: preemption can
    /// only land between batches (instruction-boundary semantics).
    pub mem_batch: u64,
    /// Latency/contention model shared with the pi-sim machine.
    pub machine: MachineConfig,
    /// Per-lane trace ring capacity for traced runs.
    pub trace_capacity: usize,
}

impl OsConfig {
    /// The quad-core Raspberry Pi defaults.
    pub fn pi() -> Self {
        let machine = MachineConfig::pi();
        OsConfig {
            cores: machine.cores,
            timeslice: machine.quantum,
            context_switch_cost: machine.context_switch,
            trap_cost: 200,
            mem_batch: 32,
            machine,
            trace_capacity: 65_536,
        }
    }

    /// The Pi restricted to `cores` cores.
    pub fn pi_with_cores(cores: usize) -> Self {
        let mut cfg = Self::pi();
        cfg.cores = cores;
        cfg.machine.cores = cores;
        cfg
    }
}

/// What a core has announced it will complete at `busy_until`.
#[derive(Debug, Clone)]
enum Micro {
    /// Nothing in flight.
    Idle,
    /// Context-switch cost; the slice starts at commit.
    CtxIn,
    /// A compute burst of the given cycles.
    Compute(Cycles),
    /// A batch of memory accesses (cost precomputed at issue, when the
    /// cache state was mutated).
    Mem {
        cost: Cycles,
        ops: u64,
        completes_op: bool,
    },
    /// The explicit trap step.
    Trap(Syscall),
}

#[derive(Debug)]
struct CoreState {
    running: Option<Pid>,
    busy_until: Option<Cycles>,
    pending: Micro,
    /// Quantum deadline of the active slice (None during switch-in).
    deadline: Option<Cycles>,
    /// Set by the timer; acted on at the next instruction boundary.
    need_resched: bool,
}

enum Flow {
    /// The process keeps its core after the syscall.
    Continue,
    /// The process blocked, yielded, or exited.
    Descheduled,
}

struct Tracer {
    rec: TraceRecorder,
    core_lanes: Vec<u32>,
    sched_lane: u32,
    proc_lanes: Vec<u32>,
    /// Whether the proc lane currently has an open span.
    proc_open: Vec<bool>,
}

struct OsState {
    cfg: OsConfig,
    procs: Vec<Pcb>,
    sched: Box<dyn Scheduler>,
    cores: Vec<CoreState>,
    caches: Hierarchy,
    sleepers: BTreeSet<(Cycles, Pid)>,
    /// Virtual time of the most recent make_ready (idle-core wake hint).
    ready_stamp: Cycles,
    tracer: Option<Tracer>,
    context_switches: u64,
    syscalls: u64,
}

impl OsState {
    fn new(cfg: OsConfig, sched: Box<dyn Scheduler>, traced: bool) -> Self {
        let cores = (0..cfg.cores)
            .map(|_| CoreState {
                running: None,
                busy_until: None,
                pending: Micro::Idle,
                deadline: None,
                need_resched: false,
            })
            .collect();
        let caches = Hierarchy::pi(cfg.cores);
        let tracer = traced.then(|| {
            let mut rec = TraceRecorder::new(&TraceConfig {
                capacity_per_lane: cfg.trace_capacity,
            });
            let core_lanes = (0..cfg.cores)
                .map(|c| rec.lane(format!("core/{c}")))
                .collect();
            let sched_lane = rec.lane("os/sched");
            Tracer {
                rec,
                core_lanes,
                sched_lane,
                proc_lanes: Vec::new(),
                proc_open: Vec::new(),
            }
        });
        OsState {
            cfg,
            procs: Vec::new(),
            sched,
            cores,
            caches,
            sleepers: BTreeSet::new(),
            ready_stamp: 0,
            tracer,
            context_switches: 0,
            syscalls: 0,
        }
    }

    fn spawn(&mut self, parent: Option<Pid>, program: ProcProgram, priority: u8) -> Pid {
        let pid = self.procs.len() as Pid;
        if let Some(tr) = &mut self.tracer {
            let lane = tr.rec.lane(format!("proc/{pid}"));
            tr.proc_lanes.push(lane);
            tr.proc_open.push(false);
        }
        self.procs.push(Pcb::new(pid, parent, program, priority));
        pid
    }

    // --- tracing helpers -------------------------------------------------

    fn trace_begin_proc(&mut self, pid: Pid, now: Cycles, name: &str, cat: &'static str) {
        if let Some(tr) = &mut self.tracer {
            let lane = tr.proc_lanes[pid as usize];
            tr.rec.buf(lane).begin(now, name, cat, pid as u64);
            tr.proc_open[pid as usize] = true;
        }
    }

    fn trace_end_proc(&mut self, pid: Pid, now: Cycles) {
        if let Some(tr) = &mut self.tracer {
            if tr.proc_open[pid as usize] {
                let lane = tr.proc_lanes[pid as usize];
                tr.rec.buf(lane).end(now);
                tr.proc_open[pid as usize] = false;
            }
        }
    }

    fn trace_core_begin(
        &mut self,
        core: usize,
        now: Cycles,
        name: &str,
        cat: &'static str,
        v: u64,
    ) {
        if let Some(tr) = &mut self.tracer {
            let lane = tr.core_lanes[core];
            tr.rec.buf(lane).begin(now, name, cat, v);
        }
    }

    fn trace_core_end(&mut self, core: usize, now: Cycles) {
        if let Some(tr) = &mut self.tracer {
            let lane = tr.core_lanes[core];
            tr.rec.buf(lane).end(now);
        }
    }

    fn trace_switch_instant(&mut self, core: usize, now: Cycles, name: &str, pid: Pid) {
        if let Some(tr) = &mut self.tracer {
            let lane = tr.core_lanes[core];
            tr.rec
                .buf(lane)
                .instant(now, name, category::PREEMPT, pid as u64);
        }
    }

    fn trace_runq(&mut self, now: Cycles) {
        let depth = self.sched.queued() as u64;
        if let Some(tr) = &mut self.tracer {
            let lane = tr.sched_lane;
            tr.rec
                .buf(lane)
                .counter(now, "runq", category::QUEUE, depth);
        }
    }

    // --- scheduling core -------------------------------------------------

    fn make_ready(&mut self, pid: Pid, now: Cycles) {
        let pcb = &mut self.procs[pid as usize];
        pcb.state = ProcState::Ready;
        pcb.ready_since = now;
        self.sched.enqueue(&self.procs[pid as usize]);
        self.ready_stamp = now;
        self.trace_begin_proc(pid, now, "ready", category::SCHED_WAIT);
        self.trace_runq(now);
    }

    /// Pops runnable processes, reaping any that were killed while
    /// queued, until one can actually run.
    fn pick_runnable(&mut self, now: Cycles) -> Option<Pid> {
        loop {
            let pid = self.sched.pick()?;
            if self.procs[pid as usize].killed {
                self.exit_process(pid, -9, now);
                continue;
            }
            return Some(pid);
        }
    }

    fn try_dispatch(&mut self, core: usize, now: Cycles) {
        let Some(pid) = self.pick_runnable(now) else {
            return;
        };
        {
            let pcb = &mut self.procs[pid as usize];
            let wait = now.saturating_sub(pcb.ready_since);
            pcb.max_ready_wait = pcb.max_ready_wait.max(wait);
            pcb.state = ProcState::Running;
            pcb.context_switches += 1;
        }
        self.context_switches += 1;
        self.trace_end_proc(pid, now); // close the sched_wait span
        self.trace_core_begin(core, now, "ctx", category::PREEMPT, pid as u64);
        let c = &mut self.cores[core];
        c.running = Some(pid);
        c.pending = Micro::CtxIn;
        c.busy_until = Some(now + self.cfg.context_switch_cost);
        c.deadline = None;
        self.trace_runq(now);
    }

    /// Takes `pid` off `core` into the Ready queue (quantum expiry).
    fn preempt(&mut self, core: usize, pid: Pid, now: Cycles) {
        self.procs[pid as usize].involuntary_preemptions += 1;
        self.trace_core_end(core, now); // slice span
        self.trace_end_proc(pid, now);
        self.trace_switch_instant(core, now, "preempt", pid);
        self.make_ready(pid, now);
        let c = &mut self.cores[core];
        c.running = None;
        c.deadline = None;
    }

    /// Marks the end of `pid`'s tenure on `core` for a voluntary reason
    /// (block, yield, exit). Spans were already closed at the trap.
    fn voluntary_switch(&mut self, core: usize, pid: Pid, now: Cycles) {
        self.trace_switch_instant(core, now, "switch", pid);
        let c = &mut self.cores[core];
        c.running = None;
        c.deadline = None;
    }

    fn busy_cores(&self) -> usize {
        self.cores.iter().filter(|c| c.running.is_some()).count()
    }

    /// One access through the cache hierarchy with the machine's
    /// latency and bus-contention model (mirrors pi-sim's machine).
    fn access_cost(
        &mut self,
        core: usize,
        now: Cycles,
        addr: u64,
        write: bool,
        rmw: bool,
    ) -> Cycles {
        let outcome = self.caches.access(core, addr, write);
        let m = &self.cfg.machine;
        let base = match outcome.level {
            HitLevel::L1 => m.l1_latency,
            HitLevel::L2 => m.l2_latency,
            HitLevel::Memory => {
                let busy = self.busy_cores().max(1);
                let scaled =
                    m.memory_latency as f64 * (1.0 + m.contention_factor * (busy - 1) as f64);
                let cost = scaled.round() as Cycles;
                if busy > 1 {
                    let extra = cost.saturating_sub(m.memory_latency);
                    if let Some(tr) = &mut self.tracer {
                        let lane = tr.core_lanes[core];
                        tr.rec
                            .buf(lane)
                            .instant(now, "contention", category::BUS, extra);
                    }
                }
                cost
            }
        };
        let coherence = outcome.invalidations as Cycles * m.l2_latency;
        base + coherence + if rmw { m.rmw_penalty } else { 0 }
    }

    /// Terminates `pid`: zombie state, tree maintenance, parent wakeup.
    fn exit_process(&mut self, pid: Pid, code: i32, now: Cycles) {
        self.trace_end_proc(pid, now);
        let children = {
            let pcb = &mut self.procs[pid as usize];
            pcb.state = ProcState::Zombie;
            pcb.exit_code = Some(code);
            pcb.completed_at = now;
            std::mem::take(&mut pcb.children)
        };
        // Live orphans reparent to the kernel; dead ones keep their
        // historical parent link but are collected by the kernel.
        for child in &children {
            let c = &mut self.procs[*child as usize];
            if matches!(c.state, ProcState::Zombie) {
                c.reaped = true;
            } else {
                c.parent = None;
            }
        }
        self.procs[pid as usize].children = children;
        match self.procs[pid as usize].parent {
            Some(p) if self.procs[p as usize].alive() => {
                if matches!(
                    self.procs[p as usize].state,
                    ProcState::Blocked(BlockReason::WaitChild)
                ) {
                    self.procs[pid as usize].reaped = true;
                    self.procs[p as usize].regs.last_ret = pid as u64;
                    self.trace_end_proc(p, now); // close the wait span
                    self.make_ready(p, now);
                }
            }
            _ => self.procs[pid as usize].reaped = true,
        }
    }

    /// Force-terminates `target` (kill / Signal::Terminate).
    fn kill(&mut self, target: Pid, now: Cycles) {
        if target as usize >= self.procs.len() || !self.procs[target as usize].alive() {
            return;
        }
        match self.procs[target as usize].state {
            ProcState::Running => {
                // Dies at its next instruction boundary.
                self.procs[target as usize].killed = true;
                for c in &mut self.cores {
                    if c.running == Some(target) {
                        c.need_resched = true;
                    }
                }
            }
            ProcState::Ready => self.procs[target as usize].killed = true,
            ProcState::Blocked(reason) => {
                if let BlockReason::Sleep { until } = reason {
                    self.sleepers.remove(&(until, target));
                }
                self.exit_process(target, -9, now);
            }
            ProcState::Zombie => {}
        }
    }

    fn handle_syscall(&mut self, core: usize, pid: Pid, sys: Syscall, now: Cycles) -> Flow {
        match sys {
            Syscall::Fork => {
                let (program, priority, regs, vruntime) = {
                    let p = &self.procs[pid as usize];
                    (p.program.clone(), p.priority, p.regs, p.vruntime)
                };
                let child = self.spawn(Some(pid), program, priority);
                {
                    let c = &mut self.procs[child as usize];
                    c.regs = Regs {
                        last_ret: 0,
                        ..regs
                    };
                    c.vruntime = vruntime;
                }
                self.procs[pid as usize].regs.last_ret = child as u64;
                self.procs[pid as usize].children.push(child);
                self.make_ready(child, now);
                Flow::Continue
            }
            Syscall::Exec(program) => {
                let pcb = &mut self.procs[pid as usize];
                pcb.program = program;
                pcb.regs = Regs {
                    last_ret: 1,
                    ..Regs::default()
                };
                Flow::Continue
            }
            Syscall::Wait => {
                let zombie = self.procs[pid as usize]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| {
                        matches!(self.procs[c as usize].state, ProcState::Zombie)
                            && !self.procs[c as usize].reaped
                    });
                if let Some(z) = zombie {
                    self.procs[z as usize].reaped = true;
                    self.procs[pid as usize].regs.last_ret = z as u64;
                    return Flow::Continue;
                }
                let has_unreaped = self.procs[pid as usize]
                    .children
                    .iter()
                    .any(|&c| !self.procs[c as usize].reaped);
                if !has_unreaped {
                    self.procs[pid as usize].regs.last_ret = 0;
                    return Flow::Continue;
                }
                self.procs[pid as usize].state = ProcState::Blocked(BlockReason::WaitChild);
                self.voluntary_switch(core, pid, now);
                self.trace_begin_proc(pid, now, "wait", category::SYSCALL);
                Flow::Descheduled
            }
            Syscall::Sleep(d) => {
                let until = now + d;
                self.procs[pid as usize].state = ProcState::Blocked(BlockReason::Sleep { until });
                self.sleepers.insert((until, pid));
                self.voluntary_switch(core, pid, now);
                self.trace_begin_proc(pid, now, "sleep", category::SYSCALL);
                Flow::Descheduled
            }
            Syscall::Yield => {
                self.procs[pid as usize].voluntary_yields += 1;
                self.voluntary_switch(core, pid, now);
                self.make_ready(pid, now);
                Flow::Descheduled
            }
            Syscall::Kill(target)
            | Syscall::Signal {
                target,
                signal: Signal::Terminate,
            } => {
                if target == pid {
                    self.voluntary_switch(core, pid, now);
                    self.exit_process(pid, -9, now);
                    Flow::Descheduled
                } else {
                    self.kill(target, now);
                    Flow::Continue
                }
            }
            Syscall::Signal { target, signal } => {
                if (target as usize) < self.procs.len() && self.procs[target as usize].alive() {
                    let sleeping = matches!(
                        self.procs[target as usize].state,
                        ProcState::Blocked(BlockReason::Sleep { .. })
                    );
                    if signal == Signal::Interrupt && sleeping {
                        if let ProcState::Blocked(BlockReason::Sleep { until }) =
                            self.procs[target as usize].state
                        {
                            self.sleepers.remove(&(until, target));
                        }
                        self.trace_end_proc(target, now); // close the sleep span
                        self.make_ready(target, now);
                    } else {
                        self.procs[target as usize].pending_signals += 1;
                    }
                }
                Flow::Continue
            }
            Syscall::Exit(code) => {
                self.voluntary_switch(core, pid, now);
                self.exit_process(pid, code, now);
                Flow::Descheduled
            }
        }
    }

    /// Commits the micro-step that just completed on `core`.
    fn commit(&mut self, core: usize, now: Cycles) {
        let pending = std::mem::replace(&mut self.cores[core].pending, Micro::Idle);
        self.cores[core].busy_until = None;
        let Some(pid) = self.cores[core].running else {
            return;
        };
        match pending {
            Micro::Idle => {}
            Micro::CtxIn => {
                self.trace_core_end(core, now); // ctx span
                let slice = self
                    .sched
                    .timeslice(&self.procs[pid as usize], self.cfg.timeslice);
                self.cores[core].deadline = Some(now + slice);
                let name = format!("pid/{pid}");
                self.trace_core_begin(core, now, &name, category::SLICE, pid as u64);
                self.trace_begin_proc(pid, now, "run", category::SLICE);
            }
            Micro::Compute(step) => {
                {
                    let pcb = &mut self.procs[pid as usize];
                    pcb.cpu_cycles += step;
                    pcb.retired_work += step;
                    pcb.regs.burst_remaining -= step;
                    if pcb.regs.burst_remaining == 0 {
                        pcb.regs.pc += 1;
                    }
                }
                self.sched.charge(&mut self.procs[pid as usize], step);
            }
            Micro::Mem {
                cost,
                ops,
                completes_op,
            } => {
                {
                    let pcb = &mut self.procs[pid as usize];
                    pcb.cpu_cycles += cost;
                    pcb.retired_work += ops;
                    pcb.regs.unit_progress += ops;
                    if completes_op {
                        pcb.regs.pc += 1;
                        pcb.regs.unit_progress = 0;
                    }
                }
                self.sched.charge(&mut self.procs[pid as usize], cost);
            }
            Micro::Trap(sys) => {
                self.trace_core_end(core, now); // syscall span
                self.procs[pid as usize].syscalls += 1;
                self.syscalls += 1;
                self.procs[pid as usize].regs.pc += 1;
                match self.handle_syscall(core, pid, sys, now) {
                    Flow::Continue => {
                        let name = format!("pid/{pid}");
                        self.trace_core_begin(core, now, &name, category::SLICE, pid as u64);
                        self.trace_begin_proc(pid, now, "run", category::SLICE);
                    }
                    Flow::Descheduled => {}
                }
            }
        }
    }

    /// Decides and announces the next micro-step for `core`.
    fn issue(&mut self, core: usize, now: Cycles) {
        loop {
            let Some(pid) = self.cores[core].running else {
                self.try_dispatch(core, now);
                return;
            };
            if self.procs[pid as usize].killed {
                self.trace_core_end(core, now);
                self.trace_end_proc(pid, now);
                self.voluntary_switch(core, pid, now);
                self.exit_process(pid, -9, now);
                continue;
            }
            if let Some(deadline) = self.cores[core].deadline {
                if now >= deadline || self.cores[core].need_resched {
                    self.cores[core].need_resched = false;
                    if now >= deadline {
                        if self.sched.queued() > 0 {
                            self.preempt(core, pid, now);
                            continue;
                        }
                        // Nobody waiting: renew the slice in place, no
                        // context-switch cost.
                        let slice = self
                            .sched
                            .timeslice(&self.procs[pid as usize], self.cfg.timeslice);
                        self.cores[core].deadline = Some(now + slice);
                    }
                }
            }
            let deadline = match self.cores[core].deadline {
                Some(d) => d,
                // Still inside the switch-in (shouldn't issue here).
                None => return,
            };
            let pc = self.procs[pid as usize].regs.pc;
            if pc >= self.procs[pid as usize].program.ops.len() {
                // Implicit Exit(0): running off the end costs nothing.
                self.trace_core_end(core, now);
                self.trace_end_proc(pid, now);
                self.voluntary_switch(core, pid, now);
                self.exit_process(pid, 0, now);
                continue;
            }
            let op = self.procs[pid as usize].program.ops[pc].clone();
            match op {
                OsOp::SkipIfChild(n) => {
                    let child = self.procs[pid as usize].regs.last_ret == 0;
                    self.procs[pid as usize].regs.pc += if child { n + 1 } else { 1 };
                    continue;
                }
                OsOp::Compute(cycles) | OsOp::ComputeRepeat { cost: cycles, .. }
                    if matches!(op, OsOp::Compute(_)) && cycles == 0 =>
                {
                    self.procs[pid as usize].regs.pc += 1;
                    continue;
                }
                OsOp::Compute(cycles) => {
                    self.issue_compute(core, pid, now, deadline, cycles);
                    return;
                }
                OsOp::ComputeRepeat { cost, count } => {
                    let total = cost.saturating_mul(count);
                    if total == 0 {
                        self.procs[pid as usize].regs.pc += 1;
                        continue;
                    }
                    self.issue_compute(core, pid, now, deadline, total);
                    return;
                }
                OsOp::Read(addr) => {
                    let cost = self.access_cost(core, now, addr, false, false);
                    self.announce_mem(core, now, cost, 1, true);
                    return;
                }
                OsOp::Write(addr) => {
                    let cost = self.access_cost(core, now, addr, true, false);
                    self.announce_mem(core, now, cost, 1, true);
                    return;
                }
                OsOp::AtomicRmw(addr) => {
                    let cost = self.access_cost(core, now, addr, true, true);
                    self.announce_mem(core, now, cost, 1, true);
                    return;
                }
                OsOp::ReadStride {
                    base,
                    stride,
                    count,
                }
                | OsOp::WriteStride {
                    base,
                    stride,
                    count,
                } => {
                    if count == 0 {
                        self.procs[pid as usize].regs.pc += 1;
                        continue;
                    }
                    let write = matches!(op, OsOp::WriteStride { .. });
                    let done = self.procs[pid as usize].regs.unit_progress;
                    let n = (count - done).min(self.cfg.mem_batch.max(1));
                    let mut cost = 0;
                    for k in 0..n {
                        cost += self.access_cost(
                            core,
                            now,
                            base.wrapping_add((done + k).wrapping_mul(stride)),
                            write,
                            false,
                        );
                    }
                    self.announce_mem(core, now, cost, n, done + n >= count);
                    return;
                }
                OsOp::Trap(sys) => {
                    // End the slice; the trap step is its own span.
                    self.trace_core_end(core, now);
                    self.trace_end_proc(pid, now);
                    self.trace_core_begin(core, now, sys.name(), category::SYSCALL, pid as u64);
                    let c = &mut self.cores[core];
                    c.pending = Micro::Trap(sys);
                    c.busy_until = Some(now + self.cfg.trap_cost);
                    return;
                }
            }
        }
    }

    fn issue_compute(
        &mut self,
        core: usize,
        pid: Pid,
        now: Cycles,
        deadline: Cycles,
        total: Cycles,
    ) {
        let pcb = &mut self.procs[pid as usize];
        let remaining = if pcb.regs.burst_remaining > 0 {
            pcb.regs.burst_remaining
        } else {
            total
        };
        pcb.regs.burst_remaining = remaining;
        let horizon = deadline.saturating_sub(now).max(1);
        let step = remaining.min(horizon);
        let c = &mut self.cores[core];
        c.pending = Micro::Compute(step);
        c.busy_until = Some(now + step);
    }

    fn announce_mem(
        &mut self,
        core: usize,
        now: Cycles,
        cost: Cycles,
        ops: u64,
        completes_op: bool,
    ) {
        let c = &mut self.cores[core];
        c.pending = Micro::Mem {
            cost,
            ops,
            completes_op,
        };
        c.busy_until = Some(now + cost.max(1));
    }
}

// --- components ----------------------------------------------------------

/// The OS timer: fires at quantum deadlines and flags the core.
struct Timer {
    os: Rc<RefCell<OsState>>,
}

impl Component for Timer {
    fn next_tick(&self) -> Option<Cycles> {
        let s = self.os.borrow();
        s.cores
            .iter()
            .filter(|c| c.running.is_some() && !c.need_resched)
            .filter_map(|c| c.deadline)
            .min()
    }
    fn tick(&mut self, now: Cycles) {
        let mut s = self.os.borrow_mut();
        for c in s.cores.iter_mut() {
            if c.running.is_some() && !c.need_resched && c.deadline.is_some_and(|d| d <= now) {
                c.need_resched = true;
            }
        }
    }
}

/// The sleep queue: wakes sleeping processes at their deadlines.
struct Waker {
    os: Rc<RefCell<OsState>>,
}

impl Component for Waker {
    fn next_tick(&self) -> Option<Cycles> {
        self.os.borrow().sleepers.first().map(|&(t, _)| t)
    }
    fn tick(&mut self, now: Cycles) {
        let mut s = self.os.borrow_mut();
        while let Some(&(until, pid)) = s.sleepers.first() {
            if until > now {
                break;
            }
            s.sleepers.remove(&(until, pid));
            s.trace_end_proc(pid, now); // close the sleep span
            s.make_ready(pid, now);
        }
    }
}

/// One CPU core executing micro-steps of its current process.
struct Cpu {
    os: Rc<RefCell<OsState>>,
    core: usize,
}

impl Component for Cpu {
    fn next_tick(&self) -> Option<Cycles> {
        let s = self.os.borrow();
        let c = &s.cores[self.core];
        if let Some(t) = c.busy_until {
            Some(t)
        } else if c.running.is_none() && s.sched.queued() > 0 {
            Some(s.ready_stamp)
        } else {
            None
        }
    }
    fn tick(&mut self, now: Cycles) {
        let mut s = self.os.borrow_mut();
        if s.cores[self.core].busy_until.is_some_and(|t| t <= now) {
            s.commit(self.core, now);
        }
        if s.cores[self.core].busy_until.is_none() {
            s.issue(self.core, now);
        }
    }
}

// --- reports -------------------------------------------------------------

/// Per-process accounting in an [`OsReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcReport {
    /// The process.
    pub pid: Pid,
    /// Parent pid at exit (None for roots and orphans).
    pub parent: Option<Pid>,
    /// Static priority.
    pub priority: u8,
    /// CPU cycles executed (compute + memory latencies).
    pub cpu_cycles: Cycles,
    /// Schedule-independent retired work (compute cycles + memory ops).
    pub retired_work: u64,
    /// Times switched onto a core.
    pub context_switches: u64,
    /// Quantum-expiry preemptions suffered.
    pub involuntary_preemptions: u64,
    /// Voluntary yields made.
    pub voluntary_yields: u64,
    /// Syscalls entered.
    pub syscalls: u64,
    /// Longest single Ready→dispatch wait.
    pub max_ready_wait: Cycles,
    /// Virtual completion time (0 if never completed).
    pub completed_at: Cycles,
    /// Exit code (None if the run ended with the process not exited).
    pub exit_code: Option<i32>,
}

/// The result of one OS run. All fields are integers and the digest is
/// a pure function of them, so a report is bit-comparable across runs
/// and hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsReport {
    /// The scheduler that produced the run.
    pub scheduler: &'static str,
    /// Virtual makespan: time of the last kernel event.
    pub makespan: Cycles,
    /// Total context switches (dispatches with switch-in cost).
    pub context_switches: u64,
    /// Total quantum-expiry preemptions.
    pub involuntary_preemptions: u64,
    /// Total voluntary yields.
    pub voluntary_yields: u64,
    /// Total syscalls.
    pub syscalls: u64,
    /// Total retired work across all processes — scheduler-invariant.
    pub retired_work: u64,
    /// Per-process rows in pid order.
    pub procs: Vec<ProcReport>,
}

impl OsReport {
    /// Max − min completion time over completed processes: the
    /// fairness spread (how unevenly the scheduler finished an
    /// identical cohort).
    pub fn completion_spread(&self) -> Cycles {
        let done: Vec<Cycles> = self
            .procs
            .iter()
            .filter(|p| p.exit_code.is_some())
            .map(|p| p.completed_at)
            .collect();
        match (done.iter().max(), done.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// Canonical text form: every accounting field, integers only.
    /// The digest is the FNV-1a hash of this string.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "os-report/v1 sched={} makespan={} ctx={} preempt={} yield={} sys={} retired={}\n",
            self.scheduler,
            self.makespan,
            self.context_switches,
            self.involuntary_preemptions,
            self.voluntary_yields,
            self.syscalls,
            self.retired_work
        );
        for p in &self.procs {
            let _ = writeln!(
                out,
                "pid={} parent={} prio={} cpu={} retired={} ctx={} preempt={} yield={} sys={} maxwait={} done={} exit={}",
                p.pid,
                p.parent.map_or(-1, |x| x as i64),
                p.priority,
                p.cpu_cycles,
                p.retired_work,
                p.context_switches,
                p.involuntary_preemptions,
                p.voluntary_yields,
                p.syscalls,
                p.max_ready_wait,
                p.completed_at,
                p.exit_code.map_or(i64::MIN, |c| c as i64)
            );
        }
        out
    }

    /// FNV-1a digest of [`OsReport::canonical`].
    pub fn digest(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }
}

/// The OS machine front-end.
#[derive(Debug, Clone)]
pub struct Os {
    cfg: OsConfig,
}

impl Os {
    /// An OS over the given configuration.
    pub fn new(cfg: OsConfig) -> Self {
        Os { cfg }
    }

    /// The quad-core Pi defaults.
    pub fn pi() -> Self {
        Os::new(OsConfig::pi())
    }

    /// Runs `procs` (program, priority) to completion under `sched`.
    pub fn run(&self, procs: Vec<(ProcProgram, u8)>, sched: Box<dyn Scheduler>) -> OsReport {
        self.run_inner(procs, sched, false).0
    }

    /// Like [`Os::run`], also recording an `obs::trace` with per-core
    /// and per-process lanes, `syscall` trap spans, and `preempt`
    /// context-switch instants.
    pub fn run_traced(
        &self,
        procs: Vec<(ProcProgram, u8)>,
        sched: Box<dyn Scheduler>,
    ) -> (OsReport, Trace) {
        let (report, trace) = self.run_inner(procs, sched, true);
        (report, trace.expect("traced run yields a trace"))
    }

    fn run_inner(
        &self,
        procs: Vec<(ProcProgram, u8)>,
        sched: Box<dyn Scheduler>,
        traced: bool,
    ) -> (OsReport, Option<Trace>) {
        let mut state = OsState::new(self.cfg.clone(), sched, traced);
        for (program, priority) in procs {
            let pid = state.spawn(None, program, priority);
            state.make_ready(pid, 0);
        }
        let state = Rc::new(RefCell::new(state));
        let mut kernel = Kernel::new();
        kernel.register(Box::new(Timer {
            os: Rc::clone(&state),
        }));
        kernel.register(Box::new(Waker {
            os: Rc::clone(&state),
        }));
        for core in 0..self.cfg.cores {
            kernel.register(Box::new(Cpu {
                os: Rc::clone(&state),
                core,
            }));
        }
        kernel.run();
        let makespan = kernel.now();
        drop(kernel);
        let state = Rc::try_unwrap(state)
            .ok()
            .expect("kernel components were dropped")
            .into_inner();
        state.into_report(makespan)
    }
}

impl OsState {
    fn into_report(mut self, makespan: Cycles) -> (OsReport, Option<Trace>) {
        let scheduler = self.sched.name();
        let procs: Vec<ProcReport> = self
            .procs
            .iter()
            .map(|p| ProcReport {
                pid: p.pid,
                parent: p.parent,
                priority: p.priority,
                cpu_cycles: p.cpu_cycles,
                retired_work: p.retired_work,
                context_switches: p.context_switches,
                involuntary_preemptions: p.involuntary_preemptions,
                voluntary_yields: p.voluntary_yields,
                syscalls: p.syscalls,
                max_ready_wait: p.max_ready_wait,
                completed_at: p.completed_at,
                exit_code: p.exit_code,
            })
            .collect();
        let report = OsReport {
            scheduler,
            makespan,
            context_switches: self.context_switches,
            involuntary_preemptions: procs.iter().map(|p| p.involuntary_preemptions).sum(),
            voluntary_yields: procs.iter().map(|p| p.voluntary_yields).sum(),
            syscalls: self.syscalls,
            retired_work: procs.iter().map(|p| p.retired_work).sum(),
            procs,
        };
        let trace = self.tracer.take().map(|tr| tr.rec.finish());
        (report, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Cfs, PriorityRr, RoundRobin};

    fn compute_procs(n: usize, cycles: Cycles) -> Vec<(ProcProgram, u8)> {
        (0..n)
            .map(|_| (ProcProgram::new().compute(cycles), 0))
            .collect()
    }

    #[test]
    fn single_process_runs_to_completion() {
        let r = Os::pi().run(compute_procs(1, 10_000), Box::new(RoundRobin::new()));
        assert_eq!(r.procs.len(), 1);
        assert_eq!(r.procs[0].exit_code, Some(0));
        assert_eq!(r.procs[0].retired_work, 10_000);
        assert_eq!(r.context_switches, 1);
        assert_eq!(r.involuntary_preemptions, 0);
        // Makespan = ctx-in + compute.
        assert_eq!(r.makespan, 1_000 + 10_000);
    }

    #[test]
    fn oversubscription_preempts_and_retires_all_work() {
        // 5 processes, 4 cores, each 4x the timeslice: preemption must
        // occur and every process must finish all its work.
        let cfg = OsConfig::pi();
        let per = cfg.timeslice * 4;
        let r = Os::new(cfg).run(compute_procs(5, per), Box::new(RoundRobin::new()));
        assert!(r.involuntary_preemptions > 0, "{r:?}");
        assert_eq!(r.retired_work, 5 * per);
        assert!(r.procs.iter().all(|p| p.exit_code == Some(0)));
    }

    #[test]
    fn runs_replay_bit_identically() {
        let mk = || {
            let procs = (0..5)
                .map(|i| {
                    (
                        ProcProgram::new()
                            .compute(120_000)
                            .read_stride(i << 20, 64, 100)
                            .yield_cpu()
                            .compute(80_000),
                        (i % 2) as u8,
                    )
                })
                .collect();
            Os::pi().run(procs, Box::new(Cfs::new()))
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
    }

    #[test]
    fn fork_wait_exit_maintains_the_process_tree() {
        // Parent forks; the child (last_ret == 0) jumps over the
        // parent's ops, computes, and exits 7; the parent waits for it
        // and exits 0.
        let prog = ProcProgram::new()
            .fork()
            .skip_if_child(2) // child jumps over the parent branch
            .wait() // parent
            .exit(0) // parent
            .compute(5_000) // child
            .exit(7); // child
        let r = Os::pi().run(vec![(prog, 0)], Box::new(RoundRobin::new()));
        assert_eq!(r.procs.len(), 2);
        assert_eq!(r.procs[0].exit_code, Some(0));
        assert_eq!(r.procs[1].exit_code, Some(7));
        assert_eq!(r.procs[1].parent, Some(0));
        assert!(r.procs[1].completed_at <= r.procs[0].completed_at);
    }

    #[test]
    fn sleep_blocks_and_wakes_at_the_deadline() {
        let prog = ProcProgram::new()
            .compute(1_000)
            .sleep(500_000)
            .compute(1_000);
        let r = Os::pi().run(vec![(prog, 0)], Box::new(RoundRobin::new()));
        assert_eq!(r.procs[0].exit_code, Some(0));
        assert!(r.makespan >= 500_000, "sleep must hold the clock: {r:?}");
        assert_eq!(r.procs[0].retired_work, 2_000);
    }

    #[test]
    fn kill_terminates_a_ready_process() {
        // pid 0 kills pid 1 before it finishes its long compute.
        let killer = ProcProgram::new().kill(1).exit(0);
        let victim = ProcProgram::new().compute(100_000_000);
        let r = Os::new(OsConfig::pi_with_cores(1))
            .run(vec![(killer, 0), (victim, 0)], Box::new(RoundRobin::new()));
        assert_eq!(r.procs[1].exit_code, Some(-9));
        assert!(r.makespan < 100_000_000);
    }

    #[test]
    fn signal_interrupt_wakes_a_sleeper_early() {
        let sleeper = ProcProgram::new().sleep(1_000_000_000);
        let signaler = ProcProgram::new()
            .compute(10_000)
            .signal(0, Signal::Interrupt);
        let r = Os::pi().run(
            vec![(sleeper, 0), (signaler, 0)],
            Box::new(RoundRobin::new()),
        );
        assert_eq!(r.procs[0].exit_code, Some(0));
        assert!(
            r.makespan < 1_000_000,
            "EINTR wake must cut the sleep short"
        );
    }

    #[test]
    fn exec_replaces_the_program() {
        let replacement = ProcProgram::new().compute(3_000).exit(42);
        let prog = ProcProgram::new().compute(1_000).exec(replacement);
        let r = Os::pi().run(vec![(prog, 0)], Box::new(RoundRobin::new()));
        assert_eq!(r.procs[0].exit_code, Some(42));
        assert_eq!(r.procs[0].retired_work, 4_000);
    }

    #[test]
    fn priority_rr_runs_high_priority_first() {
        // One core, two priorities: both ready at t=0, the priority-0
        // process must finish first even though it was spawned second.
        let cfg = OsConfig::pi_with_cores(1);
        let per = cfg.timeslice * 3;
        let procs = vec![
            (ProcProgram::new().compute(per), 1),
            (ProcProgram::new().compute(per), 0),
        ];
        let r = Os::new(cfg).run(procs, Box::new(PriorityRr::new()));
        assert!(r.procs[1].completed_at < r.procs[0].completed_at, "{r:?}");
    }

    #[test]
    fn cfs_shares_a_core_more_fairly_than_fifo_order() {
        let cfg = OsConfig::pi_with_cores(2);
        let per = cfg.timeslice * 6;
        let r = Os::new(cfg.clone()).run(compute_procs(4, per), Box::new(Cfs::new()));
        assert_eq!(r.retired_work, 4 * per);
        // With equal weights everyone gets preempted and completion
        // times cluster: spread well under one process's full runtime.
        assert!(r.completion_spread() < per, "{r:?}");
    }

    #[test]
    fn traced_run_matches_untraced_report() {
        let mk_procs = || compute_procs(5, 150_000);
        let plain = Os::pi().run(mk_procs(), Box::new(RoundRobin::new()));
        let (traced, trace) = Os::pi().run_traced(mk_procs(), Box::new(RoundRobin::new()));
        assert_eq!(plain, traced, "observer effect: tracing changed the run");
        let analysis = obs::trace::analyze::analyze(&trace);
        assert!(analysis.attribution_is_exact());
        let (total, invol) = analysis.context_switches().expect("OS trace has switches");
        assert_eq!(invol, traced.involuntary_preemptions);
        // Voluntary switch instants: one per exit plus one per yield.
        assert_eq!(total - invol, 5 + traced.voluntary_yields);
    }
}
