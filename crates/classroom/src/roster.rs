//! Cohort generation matched to the paper's demographics: 124 students,
//! two sections of 62, with 16 women in section 0 and 10 in section 1
//! (98 male / 26 female ≙ 79.03% / 20.97%).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::student::{Gender, Student, MAX_EXPERIENCE};

/// Paper demographics: total cohort size.
pub const COHORT_SIZE: usize = 124;
/// Paper demographics: students per section.
pub const SECTION_SIZE: usize = 62;
/// Paper demographics: women per section.
pub const WOMEN_PER_SECTION: [usize; 2] = [16, 10];

/// Generates the demographically matched cohort, deterministically from
/// `seed`. GPA is drawn from a clamped normal around the departmental
/// B-average; experience levels are skewed toward "some".
pub fn generate_cohort(seed: u64) -> Vec<Student> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut students = Vec::with_capacity(COHORT_SIZE);
    for (section, &women_in_section) in WOMEN_PER_SECTION.iter().enumerate() {
        for slot in 0..SECTION_SIZE {
            let gender = if slot < women_in_section {
                Gender::Female
            } else {
                Gender::Male
            };
            // Clamped normal GPA around 3.0, sd 0.5 (Box–Muller).
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let gpa = (3.0 + 0.5 * z).clamp(2.0, 4.0);
            let level = |rng: &mut SmallRng| -> u8 {
                // Skewed toward 1–2: weights 15/40/30/15.
                let roll: f64 = rng.gen();
                if roll < 0.15 {
                    0
                } else if roll < 0.55 {
                    1
                } else if roll < 0.85 {
                    2
                } else {
                    MAX_EXPERIENCE
                }
            };
            students.push(Student {
                id: section * SECTION_SIZE + slot,
                section,
                gender,
                gpa,
                programming: level(&mut rng),
                group_work: level(&mut rng),
                writing: level(&mut rng),
            });
        }
    }
    students
}

/// Gender counts of a roster: `(male, female)`.
pub fn gender_counts(students: &[Student]) -> (usize, usize) {
    let female = students
        .iter()
        .filter(|s| s.gender == Gender::Female)
        .count();
    (students.len() - female, female)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_matches_paper_demographics() {
        let cohort = generate_cohort(1);
        assert_eq!(cohort.len(), 124);
        let (male, female) = gender_counts(&cohort);
        assert_eq!(male, 98);
        assert_eq!(female, 26);
        for (section, &expected_women) in WOMEN_PER_SECTION.iter().enumerate() {
            let in_section: Vec<_> = cohort.iter().filter(|s| s.section == section).collect();
            assert_eq!(in_section.len(), 62);
            let women = in_section
                .iter()
                .filter(|s| s.gender == Gender::Female)
                .count();
            assert_eq!(women, expected_women);
        }
    }

    #[test]
    fn percentages_match_the_paper() {
        let cohort = generate_cohort(3);
        let (male, female) = gender_counts(&cohort);
        let male_pct = male as f64 / cohort.len() as f64 * 100.0;
        let female_pct = female as f64 / cohort.len() as f64 * 100.0;
        assert!((male_pct - 79.03).abs() < 0.01);
        assert!((female_pct - 20.97).abs() < 0.01);
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let cohort = generate_cohort(5);
        for (i, s) in cohort.iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_cohort(9), generate_cohort(9));
        assert_ne!(
            generate_cohort(9).iter().map(|s| s.gpa).collect::<Vec<_>>(),
            generate_cohort(10)
                .iter()
                .map(|s| s.gpa)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn gpas_in_range_and_varied() {
        let cohort = generate_cohort(2);
        assert!(cohort.iter().all(|s| (2.0..=4.0).contains(&s.gpa)));
        let mean: f64 = cohort.iter().map(|s| s.gpa).sum::<f64>() / 124.0;
        assert!((mean - 3.0).abs() < 0.2, "mean GPA {mean}");
        let distinct: std::collections::HashSet<u64> =
            cohort.iter().map(|s| s.gpa.to_bits()).collect();
        assert!(distinct.len() > 60, "GPAs vary");
    }

    #[test]
    fn experience_levels_cover_the_scale() {
        let cohort = generate_cohort(4);
        for level in 0..=MAX_EXPERIENCE {
            assert!(
                cohort.iter().any(|s| s.programming == level),
                "level {level} present"
            );
        }
    }
}
