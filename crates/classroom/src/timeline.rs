//! Figure 1: the 15-week semester timeline — team formation, five
//! two-week assignments, five quizzes, the two surveys, midterm, and
//! final.

/// A scheduled course event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Week-1 team formation.
    TeamFormation,
    /// Assignment `n` (1–5) runs over the two listed weeks.
    Assignment(u8),
    /// Quiz following assignment `n`.
    Quiz(u8),
    /// Survey wave 1 (mid-semester) or 2 (end of term).
    Survey(u8),
    /// Midterm exam.
    Midterm,
    /// Final exam.
    FinalExam,
}

/// One timeline entry: the event and its week span (1-based, inclusive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// The event.
    pub event: Event,
    /// First week of the event.
    pub start_week: u8,
    /// Last week of the event.
    pub end_week: u8,
}

/// Total semester length in weeks.
pub const SEMESTER_WEEKS: u8 = 15;

/// Builds the Fig. 1 timeline.
pub fn semester_timeline() -> Vec<ScheduledEvent> {
    let mut events = vec![ScheduledEvent {
        event: Event::TeamFormation,
        start_week: 1,
        end_week: 1,
    }];
    // Five two-week assignments starting week 2.
    for a in 1..=5u8 {
        let start = 2 + (a - 1) * 2;
        events.push(ScheduledEvent {
            event: Event::Assignment(a),
            start_week: start,
            end_week: start + 1,
        });
        events.push(ScheduledEvent {
            event: Event::Quiz(a),
            start_week: start + 2,
            end_week: start + 2,
        });
    }
    events.push(ScheduledEvent {
        event: Event::Survey(1),
        start_week: 8,
        end_week: 8,
    });
    events.push(ScheduledEvent {
        event: Event::Midterm,
        start_week: 8,
        end_week: 8,
    });
    events.push(ScheduledEvent {
        event: Event::Survey(2),
        start_week: SEMESTER_WEEKS,
        end_week: SEMESTER_WEEKS,
    });
    events.push(ScheduledEvent {
        event: Event::FinalExam,
        start_week: SEMESTER_WEEKS,
        end_week: SEMESTER_WEEKS,
    });
    events
}

/// Renders the timeline as the text form of Fig. 1.
pub fn render_timeline() -> String {
    let mut out = String::from("Week | Event\n-----+------\n");
    let mut events = semester_timeline();
    events.sort_by_key(|e| e.start_week);
    for e in events {
        let label = match e.event {
            Event::TeamFormation => {
                "Team formation (criteria-based, 26 diverse groups)".to_string()
            }
            Event::Assignment(n) => format!("Assignment {n} (two weeks)"),
            Event::Quiz(n) => format!("Quiz {n}"),
            Event::Survey(n) => format!(
                "Survey wave {n} ({})",
                if n == 1 {
                    "mid-semester"
                } else {
                    "end of term"
                }
            ),
            Event::Midterm => "Midterm exam".to_string(),
            Event::FinalExam => "Final exam".to_string(),
        };
        if e.start_week == e.end_week {
            out.push_str(&format!("{:>4} | {label}\n", e.start_week));
        } else {
            out.push_str(&format!(
                "{:>2}-{:<2} | {label}\n",
                e.start_week, e.end_week
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_assignments_of_two_weeks_each() {
        let timeline = semester_timeline();
        let assignments: Vec<&ScheduledEvent> = timeline
            .iter()
            .filter(|e| matches!(e.event, Event::Assignment(_)))
            .collect();
        assert_eq!(assignments.len(), 5);
        for a in &assignments {
            assert_eq!(a.end_week - a.start_week + 1, 2, "{a:?}");
        }
    }

    #[test]
    fn assignments_are_consecutive_and_fit_the_semester() {
        let timeline = semester_timeline();
        let mut starts: Vec<u8> = timeline
            .iter()
            .filter_map(|e| match e.event {
                Event::Assignment(_) => Some(e.start_week),
                _ => None,
            })
            .collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![2, 4, 6, 8, 10]);
        assert!(timeline.iter().all(|e| e.end_week <= SEMESTER_WEEKS));
    }

    #[test]
    fn surveys_at_midpoint_and_end() {
        let timeline = semester_timeline();
        let survey1 = timeline
            .iter()
            .find(|e| e.event == Event::Survey(1))
            .unwrap();
        let survey2 = timeline
            .iter()
            .find(|e| e.event == Event::Survey(2))
            .unwrap();
        assert_eq!(survey1.start_week, 8, "mid-semester");
        assert_eq!(survey2.start_week, 15, "end of term");
    }

    #[test]
    fn one_quiz_per_assignment() {
        let timeline = semester_timeline();
        let quizzes = timeline
            .iter()
            .filter(|e| matches!(e.event, Event::Quiz(_)))
            .count();
        assert_eq!(quizzes, 5);
    }

    #[test]
    fn team_formation_is_week_one() {
        let timeline = semester_timeline();
        let tf = timeline
            .iter()
            .find(|e| e.event == Event::TeamFormation)
            .unwrap();
        assert_eq!(tf.start_week, 1);
    }

    #[test]
    fn render_mentions_every_event_kind() {
        let text = render_timeline();
        for needle in [
            "Team formation",
            "Assignment 1",
            "Assignment 5",
            "Quiz 3",
            "Survey wave 1",
            "Survey wave 2",
            "Midterm",
            "Final exam",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }
}
