//! The "Collaboration" deliverable: simulated team activity on the four
//! required technologies (Slack, GitHub, Google Docs, YouTube), the
//! collaboration score the rubric grades, and the peer ratings that
//! activity justifies.
//!
//! Every assignment requires evidence of collaboration; this module
//! generates per-member activity from engagement (ability plus noise,
//! with an optional free-rider), scores its volume and balance, and
//! derives the peer-rating form each member would submit.

use stats::rng::Xoshiro256;

use crate::assignment::PeerRating;
use crate::student::Student;
use crate::team::Team;

/// One member's activity across the four technologies for one
/// assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberActivity {
    /// Student id.
    pub student: usize,
    /// Slack messages sent.
    pub slack_messages: u32,
    /// GitHub commits pushed.
    pub commits: u32,
    /// Google Docs edits made.
    pub doc_edits: u32,
    /// Seconds of the team video this member presents.
    pub video_seconds: u32,
}

impl MemberActivity {
    /// A single scalar contribution: activity summed with rough
    /// per-channel weights (a commit is worth more than a message).
    pub fn contribution(&self) -> f64 {
        self.slack_messages as f64 * 1.0
            + self.commits as f64 * 5.0
            + self.doc_edits as f64 * 2.0
            + self.video_seconds as f64 / 30.0
    }
}

/// A team's collaboration evidence for one assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamCollaboration {
    /// Team id.
    pub team: usize,
    /// Assignment number (1–5).
    pub assignment: u8,
    /// Per-member activity.
    pub members: Vec<MemberActivity>,
}

impl TeamCollaboration {
    /// Total team contribution.
    pub fn total_contribution(&self) -> f64 {
        self.members.iter().map(|m| m.contribution()).sum()
    }

    /// Balance in [0, 1]: the minimum member share divided by the fair
    /// share (1 means perfectly even; 0 means someone did nothing).
    pub fn balance(&self) -> f64 {
        let total = self.total_contribution();
        if total == 0.0 || self.members.is_empty() {
            return 0.0;
        }
        let fair = total / self.members.len() as f64;
        let min = self
            .members
            .iter()
            .map(|m| m.contribution())
            .fold(f64::MAX, f64::min);
        (min / fair).clamp(0.0, 1.0)
    }

    /// The collaboration score the rubric criterion grades, in [0, 1]:
    /// geometric blend of volume adequacy and balance. `expected_total`
    /// is the instructor's norm for full marks.
    pub fn score(&self, expected_total: f64) -> f64 {
        assert!(expected_total > 0.0, "expected activity must be positive");
        let volume = (self.total_contribution() / expected_total).min(1.0);
        (volume * self.balance()).sqrt()
    }

    /// Whether every member presented in the video (the 5–10-minute
    /// requirement says each student must participate).
    pub fn everyone_on_video(&self) -> bool {
        self.members.iter().all(|m| m.video_seconds > 0)
    }

    /// Derives the peer-rating form: each member rates every teammate
    /// 0–100 by their contribution relative to the fair share.
    pub fn peer_ratings(&self) -> Vec<PeerRating> {
        let total = self.total_contribution();
        let n = self.members.len();
        if total == 0.0 || n < 2 {
            return Vec::new();
        }
        let fair = total / n as f64;
        let mut out = Vec::with_capacity(n * (n - 1));
        for rater in &self.members {
            for ratee in &self.members {
                if rater.student == ratee.student {
                    continue;
                }
                let rating = (ratee.contribution() / fair * 75.0).clamp(0.0, 100.0);
                out.push(PeerRating {
                    rater: rater.student,
                    ratee: ratee.student,
                    rating,
                });
            }
        }
        out
    }
}

/// Simulates one team's collaboration on one assignment. Member
/// activity scales with engagement (student ability plus noise);
/// `free_rider` marks one member as contributing almost nothing — the
/// failure mode the grading policy's zero rule exists for.
pub fn simulate_collaboration(
    team: &Team,
    students: &[Student],
    assignment: u8,
    seed: u64,
    free_rider: Option<usize>,
) -> TeamCollaboration {
    assert!(
        (1..=5).contains(&assignment),
        "assignments are numbered 1-5"
    );
    let by_id: std::collections::HashMap<usize, &Student> =
        students.iter().map(|s| (s.id, s)).collect();
    let mut rng = Xoshiro256::seed_from_u64(seed ^ (team.id as u64) << 8 ^ (assignment as u64));
    let members = team
        .members
        .iter()
        .map(|&id| {
            let ability = by_id.get(&id).map(|s| s.ability()).unwrap_or(0.5);
            let engagement = if free_rider == Some(id) {
                0.03
            } else {
                (0.5 + 0.5 * ability + 0.15 * rng.next_normal()).clamp(0.1, 1.5)
            };
            let draw = |rng: &mut Xoshiro256, mean: f64| -> u32 {
                (mean * engagement * (1.0 + 0.3 * rng.next_normal()).max(0.1)).round() as u32
            };
            MemberActivity {
                student: id,
                slack_messages: draw(&mut rng, 40.0),
                commits: draw(&mut rng, 8.0),
                doc_edits: draw(&mut rng, 15.0),
                video_seconds: if free_rider == Some(id) {
                    0
                } else {
                    draw(&mut rng, 90.0)
                },
            }
        })
        .collect();
    TeamCollaboration {
        team: team.id,
        assignment,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::individual_grades;
    use crate::roster::generate_cohort;
    use crate::team::form_teams;

    fn setup() -> (Vec<Student>, Team) {
        let cohort = generate_cohort(278);
        let team = form_teams(&cohort)
            .into_iter()
            .next()
            .expect("teams formed");
        (cohort, team)
    }

    #[test]
    fn healthy_team_scores_high_and_everyone_presents() {
        let (cohort, team) = setup();
        let collab = simulate_collaboration(&team, &cohort, 2, 7, None);
        assert_eq!(collab.members.len(), team.members.len());
        assert!(collab.everyone_on_video());
        let score = collab.score(600.0);
        assert!(score > 0.5, "score {score}");
        assert!(collab.balance() > 0.3, "balance {}", collab.balance());
    }

    #[test]
    fn free_rider_tanks_balance_and_video_requirement() {
        let (cohort, team) = setup();
        let lazy = team.members[2];
        let collab = simulate_collaboration(&team, &cohort, 3, 7, Some(lazy));
        assert!(!collab.everyone_on_video());
        assert!(collab.balance() < 0.2, "balance {}", collab.balance());
        let healthy = simulate_collaboration(&team, &cohort, 3, 7, None);
        assert!(collab.score(600.0) < healthy.score(600.0));
    }

    #[test]
    fn peer_ratings_single_out_the_free_rider() {
        let (cohort, team) = setup();
        let lazy = team.members[0];
        let collab = simulate_collaboration(&team, &cohort, 4, 11, Some(lazy));
        let ratings = collab.peer_ratings();
        // n members → n(n−1) directed ratings.
        let n = team.members.len();
        assert_eq!(ratings.len(), n * (n - 1));
        // The grading policy then zeroes the free-rider's grade.
        let grades = individual_grades(90.0, &team.members, &ratings, 50.0);
        let lazy_grade = grades
            .iter()
            .find(|(id, _)| *id == lazy)
            .expect("present")
            .1;
        assert_eq!(lazy_grade, 0.0);
        // Cooperating members keep the team grade.
        assert!(grades
            .iter()
            .filter(|(id, _)| *id != lazy)
            .all(|&(_, g)| g == 90.0));
    }

    #[test]
    fn contribution_weighs_commits_over_messages() {
        let a = MemberActivity {
            student: 0,
            slack_messages: 10,
            commits: 0,
            doc_edits: 0,
            video_seconds: 0,
        };
        let b = MemberActivity {
            student: 1,
            slack_messages: 0,
            commits: 10,
            doc_edits: 0,
            video_seconds: 0,
        };
        assert!(b.contribution() > a.contribution());
    }

    #[test]
    fn deterministic_per_seed_and_assignment() {
        let (cohort, team) = setup();
        let a = simulate_collaboration(&team, &cohort, 2, 5, None);
        let b = simulate_collaboration(&team, &cohort, 2, 5, None);
        assert_eq!(a, b);
        let c = simulate_collaboration(&team, &cohort, 3, 5, None);
        assert_ne!(a, c, "different assignment, different activity");
    }

    #[test]
    fn empty_and_degenerate_cases() {
        let empty = TeamCollaboration {
            team: 0,
            assignment: 1,
            members: vec![],
        };
        assert_eq!(empty.balance(), 0.0);
        assert!(empty.peer_ratings().is_empty());
        assert!(empty.everyone_on_video(), "vacuously true");
    }

    #[test]
    #[should_panic(expected = "numbered 1-5")]
    fn bad_assignment_panics() {
        let (cohort, team) = setup();
        let _ = simulate_collaboration(&team, &cohort, 0, 1, None);
    }

    #[test]
    #[should_panic(expected = "expected activity must be positive")]
    fn zero_expectation_panics() {
        let empty = TeamCollaboration {
            team: 0,
            assignment: 1,
            members: vec![],
        };
        let _ = empty.score(0.0);
    }
}
