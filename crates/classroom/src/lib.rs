//! # classroom — the PBL study's human substrate, simulated
//!
//! The paper's evaluation runs on 124 computer-science students in two
//! sections of CSc 3210 (Fall 2018). That cohort cannot be re-enrolled,
//! so this crate simulates it: a demographically matched roster, the
//! instructor's criteria-based team formation, the 15-week semester
//! timeline, the five assignments with their materials and grading
//! policy, the Team Design Skills Growth survey instrument, and a
//! latent learning-dynamics model whose observable survey statistics
//! are calibrated to the paper's published values.
//!
//! * [`student`] / [`roster`] — students and the 124-person cohort
//!   (98 male / 26 female; sections of 62 with 16 and 10 women).
//! * [`team`] — criteria-balanced team formation (13 teams per section,
//!   ≤ 5 students) vs the random baseline, with balance metrics.
//! * [`timeline`] — Fig. 1: the semester schedule.
//! * [`assignment`] — the five two-week assignments, their materials,
//!   deliverables, grading and peer-rating policy.
//! * [`assessment`] — individual quizzes, midterm, and final.
//! * [`collaboration`] — team activity on Slack/GitHub/Docs/YouTube,
//!   the collaboration score, and derived peer ratings.
//! * [`rubric`] — project rubrics (the paper's §V plan).
//! * [`survey`] — the Beyerlein et al. instrument (Fig. 2): seven
//!   elements, each a definition plus component items, on the Class
//!   Emphasis and Personal Growth scales.
//! * [`learning`] — the latent emphasis→growth model and its calibrated
//!   parameters (one bivariate-normal pair per element per wave).
//! * [`response`] — survey administration: latent values → integer item
//!   responses (stochastic rounding) → per-student scores.
//! * [`cohort`] — the assembled study dataset the analysis consumes.
//!
//! ```
//! use classroom::{CohortData, StudyConfig};
//! use classroom::response::Category;
//!
//! let data = CohortData::generate(&StudyConfig::default());
//! assert_eq!(data.n(), 124);
//! let growth2 = data.student_scores(Category::PersonalGrowth, 2);
//! let mean: f64 = growth2.iter().sum::<f64>() / growth2.len() as f64;
//! assert!((mean - 4.01).abs() < 0.05); // the paper's Table 3 wave-2 mean
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assessment;
pub mod assignment;
pub mod cohort;
pub mod collaboration;
pub mod learning;
pub mod response;
pub mod roster;
pub mod rubric;
pub mod student;
pub mod survey;
pub mod team;
pub mod timeline;

pub use cohort::{CohortData, StudyConfig};
pub use student::{Gender, Student};
pub use survey::{Element, ALL_ELEMENTS};
