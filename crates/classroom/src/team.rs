//! Criteria-based team formation.
//!
//! The instructor forms 13 teams per section (up to five students) so
//! that teams balance ability, mix genders, and break up predetermined
//! friend groups — the paper cites Oakley et al. that instructor-formed
//! teams beat self-selection. The algorithm here is a snake draft over
//! ability within each gender pool (spreading the women across teams
//! first, then filling by ability), followed by the balance metrics the
//! rubric would check. A random formation is kept as the ablation
//! baseline.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::student::{Gender, Student};

/// One formed team.
#[derive(Debug, Clone, PartialEq)]
pub struct Team {
    /// Team id, unique across the cohort.
    pub id: usize,
    /// Section the team belongs to.
    pub section: usize,
    /// Member student ids.
    pub members: Vec<usize>,
}

/// Teams per section in the study.
pub const TEAMS_PER_SECTION: usize = 13;
/// Maximum team size.
pub const MAX_TEAM_SIZE: usize = 5;

/// Forms the study's 26 teams with the criteria-balancing draft.
pub fn form_teams(students: &[Student]) -> Vec<Team> {
    let mut teams = Vec::new();
    for section in 0..2 {
        let mut section_students: Vec<&Student> =
            students.iter().filter(|s| s.section == section).collect();
        // Women first (spread round-robin), then men, each sorted by
        // ability descending; snake order balances cumulative ability.
        let mut women: Vec<&Student> = section_students
            .iter()
            .copied()
            .filter(|s| s.gender == Gender::Female)
            .collect();
        let mut men: Vec<&Student> = section_students
            .iter()
            .copied()
            .filter(|s| s.gender == Gender::Male)
            .collect();
        women.sort_by(|a, b| b.ability().partial_cmp(&a.ability()).expect("finite"));
        men.sort_by(|a, b| b.ability().partial_cmp(&a.ability()).expect("finite"));
        section_students.clear();

        let base = section * TEAMS_PER_SECTION;
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); TEAMS_PER_SECTION];
        let mut drafted = 0usize;
        for pool in [women, men] {
            for student in pool {
                // Snake draft: 0..12, 12..0, 0..12, …
                let round = drafted / TEAMS_PER_SECTION;
                let pos = drafted % TEAMS_PER_SECTION;
                let team_idx = if round.is_multiple_of(2) {
                    pos
                } else {
                    TEAMS_PER_SECTION - 1 - pos
                };
                members[team_idx].push(student.id);
                drafted += 1;
            }
        }
        for (i, m) in members.into_iter().enumerate() {
            teams.push(Team {
                id: base + i,
                section,
                members: m,
            });
        }
    }
    teams
}

/// Random team formation (the self-selection stand-in for ablation).
pub fn form_teams_randomly(students: &[Student], seed: u64) -> Vec<Team> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut teams = Vec::new();
    for section in 0..2 {
        let mut ids: Vec<usize> = students
            .iter()
            .filter(|s| s.section == section)
            .map(|s| s.id)
            .collect();
        ids.shuffle(&mut rng);
        let base = section * TEAMS_PER_SECTION;
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); TEAMS_PER_SECTION];
        for (i, id) in ids.into_iter().enumerate() {
            members[i % TEAMS_PER_SECTION].push(id);
        }
        for (i, m) in members.into_iter().enumerate() {
            teams.push(Team {
                id: base + i,
                section,
                members: m,
            });
        }
    }
    teams
}

/// Balance diagnostics over a set of teams.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceReport {
    /// Max minus min of team mean ability.
    pub ability_spread: f64,
    /// Teams containing at least one woman.
    pub teams_with_women: usize,
    /// Largest team size.
    pub max_size: usize,
    /// Smallest team size.
    pub min_size: usize,
}

/// Computes balance metrics for `teams` over `students`.
pub fn balance_report(students: &[Student], teams: &[Team]) -> BalanceReport {
    let by_id: std::collections::HashMap<usize, &Student> =
        students.iter().map(|s| (s.id, s)).collect();
    let mut means = Vec::new();
    let mut teams_with_women = 0;
    let mut max_size = 0;
    let mut min_size = usize::MAX;
    for team in teams {
        let abilities: Vec<f64> = team.members.iter().map(|id| by_id[id].ability()).collect();
        means.push(abilities.iter().sum::<f64>() / abilities.len().max(1) as f64);
        if team
            .members
            .iter()
            .any(|id| by_id[id].gender == Gender::Female)
        {
            teams_with_women += 1;
        }
        max_size = max_size.max(team.members.len());
        min_size = min_size.min(team.members.len());
    }
    let spread = means.iter().cloned().fold(f64::MIN, f64::max)
        - means.iter().cloned().fold(f64::MAX, f64::min);
    BalanceReport {
        ability_spread: spread,
        teams_with_women,
        max_size,
        min_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::generate_cohort;

    #[test]
    fn forms_26_teams_of_four_or_five() {
        let cohort = generate_cohort(1);
        let teams = form_teams(&cohort);
        assert_eq!(teams.len(), 26);
        for t in &teams {
            assert!((4..=MAX_TEAM_SIZE).contains(&t.members.len()), "{t:?}");
        }
        // 62 = 13 teams → 10 teams of 5 and 3 of 4? 13*5=65, so sizes
        // are 4 or 5 with total 62 per section.
        for section in 0..2 {
            let total: usize = teams
                .iter()
                .filter(|t| t.section == section)
                .map(|t| t.members.len())
                .sum();
            assert_eq!(total, 62);
        }
    }

    #[test]
    fn every_student_on_exactly_one_team() {
        let cohort = generate_cohort(2);
        let teams = form_teams(&cohort);
        let mut seen: Vec<usize> = teams.iter().flat_map(|t| t.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..124).collect::<Vec<_>>());
    }

    #[test]
    fn criteria_draft_spreads_women_across_teams() {
        let cohort = generate_cohort(3);
        let teams = form_teams(&cohort);
        let report = balance_report(&cohort, &teams);
        // Section 0 has 16 women over 13 teams (all covered, three teams
        // with two); section 1 has 10 over 13 (ten covered) — 23 teams
        // total, the maximum the per-section counts allow.
        assert_eq!(report.teams_with_women, 23);
        let by_id: std::collections::HashMap<usize, &crate::student::Student> =
            cohort.iter().map(|s| (s.id, s)).collect();
        for t in &teams {
            let women = t
                .members
                .iter()
                .filter(|id| by_id[*id].gender == Gender::Female)
                .count();
            assert!(women <= 2, "no team concentrates women: {t:?}");
        }
    }

    #[test]
    fn criteria_draft_balances_ability_better_than_random() {
        let cohort = generate_cohort(4);
        let drafted = balance_report(&cohort, &form_teams(&cohort));
        // Compare against the mean spread of several random formations.
        let mut random_spreads = Vec::new();
        for seed in 0..5 {
            random_spreads
                .push(balance_report(&cohort, &form_teams_randomly(&cohort, seed)).ability_spread);
        }
        let random_mean: f64 = random_spreads.iter().sum::<f64>() / random_spreads.len() as f64;
        assert!(
            drafted.ability_spread < random_mean,
            "draft {:.3} vs random mean {:.3}",
            drafted.ability_spread,
            random_mean
        );
    }

    #[test]
    fn random_formation_is_deterministic_per_seed() {
        let cohort = generate_cohort(5);
        assert_eq!(
            form_teams_randomly(&cohort, 7),
            form_teams_randomly(&cohort, 7)
        );
    }

    #[test]
    fn team_ids_are_unique() {
        let cohort = generate_cohort(6);
        let teams = form_teams(&cohort);
        let mut ids: Vec<usize> = teams.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..26).collect::<Vec<_>>());
    }
}
