//! Individual assessment (§II "PBL Module evaluation"): one quiz after
//! each assignment's due date (five total), a midterm, and a final.
//!
//! Scores are generated from each student's placement ability plus the
//! technical growth their survey responses report, so individual
//! assessment trends cohere with the team-level survey findings: quiz
//! scores climb across the semester, and final-exam performance
//! correlates with reported personal growth.

use stats::rng::Xoshiro256;

use crate::cohort::CohortData;
use crate::response::Category;

/// Number of quizzes (one per assignment).
pub const NUM_QUIZZES: usize = 5;

/// One student's semester of individual assessment, all on 0–100.
#[derive(Debug, Clone, PartialEq)]
pub struct StudentAssessment {
    /// Student id.
    pub student: usize,
    /// Quiz scores in assignment order.
    pub quizzes: [f64; NUM_QUIZZES],
    /// Midterm exam (week 8).
    pub midterm: f64,
    /// Final exam (week 15).
    pub final_exam: f64,
}

impl StudentAssessment {
    /// Mean quiz score.
    pub fn quiz_mean(&self) -> f64 {
        self.quizzes.iter().sum::<f64>() / NUM_QUIZZES as f64
    }

    /// Final-minus-midterm improvement.
    pub fn exam_improvement(&self) -> f64 {
        self.final_exam - self.midterm
    }
}

/// Generates the cohort's individual assessments, deterministically.
///
/// Quiz k's expected score is `base + trend·k` where `base` reflects
/// placement ability and `trend` the student's reported second-half
/// growth; the midterm draws on first-half state, the final on
/// second-half state.
pub fn generate_assessments(cohort: &CohortData, seed: u64) -> Vec<StudentAssessment> {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xA55E_55ED);
    let growth1 = cohort.student_scores(Category::PersonalGrowth, 1);
    let growth2 = cohort.student_scores(Category::PersonalGrowth, 2);
    cohort
        .students
        .iter()
        .map(|student| {
            let ability = student.ability(); // 0..1
                                             // Normalise reported growth (≈3..4.5) to roughly 0..1.
            let g1 = ((growth1[student.id] - 3.0) / 1.5).clamp(0.0, 1.0);
            let g2 = ((growth2[student.id] - 3.0) / 1.5).clamp(0.0, 1.0);
            let base = 52.0 + 28.0 * ability;
            let trend = 2.0 + 6.0 * g2;
            let mut quizzes = [0.0; NUM_QUIZZES];
            for (k, q) in quizzes.iter_mut().enumerate() {
                let expected = base + trend * k as f64;
                *q = (expected + 6.0 * rng.next_normal()).clamp(0.0, 100.0);
            }
            let midterm = (base + 4.0 * g1 + trend + 7.0 * rng.next_normal()).clamp(0.0, 100.0);
            let final_exam = (base
                + 10.0 * g2
                + trend * (NUM_QUIZZES - 1) as f64 * 0.8
                + 7.0 * rng.next_normal())
            .clamp(0.0, 100.0);
            StudentAssessment {
                student: student.id,
                quizzes,
                midterm,
                final_exam,
            }
        })
        .collect()
}

/// Class mean of each quiz, in order — the trajectory the instructor
/// watches across the five assignments.
pub fn quiz_trajectory(assessments: &[StudentAssessment]) -> [f64; NUM_QUIZZES] {
    let mut means = [0.0; NUM_QUIZZES];
    for a in assessments {
        for (m, q) in means.iter_mut().zip(&a.quizzes) {
            *m += q;
        }
    }
    for m in &mut means {
        *m /= assessments.len().max(1) as f64;
    }
    means
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::StudyConfig;

    fn assessments() -> (CohortData, Vec<StudentAssessment>) {
        let cohort = CohortData::generate(&StudyConfig::default());
        let a = generate_assessments(&cohort, 7);
        (cohort, a)
    }

    #[test]
    fn one_record_per_student_in_range() {
        let (cohort, a) = assessments();
        assert_eq!(a.len(), cohort.n());
        for record in &a {
            for &q in &record.quizzes {
                assert!((0.0..=100.0).contains(&q));
            }
            assert!((0.0..=100.0).contains(&record.midterm));
            assert!((0.0..=100.0).contains(&record.final_exam));
        }
    }

    #[test]
    fn quiz_scores_climb_across_the_semester() {
        let (_, a) = assessments();
        let trajectory = quiz_trajectory(&a);
        assert!(
            trajectory.windows(2).all(|w| w[1] > w[0] - 1.0),
            "{trajectory:?}"
        );
        assert!(trajectory[4] > trajectory[0] + 5.0, "{trajectory:?}");
    }

    #[test]
    fn finals_exceed_midterms_on_average() {
        let (_, a) = assessments();
        let improvement: f64 = a.iter().map(|r| r.exam_improvement()).sum::<f64>() / a.len() as f64;
        assert!(improvement > 0.0, "mean improvement {improvement}");
    }

    #[test]
    fn final_exam_correlates_with_reported_growth() {
        let (cohort, a) = assessments();
        let growth2 = cohort.student_scores(Category::PersonalGrowth, 2);
        let finals: Vec<f64> = a.iter().map(|r| r.final_exam).collect();
        let r = stats::pearson(&growth2, &finals).unwrap();
        assert!(r.r > 0.2, "r = {}", r.r);
        assert!(r.p_two_sided < 0.01);
    }

    #[test]
    fn ability_matters_for_quiz_means() {
        let (cohort, a) = assessments();
        let abilities: Vec<f64> = cohort.students.iter().map(|s| s.ability()).collect();
        let quiz_means: Vec<f64> = a.iter().map(|r| r.quiz_mean()).collect();
        let r = stats::pearson(&abilities, &quiz_means).unwrap();
        assert!(r.r > 0.4, "r = {}", r.r);
    }

    #[test]
    fn deterministic_per_seed() {
        let cohort = CohortData::generate(&StudyConfig::default());
        assert_eq!(
            generate_assessments(&cohort, 3),
            generate_assessments(&cohort, 3)
        );
        assert_ne!(
            generate_assessments(&cohort, 3),
            generate_assessments(&cohort, 4)
        );
    }

    #[test]
    fn trajectory_of_empty_cohort_is_zero() {
        assert_eq!(quiz_trajectory(&[]), [0.0; NUM_QUIZZES]);
    }
}
