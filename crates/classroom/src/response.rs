//! Survey administration: turns the latent model into per-student
//! scores and (for display) integer item responses.
//!
//! The paper's analysis operates on per-student *score averages* (all
//! items of an element, then across elements), which are effectively
//! continuous; these are generated directly from the calibrated
//! bivariate-normal model, with the latent mean pre-compensated so the
//! clamp onto the 1–5 scale does not shift the published means.
//! Integer single-item responses (what a filled-in Fig. 2 form looks
//! like) are produced by unbiased stochastic rounding in
//! [`render_filled_items`].

use stats::rng::Xoshiro256;
use stats::special::{erf, normal_cdf};

use crate::learning::{targets, wave_params, Wave};
use crate::survey::ALL_ELEMENTS;

/// All responses of one survey wave.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveResponses {
    /// Which wave (1 or 2).
    pub wave: Wave,
    /// `emphasis[student][element]` scores, indexed by
    /// [`ALL_ELEMENTS`] order.
    pub emphasis: Vec<Vec<f64>>,
    /// `growth[student][element]` scores.
    pub growth: Vec<Vec<f64>>,
}

impl WaveResponses {
    /// Per-student overall score on a category: the mean over the seven
    /// elements (the variable the paper's Tables 1–3 analyse).
    pub fn student_scores(&self, category: Category) -> Vec<f64> {
        let per_element = match category {
            Category::ClassEmphasis => &self.emphasis,
            Category::PersonalGrowth => &self.growth,
        };
        per_element
            .iter()
            .map(|row| row.iter().sum::<f64>() / row.len() as f64)
            .collect()
    }

    /// [`student_scores`](Self::student_scores) written into a caller
    /// buffer, for batch consumers that pack many cohorts' scores into
    /// one structure-of-arrays arena without per-cohort allocation.
    /// `out.len()` must equal the student count; values are identical
    /// to the allocating form.
    pub fn student_scores_into(&self, category: Category, out: &mut [f64]) {
        let per_element = match category {
            Category::ClassEmphasis => &self.emphasis,
            Category::PersonalGrowth => &self.growth,
        };
        assert_eq!(out.len(), per_element.len(), "output length mismatch");
        for (slot, row) in out.iter_mut().zip(per_element) {
            *slot = row.iter().sum::<f64>() / row.len() as f64;
        }
    }

    /// All students' scores on one element.
    pub fn element_scores(&self, category: Category, element_idx: usize) -> Vec<f64> {
        let per_element = match category {
            Category::ClassEmphasis => &self.emphasis,
            Category::PersonalGrowth => &self.growth,
        };
        per_element.iter().map(|row| row[element_idx]).collect()
    }
}

/// The two survey categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// "Class Emphasis".
    ClassEmphasis,
    /// "Personal Growth".
    PersonalGrowth,
}

/// Standard normal pdf.
fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Mean of `clamp(N(mu, sigma), 1, 5)` in closed form.
fn clamped_mean(mu: f64, sigma: f64) -> f64 {
    let a = (1.0 - mu) / sigma;
    let b = (5.0 - mu) / sigma;
    1.0 * normal_cdf(a) + 5.0 * (1.0 - normal_cdf(b)) + mu * (normal_cdf(b) - normal_cdf(a))
        - sigma * (normal_pdf(b) - normal_pdf(a))
}

/// Pre-compensates a target mean for the clamp: returns `mu'` such that
/// `E[clamp(N(mu', sigma), 1, 5)] ≈ target`.
pub fn compensate_for_clamp(target: f64, sigma: f64) -> f64 {
    let (mut lo, mut hi) = (target - 1.0, target + 1.0);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if clamped_mean(mid, sigma) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Generates one wave of responses for `num_students` students.
///
/// Deterministic for a given `(wave, seed)`; waves drawn with different
/// seeds are independent across students, matching the near-zero
/// between-wave correlation the paper's own t statistics imply.
pub fn generate_wave(num_students: usize, wave: Wave, seed: u64) -> WaveResponses {
    generate_wave_with(num_students, wave, seed, None)
}

/// [`generate_wave`] under an optional course-design
/// [`Intervention`](crate::learning::Intervention) (the Spring-2019
/// counterfactual).
pub fn generate_wave_with(
    num_students: usize,
    wave: Wave,
    seed: u64,
    intervention: Option<&crate::learning::Intervention>,
) -> WaveResponses {
    let params = wave_params(wave);
    let mut rng = Xoshiro256::seed_from_u64(seed ^ (wave as u64).wrapping_mul(0x9E37_79B9));
    let mut emphasis = Vec::with_capacity(num_students);
    let mut growth = Vec::with_capacity(num_students);
    // Pre-compute compensated means per element.
    let comp: Vec<(f64, f64, f64)> = ALL_ELEMENTS
        .iter()
        .map(|&e| {
            let mut t = targets(e, wave);
            if let Some(i) = intervention {
                t = i.adjust(e, t);
            }
            (
                compensate_for_clamp(t.emphasis_mean, params.emphasis_sd),
                compensate_for_clamp(t.growth_mean, params.growth_sd),
                t.correlation,
            )
        })
        .collect();
    for _ in 0..num_students {
        let u = rng.next_normal(); // perception factor
        let g = rng.next_normal(); // growth factor
        let mut e_row = Vec::with_capacity(ALL_ELEMENTS.len());
        let mut g_row = Vec::with_capacity(ALL_ELEMENTS.len());
        for &(mu_e, mu_g, r) in &comp {
            let v = rng.next_normal();
            let w = rng.next_normal();
            let z_e = params.emphasis_rho.sqrt() * u + (1.0 - params.emphasis_rho).sqrt() * v;
            let resid = params.growth_rho.sqrt() * g + (1.0 - params.growth_rho).sqrt() * w;
            let z_g = r * z_e + (1.0 - r * r).sqrt() * resid;
            e_row.push((mu_e + params.emphasis_sd * z_e).clamp(1.0, 5.0));
            g_row.push((mu_g + params.growth_sd * z_g).clamp(1.0, 5.0));
        }
        emphasis.push(e_row);
        growth.push(g_row);
    }
    WaveResponses {
        wave,
        emphasis,
        growth,
    }
}

/// The replicate-invariant part of [`generate_wave_with`], hoisted: the
/// clamp-compensation bisections (60 `normal_cdf` evaluations per
/// element) and the loop-invariant factor weights depend only on the
/// wave and intervention, never on the seed, yet the wave generator
/// recomputes them per cohort. Batch consumers build the model once per
/// run and stamp out per-seed score columns with
/// [`WaveScoreModel::scores_into`].
#[derive(Debug, Clone)]
pub struct WaveScoreModel {
    rng_salt: u64,
    emphasis_sd: f64,
    growth_sd: f64,
    root_e: f64,
    root_e1: f64,
    root_g: f64,
    root_g1: f64,
    /// Per element: compensated means, correlation, and `√(1−r²)`.
    comp: Vec<(f64, f64, f64, f64)>,
}

impl WaveScoreModel {
    /// Builds the model for `wave` with no intervention.
    pub fn new(wave: Wave) -> Self {
        Self::with_intervention(wave, None)
    }

    /// Builds the model for `wave` under an optional intervention —
    /// the same adjustment path [`generate_wave_with`] applies.
    pub fn with_intervention(
        wave: Wave,
        intervention: Option<&crate::learning::Intervention>,
    ) -> Self {
        let params = wave_params(wave);
        let comp = ALL_ELEMENTS
            .iter()
            .map(|&e| {
                let mut t = targets(e, wave);
                if let Some(i) = intervention {
                    t = i.adjust(e, t);
                }
                let r = t.correlation;
                (
                    compensate_for_clamp(t.emphasis_mean, params.emphasis_sd),
                    compensate_for_clamp(t.growth_mean, params.growth_sd),
                    r,
                    (1.0 - r * r).sqrt(),
                )
            })
            .collect();
        WaveScoreModel {
            rng_salt: (wave as u64).wrapping_mul(0x9E37_79B9),
            emphasis_sd: params.emphasis_sd,
            growth_sd: params.growth_sd,
            root_e: params.emphasis_rho.sqrt(),
            root_e1: (1.0 - params.emphasis_rho).sqrt(),
            root_g: params.growth_rho.sqrt(),
            root_g1: (1.0 - params.growth_rho).sqrt(),
            comp,
        }
    }

    /// Per-student overall scores for one seed, written straight into
    /// caller columns (`emphasis.len()` students; the slices must have
    /// equal length). Bit-identical to
    /// `generate_wave_with(n, wave, seed, …).student_scores(category)`:
    /// the generator is seeded and stepped in exactly the scalar order,
    /// every hoisted weight is the same pure function of the same
    /// inputs, and each student's element scores fold left-to-right
    /// before the same division — only the per-row allocations and the
    /// per-cohort bisections are gone.
    pub fn scores_into(&self, seed: u64, emphasis: &mut [f64], growth: &mut [f64]) {
        assert_eq!(emphasis.len(), growth.len(), "column length mismatch");
        let mut rng = Xoshiro256::seed_from_u64(seed ^ self.rng_salt);
        let elements = self.comp.len() as f64;
        for (e_slot, g_slot) in emphasis.iter_mut().zip(growth.iter_mut()) {
            let u = rng.next_normal(); // perception factor
            let g = rng.next_normal(); // growth factor
            let mut e_sum = 0.0f64;
            let mut g_sum = 0.0f64;
            for &(mu_e, mu_g, r, root_r) in &self.comp {
                let v = rng.next_normal();
                let w = rng.next_normal();
                let z_e = self.root_e * u + self.root_e1 * v;
                let resid = self.root_g * g + self.root_g1 * w;
                let z_g = r * z_e + root_r * resid;
                e_sum += (mu_e + self.emphasis_sd * z_e).clamp(1.0, 5.0);
                g_sum += (mu_g + self.growth_sd * z_g).clamp(1.0, 5.0);
            }
            *e_slot = e_sum / elements;
            *g_slot = g_sum / elements;
        }
    }
}

/// Renders integer item responses consistent with an element score —
/// what one student's filled-in survey block looks like. Uses unbiased
/// stochastic rounding, so the item mean converges on `score`.
pub fn render_filled_items(score: f64, item_count: usize, rng: &mut Xoshiro256) -> Vec<u8> {
    assert!(item_count > 0, "need at least one item");
    (0..item_count)
        .map(|_| {
            let jittered = (score + 0.3 * rng.next_normal()).clamp(1.0, 5.0);
            let floor = jittered.floor();
            let frac = jittered - floor;
            let rounded = if rng.next_f64() < frac {
                floor + 1.0
            } else {
                floor
            };
            rounded.clamp(1.0, 5.0) as u8
        })
        .collect()
}

/// Convenience re-export used by calibration tests.
pub fn erf_sanity(x: f64) -> f64 {
    erf(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::descriptive::Summary;

    #[test]
    fn clamped_mean_matches_simulation() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let (mu, sigma) = (4.4, 0.4);
        let analytic = clamped_mean(mu, sigma);
        let n = 200_000;
        let sim: f64 = (0..n)
            .map(|_| (mu + sigma * rng.next_normal()).clamp(1.0, 5.0))
            .sum::<f64>()
            / n as f64;
        assert!((analytic - sim).abs() < 0.002, "{analytic} vs {sim}");
    }

    #[test]
    fn compensation_restores_the_target_mean() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let (target, sigma) = (4.38, 0.40);
        let mu = compensate_for_clamp(target, sigma);
        assert!(
            mu > target,
            "pushing mass past 5 needs a higher latent mean"
        );
        let n = 200_000;
        let sim: f64 = (0..n)
            .map(|_| (mu + sigma * rng.next_normal()).clamp(1.0, 5.0))
            .sum::<f64>()
            / n as f64;
        assert!((sim - target).abs() < 0.003, "{sim}");
    }

    #[test]
    fn wave_shapes_are_consistent() {
        let w = generate_wave(124, 1, 42);
        assert_eq!(w.emphasis.len(), 124);
        assert_eq!(w.growth.len(), 124);
        assert!(w.emphasis.iter().all(|r| r.len() == 7));
        assert!(w
            .emphasis
            .iter()
            .flatten()
            .chain(w.growth.iter().flatten())
            .all(|&x| (1.0..=5.0).contains(&x)));
    }

    #[test]
    fn deterministic_per_seed_and_wave() {
        assert_eq!(generate_wave(30, 1, 7), generate_wave(30, 1, 7));
        assert_ne!(generate_wave(30, 1, 7), generate_wave(30, 1, 8));
        assert_ne!(generate_wave(30, 1, 7), generate_wave(30, 2, 7));
    }

    #[test]
    fn student_scores_average_elements() {
        let w = generate_wave(10, 1, 3);
        let scores = w.student_scores(Category::ClassEmphasis);
        assert_eq!(scores.len(), 10);
        let manual: f64 = w.emphasis[0].iter().sum::<f64>() / 7.0;
        assert!((scores[0] - manual).abs() < 1e-12);
    }

    #[test]
    fn student_scores_into_matches_the_allocating_form() {
        let w = generate_wave(10, 2, 9);
        for category in [Category::ClassEmphasis, Category::PersonalGrowth] {
            let mut buf = vec![f64::NAN; 10];
            w.student_scores_into(category, &mut buf);
            assert_eq!(buf, w.student_scores(category));
        }
    }

    #[test]
    fn large_cohort_hits_calibrated_moments() {
        // With many students the generator must land on the published
        // wave-1 moments (124-student draws scatter around these).
        let w = generate_wave(20_000, 1, 11);
        let overall = Summary::from_slice(&w.student_scores(Category::ClassEmphasis)).unwrap();
        assert!(
            (overall.mean() - 4.023).abs() < 0.01,
            "mean {}",
            overall.mean()
        );
        let sd = overall.sample_sd().unwrap();
        assert!((sd - 0.232).abs() < 0.02, "sd {sd}");
        let growth = Summary::from_slice(&w.student_scores(Category::PersonalGrowth)).unwrap();
        assert!(
            (growth.mean() - 3.81).abs() < 0.015,
            "mean {}",
            growth.mean()
        );
        let gsd = growth.sample_sd().unwrap();
        assert!((gsd - 0.262).abs() < 0.025, "sd {gsd}");
    }

    #[test]
    fn element_correlations_track_targets() {
        let w = generate_wave(20_000, 1, 13);
        for (idx, &e) in ALL_ELEMENTS.iter().enumerate() {
            let emph = w.element_scores(Category::ClassEmphasis, idx);
            let grow = w.element_scores(Category::PersonalGrowth, idx);
            let r = stats::pearson(&emph, &grow).unwrap().r;
            let target = targets(e, 1).correlation;
            assert!((r - target).abs() < 0.05, "{e:?}: r {r} target {target}");
        }
    }

    #[test]
    fn wave_score_model_is_bit_identical_to_the_wave_generator() {
        for wave in [1usize, 2] {
            let model = WaveScoreModel::new(wave);
            for (n, seed) in [(124usize, 278u64), (40, 7), (5, 99)] {
                let full = generate_wave(n, wave, seed);
                let mut e = vec![f64::NAN; n];
                let mut g = vec![f64::NAN; n];
                model.scores_into(seed, &mut e, &mut g);
                for (got, want) in e.iter().zip(full.student_scores(Category::ClassEmphasis)) {
                    assert_eq!(got.to_bits(), want.to_bits(), "wave {wave} emphasis");
                }
                for (got, want) in g.iter().zip(full.student_scores(Category::PersonalGrowth)) {
                    assert_eq!(got.to_bits(), want.to_bits(), "wave {wave} growth");
                }
            }
        }
    }

    #[test]
    fn wave_score_model_honours_interventions() {
        let plan = crate::learning::Intervention::spring2019();
        let model = WaveScoreModel::with_intervention(2, Some(&plan));
        let full = generate_wave_with(30, 2, 11, Some(&plan));
        let mut e = vec![0.0; 30];
        let mut g = vec![0.0; 30];
        model.scores_into(11, &mut e, &mut g);
        assert_eq!(e, full.student_scores(Category::ClassEmphasis));
        assert_eq!(g, full.student_scores(Category::PersonalGrowth));
    }

    #[test]
    fn filled_items_average_near_the_score() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let items = render_filled_items(3.6, 4_000, &mut rng);
        assert!(items.iter().all(|&i| (1..=5).contains(&i)));
        let mean: f64 = items.iter().map(|&i| i as f64).sum::<f64>() / items.len() as f64;
        assert!((mean - 3.6).abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let _ = render_filled_items(3.0, 0, &mut rng);
    }

    #[test]
    fn erf_reexport_works() {
        assert!((erf_sanity(0.0)).abs() < 1e-8);
    }
}
