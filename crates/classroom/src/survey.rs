//! The Team Design Skills Growth survey (Beyerlein et al. 2005): seven
//! elements, each a definition item plus component items, administered
//! on the Class Emphasis and Personal Growth 1–5 scales (Fig. 2).

pub use stats::likert::Scale;

/// The seven surveyed skill elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Element {
    /// "Individuals participate effectively in groups or teams."
    Teamwork,
    /// Locating and organising relevant information.
    InformationGathering,
    /// Framing the problem to be solved.
    ProblemDefinition,
    /// Generating candidate solutions.
    IdeaGeneration,
    /// Weighing alternatives and deciding.
    EvaluationAndDecisionMaking,
    /// Turning the chosen idea into a working artifact.
    Implementation,
    /// Writing, speaking, and presenting.
    Communication,
}

/// All elements, in the order the paper's tables list them.
pub const ALL_ELEMENTS: [Element; 7] = [
    Element::Teamwork,
    Element::InformationGathering,
    Element::ProblemDefinition,
    Element::IdeaGeneration,
    Element::EvaluationAndDecisionMaking,
    Element::Implementation,
    Element::Communication,
];

impl Element {
    /// Display label as the tables print it.
    pub fn label(&self) -> &'static str {
        match self {
            Element::Teamwork => "Teamwork",
            Element::InformationGathering => "Information Gathering",
            Element::ProblemDefinition => "Problem Definition",
            Element::IdeaGeneration => "Idea Generation",
            Element::EvaluationAndDecisionMaking => "Evaluation and Decision Making",
            Element::Implementation => "Implementation",
            Element::Communication => "Communication",
        }
    }

    /// The element's definition item (the first row of its survey
    /// block; Fig. 2 quotes Teamwork's verbatim).
    pub fn definition(&self) -> &'static str {
        match self {
            Element::Teamwork => "Individuals participate effectively in groups or teams.",
            Element::InformationGathering => {
                "Individuals gather and organize information relevant to the problem."
            }
            Element::ProblemDefinition => {
                "Individuals define the problem, constraints, and success criteria."
            }
            Element::IdeaGeneration => {
                "Individuals generate a range of candidate ideas and approaches."
            }
            Element::EvaluationAndDecisionMaking => {
                "Individuals evaluate alternatives and make justified decisions."
            }
            Element::Implementation => "Individuals implement the chosen solution effectively.",
            Element::Communication => {
                "Individuals communicate results clearly in writing and speech."
            }
        }
    }

    /// The component (performance-indicator) items of the element.
    /// Teamwork's four are quoted from Fig. 2; the other elements carry
    /// the instrument's standard component structure.
    pub fn components(&self) -> &'static [&'static str] {
        match self {
            Element::Teamwork => &[
                "Individuals understand their own and other members' styles of thinking and how they affect teamwork",
                "Individuals understand the different roles included in effective teamwork and responsibilities of each role",
                "Individuals use effective group communication skills: listening, speaking, visual communication",
                "Individuals cooperate to support effective teamwork",
            ],
            Element::InformationGathering => &[
                "Individuals identify what information is needed",
                "Individuals locate credible sources efficiently",
                "Individuals organize and document gathered information",
            ],
            Element::ProblemDefinition => &[
                "Individuals state the problem in their own words",
                "Individuals identify constraints and requirements",
                "Individuals decompose the problem into tractable parts",
            ],
            Element::IdeaGeneration => &[
                "Individuals brainstorm multiple alternatives before committing",
                "Individuals build on others' ideas",
                "Individuals defer judgment during idea generation",
            ],
            Element::EvaluationAndDecisionMaking => &[
                "Individuals define criteria before evaluating alternatives",
                "Individuals compare alternatives against the criteria",
                "Individuals commit to and document a justified decision",
            ],
            Element::Implementation => &[
                "Individuals plan the implementation work",
                "Individuals build, test, and debug the solution",
                "Individuals verify the result against the requirements",
            ],
            Element::Communication => &[
                "Individuals write clear technical reports",
                "Individuals present results orally with appropriate visuals",
                "Individuals tailor communication to the audience",
            ],
        }
    }

    /// Items per element: one definition plus the components.
    pub fn item_count(&self) -> usize {
        1 + self.components().len()
    }
}

/// Renders one element's survey block on a scale — the Fig. 2 panel.
pub fn render_block(element: Element, scale: Scale) -> String {
    let mut out = format!("{} — {:?} scale (1-5)\n", element.label(), scale);
    for point in 1..=5u8 {
        out.push_str(&format!(
            "  {point}: {}\n",
            scale.anchor(point).expect("points 1-5 have anchors")
        ));
    }
    out.push_str(&format!("  D. {}\n", element.definition()));
    for (i, c) in element.components().iter().enumerate() {
        out.push_str(&format!("  {}. {c}\n", i + 1));
    }
    out
}

/// Total items on one administration of the survey (both categories use
/// the same item list; each is answered on both scales).
pub fn total_items() -> usize {
    ALL_ELEMENTS.iter().map(|e| e.item_count()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_elements_in_table_order() {
        assert_eq!(ALL_ELEMENTS.len(), 7);
        assert_eq!(ALL_ELEMENTS[0], Element::Teamwork);
        assert_eq!(ALL_ELEMENTS[6], Element::Communication);
    }

    #[test]
    fn teamwork_matches_figure_two() {
        assert_eq!(
            Element::Teamwork.definition(),
            "Individuals participate effectively in groups or teams."
        );
        let comps = Element::Teamwork.components();
        assert_eq!(comps.len(), 4);
        assert!(comps[2].contains("listening, speaking, visual communication"));
    }

    #[test]
    fn every_element_has_definition_and_components() {
        for e in ALL_ELEMENTS {
            assert!(!e.definition().is_empty());
            assert!(e.components().len() >= 3, "{e:?}");
            assert_eq!(e.item_count(), 1 + e.components().len());
        }
    }

    #[test]
    fn labels_match_the_tables() {
        assert_eq!(
            Element::EvaluationAndDecisionMaking.label(),
            "Evaluation and Decision Making"
        );
        assert_eq!(
            Element::InformationGathering.label(),
            "Information Gathering"
        );
    }

    #[test]
    fn item_total_is_plausible_for_a_one_page_survey() {
        let total = total_items();
        assert_eq!(total, 7 + 3 * 7 + 1); // 7 definitions + components (teamwork has 4)
        assert!((25..=35).contains(&total));
    }

    #[test]
    fn rendered_block_contains_scale_anchors_and_items() {
        let block = render_block(Element::Teamwork, Scale::PersonalGrowth);
        assert!(block.contains("tremendous growth"));
        assert!(block.contains("participate effectively"));
        assert!(block.contains("cooperate to support"));
        let emphasis = render_block(Element::Implementation, Scale::ClassEmphasis);
        assert!(emphasis.contains("Major emphasis"));
    }
}
