//! The assembled study dataset: roster, teams, and both survey waves —
//! everything the analysis pipeline in `pbl-core` consumes.

use crate::response::{Category, WaveResponses, WaveScoreModel};
use crate::roster::generate_cohort;
use crate::student::Student;
use crate::team::{form_teams, Team};

/// Study configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyConfig {
    /// Number of students (the paper's cohort is 124).
    pub num_students: usize,
    /// Master seed; every derived draw is deterministic from it.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            num_students: crate::roster::COHORT_SIZE,
            // Selected by `pbl-bench/src/bin/calibrate.rs`: among the
            // first 400 master seeds, this cohort draw lands closest to
            // the paper's published statistics (d = 0.51/0.87 vs the
            // published 0.50/0.86, wave means within 0.005).
            seed: 278,
        }
    }
}

/// The complete dataset of one simulated semester.
#[derive(Debug, Clone)]
pub struct CohortData {
    /// The enrolled students.
    pub students: Vec<Student>,
    /// The 26 formed teams.
    pub teams: Vec<Team>,
    /// Mid-semester survey (wave 1).
    pub wave1: WaveResponses,
    /// End-of-term survey (wave 2).
    pub wave2: WaveResponses,
}

impl CohortData {
    /// Runs a full simulated semester.
    pub fn generate(config: &StudyConfig) -> Self {
        Self::generate_with(config, None)
    }

    /// Runs a semester under an optional course-design
    /// [`Intervention`](crate::learning::Intervention) — the paper's
    /// Spring-2019 plan, as a counterfactual.
    pub fn generate_with(
        config: &StudyConfig,
        intervention: Option<&crate::learning::Intervention>,
    ) -> Self {
        let students = if config.num_students == crate::roster::COHORT_SIZE {
            generate_cohort(config.seed)
        } else {
            // Scaled cohorts (for power analyses) reuse the generator
            // and truncate/extend deterministically.
            let mut all = generate_cohort(config.seed);
            all.truncate(config.num_students);
            all
        };
        let teams = form_teams(&students);
        CohortData {
            wave1: crate::response::generate_wave_with(
                students.len(),
                1,
                config.seed,
                intervention,
            ),
            wave2: crate::response::generate_wave_with(
                students.len(),
                2,
                config.seed.wrapping_add(1),
                intervention,
            ),
            students,
            teams,
        }
    }

    /// Generates `n` independent synthetic cohorts on up to `threads`
    /// OS threads via the replication engine.
    ///
    /// `config.seed` acts as the master seed: cohort `i` is generated
    /// from the seed-split stream seed for replicate `i`, so the batch
    /// is bit-identical for every thread count, and none of the cohorts
    /// shares a seed with the single-run [`CohortData::generate`] path
    /// unless the split happens to collide (it cannot — split seeds are
    /// injective in the replicate index).
    pub fn generate_batch(config: &StudyConfig, n: usize, threads: usize) -> Vec<CohortData> {
        replicate::ReplicationEngine::new(threads).run(n, config.seed, |ctx| {
            CohortData::generate(&StudyConfig {
                num_students: config.num_students,
                seed: ctx.seed,
            })
        })
    }

    /// The wave data for wave 1 or 2.
    ///
    /// # Panics
    /// Panics for any other wave number.
    pub fn wave(&self, wave: usize) -> &WaveResponses {
        match wave {
            1 => &self.wave1,
            2 => &self.wave2,
            w => panic!("wave must be 1 or 2, got {w}"),
        }
    }

    /// Per-student overall scores for a category and wave — the paired
    /// variables of Table 1.
    pub fn student_scores(&self, category: Category, wave: usize) -> Vec<f64> {
        self.wave(wave).student_scores(category)
    }

    /// [`student_scores`](Self::student_scores) written into a caller
    /// buffer (see `WaveResponses::student_scores_into`); the
    /// allocation-free form the batch-major replication path uses.
    pub fn student_scores_into(&self, category: Category, wave: usize, out: &mut [f64]) {
        self.wave(wave).student_scores_into(category, out)
    }

    /// Number of enrolled students.
    pub fn n(&self) -> usize {
        self.students.len()
    }

    /// The number of students [`generate`](Self::generate) actually
    /// enrols for a requested size: the roster generator produces at
    /// most [`COHORT_SIZE`](crate::roster::COHORT_SIZE) students and
    /// truncation only shrinks.
    pub fn effective_size(requested: usize) -> usize {
        requested.min(crate::roster::COHORT_SIZE)
    }
}

/// The score-relevant slice of [`CohortData::generate`], with every
/// replicate-invariant computation hoisted. A full `CohortData` builds
/// the roster, the teams, and both waves' per-element response matrices;
/// the replication battery consumes only the four per-student overall
/// score columns and the (positional) section split. This model
/// produces exactly those columns — bit-identical to the full path —
/// with no per-cohort allocation and no repeated clamp-compensation
/// bisections.
///
/// Draw discipline: the waves draw from their own generators (seeded
/// `seed` and `seed+1`, as `generate` does), and the roster's
/// demographic draws live on a separate generator entirely, so skipping
/// them cannot shift a wave draw. Sections are positional by roster
/// construction — ids are assigned section-major — so the split needs
/// no roster at all.
#[derive(Debug, Clone)]
pub struct CohortScoreModel {
    wave1: WaveScoreModel,
    wave2: WaveScoreModel,
}

impl CohortScoreModel {
    /// Builds both waves' hoisted models (no intervention, matching
    /// [`CohortData::generate`]).
    pub fn new() -> Self {
        CohortScoreModel {
            wave1: WaveScoreModel::new(1),
            wave2: WaveScoreModel::new(2),
        }
    }

    /// Writes the four per-student overall score columns for the cohort
    /// `config` describes. All four slices must have length
    /// `CohortData::effective_size(config.num_students)`. Each value is
    /// bit-identical to the corresponding
    /// `CohortData::generate(config).student_scores(…)` entry.
    pub fn scores_into(
        &self,
        config: &StudyConfig,
        emphasis1: &mut [f64],
        emphasis2: &mut [f64],
        growth1: &mut [f64],
        growth2: &mut [f64],
    ) {
        self.wave_scores_into(config, 1, emphasis1, growth1);
        self.wave_scores_into(config, 2, emphasis2, growth2);
    }

    /// One wave of [`scores_into`](Self::scores_into), for writers that
    /// can only borrow two columns at a time. Applies the same per-wave
    /// seed derivation as [`CohortData::generate`].
    ///
    /// # Panics
    /// Panics for any wave other than 1 or 2.
    pub fn wave_scores_into(
        &self,
        config: &StudyConfig,
        wave: usize,
        emphasis: &mut [f64],
        growth: &mut [f64],
    ) {
        match wave {
            1 => self.wave1.scores_into(config.seed, emphasis, growth),
            2 => self
                .wave2
                .scores_into(config.seed.wrapping_add(1), emphasis, growth),
            w => panic!("wave must be 1 or 2, got {w}"),
        }
    }

    /// Where the section-0/section-1 boundary falls in a cohort of `n`
    /// students: ids are section-major, so the first
    /// [`SECTION_SIZE`](crate::roster::SECTION_SIZE) students are
    /// section 0 and the rest section 1, for any truncated prefix.
    pub fn section_split(n: usize) -> usize {
        n.min(crate::roster::SECTION_SIZE)
    }
}

impl Default for CohortScoreModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::survey::ALL_ELEMENTS;

    #[test]
    fn default_study_has_the_paper_shape() {
        let data = CohortData::generate(&StudyConfig::default());
        assert_eq!(data.n(), 124);
        assert_eq!(data.teams.len(), 26);
        assert_eq!(data.wave1.emphasis.len(), 124);
        assert_eq!(data.wave2.growth.len(), 124);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CohortData::generate(&StudyConfig::default());
        let b = CohortData::generate(&StudyConfig::default());
        assert_eq!(a.wave1, b.wave1);
        assert_eq!(a.students, b.students);
    }

    #[test]
    fn waves_differ_and_second_is_higher() {
        let data = CohortData::generate(&StudyConfig::default());
        let e1: f64 = data
            .student_scores(Category::ClassEmphasis, 1)
            .iter()
            .sum::<f64>()
            / 124.0;
        let e2: f64 = data
            .student_scores(Category::ClassEmphasis, 2)
            .iter()
            .sum::<f64>()
            / 124.0;
        assert!(e2 > e1, "emphasis rises: {e1} → {e2}");
        let g1: f64 = data
            .student_scores(Category::PersonalGrowth, 1)
            .iter()
            .sum::<f64>()
            / 124.0;
        let g2: f64 = data
            .student_scores(Category::PersonalGrowth, 2)
            .iter()
            .sum::<f64>()
            / 124.0;
        assert!(g2 > g1, "growth rises: {g1} → {g2}");
    }

    #[test]
    fn batch_generation_is_thread_count_invariant() {
        let config = StudyConfig {
            num_students: 30,
            seed: 11,
        };
        let reference = CohortData::generate_batch(&config, 12, 1);
        assert_eq!(reference.len(), 12);
        for threads in [2, 4] {
            let got = CohortData::generate_batch(&config, 12, threads);
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.students, b.students);
                assert_eq!(a.wave1, b.wave1);
                assert_eq!(a.wave2, b.wave2);
            }
        }
        // Distinct replicates draw distinct cohorts.
        assert_ne!(reference[0].wave1, reference[1].wave1);
    }

    #[test]
    fn scaled_cohort() {
        let data = CohortData::generate(&StudyConfig {
            num_students: 40,
            seed: 5,
        });
        assert_eq!(data.n(), 40);
        assert_eq!(data.wave1.emphasis.len(), 40);
    }

    #[test]
    fn wave_accessor_and_element_coverage() {
        let data = CohortData::generate(&StudyConfig::default());
        assert_eq!(data.wave(1).wave, 1);
        assert_eq!(data.wave(2).wave, 2);
        for idx in 0..ALL_ELEMENTS.len() {
            assert_eq!(
                data.wave(1)
                    .element_scores(Category::ClassEmphasis, idx)
                    .len(),
                124
            );
        }
    }

    #[test]
    fn score_model_matches_the_full_cohort_path_bit_for_bit() {
        let model = CohortScoreModel::new();
        for (num_students, seed) in [(124usize, 278u64), (40, 7), (200, 3)] {
            let config = StudyConfig { num_students, seed };
            let full = CohortData::generate(&config);
            let n = CohortData::effective_size(num_students);
            assert_eq!(full.n(), n);
            let mut cols = vec![vec![f64::NAN; n]; 4];
            let (e, rest) = cols.split_at_mut(2);
            let (e1, e2) = e.split_at_mut(1);
            let (g1, g2) = rest.split_at_mut(1);
            model.scores_into(&config, &mut e1[0], &mut e2[0], &mut g1[0], &mut g2[0]);
            for (col, (category, wave)) in cols.iter().zip([
                (Category::ClassEmphasis, 1),
                (Category::ClassEmphasis, 2),
                (Category::PersonalGrowth, 1),
                (Category::PersonalGrowth, 2),
            ]) {
                for (got, want) in col.iter().zip(full.student_scores(category, wave)) {
                    assert_eq!(got.to_bits(), want.to_bits(), "{category:?} wave {wave}");
                }
            }
            // Positional sections equal the roster-derived ones.
            let split = CohortScoreModel::section_split(n);
            let by_roster: Vec<usize> = full.students.iter().map(|s| s.section).collect();
            for (id, section) in by_roster.iter().enumerate() {
                assert_eq!(*section, usize::from(id >= split), "id {id}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "wave must be 1 or 2")]
    fn bad_wave_panics() {
        let data = CohortData::generate(&StudyConfig {
            num_students: 10,
            seed: 1,
        });
        let _ = data.wave(3);
    }
}
