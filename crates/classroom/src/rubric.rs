//! Project rubrics — the paper's §V plan: "we also plan on developing
//! project rubrics, as it helps improve students' learning, identify
//! what quality work is, and reduce the assignments grading overheads."
//!
//! A rubric is a weighted set of criteria, each scored on named
//! achievement levels; scoring a submission yields a weighted grade and
//! per-criterion feedback.

use crate::assignment::Deliverable;

/// One achievement level of a criterion.
#[derive(Debug, Clone, PartialEq)]
pub struct Level {
    /// Points awarded at this level (0..=points of the criterion).
    pub points: f64,
    /// Name, e.g. "Exemplary".
    pub name: &'static str,
    /// What earns this level.
    pub descriptor: &'static str,
}

/// One scored criterion.
#[derive(Debug, Clone, PartialEq)]
pub struct Criterion {
    /// What is being assessed.
    pub name: &'static str,
    /// Deliverable the criterion belongs to.
    pub deliverable: Deliverable,
    /// Weight within the rubric (all weights sum to 1).
    pub weight: f64,
    /// Achievement levels, highest first.
    pub levels: Vec<Level>,
}

/// A rubric: weighted criteria covering all four deliverables.
#[derive(Debug, Clone, PartialEq)]
pub struct Rubric {
    /// Assignment number the rubric grades (1–5).
    pub assignment: u8,
    /// The criteria.
    pub criteria: Vec<Criterion>,
}

fn levels() -> Vec<Level> {
    vec![
        Level {
            points: 1.0,
            name: "Exemplary",
            descriptor: "complete, correct, and clearly explained; observations interpreted",
        },
        Level {
            points: 0.8,
            name: "Proficient",
            descriptor: "complete and correct with minor gaps in explanation",
        },
        Level {
            points: 0.5,
            name: "Developing",
            descriptor: "partially complete or screenshots/code without explanation",
        },
        Level {
            points: 0.0,
            name: "Missing",
            descriptor: "not submitted or does not address the task",
        },
    ]
}

/// Builds the standard rubric for an assignment. Weights follow the
/// module's emphasis: the written report carries the most.
pub fn standard_rubric(assignment: u8) -> Rubric {
    assert!(
        (1..=5).contains(&assignment),
        "assignments are numbered 1-5"
    );
    let criteria = vec![
        Criterion {
            name: "work breakdown structure",
            deliverable: Deliverable::PlanningAndScheduling,
            weight: 0.15,
            levels: levels(),
        },
        Criterion {
            name: "collaboration evidence (Slack/GitHub/Docs)",
            deliverable: Deliverable::Collaboration,
            weight: 0.15,
            levels: levels(),
        },
        Criterion {
            name: "programs run, modified, and observations explained",
            deliverable: Deliverable::WrittenReport,
            weight: 0.40,
            levels: levels(),
        },
        Criterion {
            name: "video: every member presents role, learning, challenges",
            deliverable: Deliverable::VideoPresentation,
            weight: 0.30,
            levels: levels(),
        },
    ];
    Rubric {
        assignment,
        criteria,
    }
}

/// A graded submission: the chosen level index per criterion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scoring {
    /// `levels[i]` = index into criterion i's levels (0 = best).
    pub levels: Vec<usize>,
}

/// Result of applying a rubric.
#[derive(Debug, Clone, PartialEq)]
pub struct GradeBreakdown {
    /// Weighted total in [0, 1].
    pub total: f64,
    /// Per-criterion `(name, level name, weighted points)` feedback.
    pub feedback: Vec<(&'static str, &'static str, f64)>,
}

impl Rubric {
    /// Sum of criterion weights (1.0 for a well-formed rubric).
    pub fn total_weight(&self) -> f64 {
        self.criteria.iter().map(|c| c.weight).sum()
    }

    /// Every deliverable the module requires is covered.
    pub fn covers_all_deliverables(&self) -> bool {
        use crate::assignment::required_deliverables;
        required_deliverables()
            .iter()
            .all(|d| self.criteria.iter().any(|c| c.deliverable == *d))
    }

    /// Applies the rubric to a scoring.
    ///
    /// # Panics
    /// Panics if the scoring's shape does not match the rubric.
    pub fn grade(&self, scoring: &Scoring) -> GradeBreakdown {
        assert_eq!(
            scoring.levels.len(),
            self.criteria.len(),
            "one level choice per criterion"
        );
        let mut total = 0.0;
        let mut feedback = Vec::with_capacity(self.criteria.len());
        for (criterion, &level_idx) in self.criteria.iter().zip(&scoring.levels) {
            let level = criterion.levels.get(level_idx).unwrap_or_else(|| {
                panic!("criterion {:?} has no level {level_idx}", criterion.name)
            });
            let earned = criterion.weight * level.points;
            total += earned;
            feedback.push((criterion.name, level.name, earned));
        }
        GradeBreakdown { total, feedback }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_rubric_is_well_formed() {
        for a in 1..=5 {
            let r = standard_rubric(a);
            assert!((r.total_weight() - 1.0).abs() < 1e-12, "assignment {a}");
            assert!(r.covers_all_deliverables());
            assert_eq!(r.assignment, a);
            for c in &r.criteria {
                assert_eq!(c.levels.len(), 4);
                // Levels strictly descend.
                assert!(c.levels.windows(2).all(|w| w[0].points > w[1].points));
                assert_eq!(c.levels[0].points, 1.0);
                assert_eq!(c.levels.last().unwrap().points, 0.0);
            }
        }
    }

    #[test]
    fn all_exemplary_is_full_marks() {
        let r = standard_rubric(2);
        let grade = r.grade(&Scoring { levels: vec![0; 4] });
        assert!((grade.total - 1.0).abs() < 1e-12);
        assert!(grade
            .feedback
            .iter()
            .all(|(_, name, _)| *name == "Exemplary"));
    }

    #[test]
    fn all_missing_is_zero() {
        let r = standard_rubric(3);
        let grade = r.grade(&Scoring { levels: vec![3; 4] });
        assert_eq!(grade.total, 0.0);
    }

    #[test]
    fn report_weight_dominates() {
        // Screenshots-without-explanation on the report ("Developing")
        // costs more than the same slip on planning — the paper's rule
        // that unexplained screenshots receive no credit is what the
        // report criterion encodes.
        let r = standard_rubric(4);
        let slip_report = r.grade(&Scoring {
            levels: vec![0, 0, 2, 0],
        });
        let slip_planning = r.grade(&Scoring {
            levels: vec![2, 0, 0, 0],
        });
        assert!(slip_report.total < slip_planning.total);
    }

    #[test]
    fn feedback_lists_every_criterion() {
        let r = standard_rubric(1);
        let grade = r.grade(&Scoring {
            levels: vec![1, 1, 1, 1],
        });
        assert_eq!(grade.feedback.len(), 4);
        assert!((grade.total - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one level choice per criterion")]
    fn mismatched_scoring_panics() {
        let r = standard_rubric(1);
        let _ = r.grade(&Scoring { levels: vec![0] });
    }

    #[test]
    #[should_panic(expected = "numbered 1-5")]
    fn bad_assignment_number_panics() {
        let _ = standard_rubric(6);
    }
}
