//! The latent learning-dynamics model and its calibration.
//!
//! For each survey wave and element, a student's perceived class
//! emphasis and personal growth are modelled as a bivariate normal:
//! the emphasis side loads on a per-student perception factor (students
//! who rate the course high rate every element high), and the growth
//! side is coupled to emphasis with an element-specific correlation —
//! Hypothesis 3's mechanism ("growth increases when greater emphasis is
//! placed"). Element means rise from wave 1 to wave 2 (the intervention:
//! four technical assignments land in the second half), which produces
//! Hypotheses 1 and 2's paired differences.
//!
//! The target means are taken from the paper's Tables 5 and 6 (whose
//! per-element averages reproduce Tables 1–3's overall means exactly),
//! and the target correlations from Table 4. Dispersion parameters are
//! solved so the per-student overall score matches the published SDs.

use crate::survey::{Element, ALL_ELEMENTS};

/// Per-element, per-wave calibration targets from the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElementTargets {
    /// Mean perceived class emphasis (Table 5).
    pub emphasis_mean: f64,
    /// Mean perceived personal growth (Table 6).
    pub growth_mean: f64,
    /// Pearson correlation between emphasis and growth (Table 4).
    pub correlation: f64,
}

/// Survey wave: 1 = mid-semester, 2 = end of term.
pub type Wave = usize;

/// The paper's published targets for `element` in `wave` (1 or 2).
///
/// # Panics
/// Panics if `wave` is not 1 or 2.
pub fn targets(element: Element, wave: Wave) -> ElementTargets {
    use Element::*;
    match (element, wave) {
        (Teamwork, 1) => t(4.38, 4.14, 0.38),
        (Teamwork, 2) => t(4.41, 4.33, 0.47),
        (InformationGathering, 1) => t(3.81, 3.62, 0.66),
        (InformationGathering, 2) => t(3.91, 3.84, 0.68),
        (ProblemDefinition, 1) => t(4.09, 3.89, 0.62),
        (ProblemDefinition, 2) => t(4.19, 4.00, 0.61),
        (IdeaGeneration, 1) => t(4.04, 3.84, 0.64),
        (IdeaGeneration, 2) => t(4.09, 3.97, 0.57),
        (EvaluationAndDecisionMaking, 1) => t(3.66, 3.36, 0.73),
        (EvaluationAndDecisionMaking, 2) => t(3.98, 3.77, 0.73),
        (Implementation, 1) => t(4.16, 4.05, 0.59),
        (Implementation, 2) => t(4.25, 4.22, 0.61),
        (Communication, 1) => t(4.02, 3.83, 0.67),
        (Communication, 2) => t(4.03, 3.97, 0.67),
        (_, w) => panic!("wave must be 1 or 2, got {w}"),
    }
}

fn t(emphasis_mean: f64, growth_mean: f64, correlation: f64) -> ElementTargets {
    ElementTargets {
        emphasis_mean,
        growth_mean,
        correlation,
    }
}

/// Dispersion and factor-structure parameters per wave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveParams {
    /// Per-element SD of perceived emphasis.
    pub emphasis_sd: f64,
    /// Per-element SD of perceived growth.
    pub growth_sd: f64,
    /// Cross-element correlation of emphasis induced by the student
    /// perception factor.
    pub emphasis_rho: f64,
    /// Cross-element correlation of the growth residual induced by the
    /// student growth factor.
    pub growth_rho: f64,
}

/// Calibrated parameters for a wave.
///
/// Solved so that `Var(mean over 7 elements) = sd_overall²` with
/// `Var(mean) = sd_elem² · (rho + (1 − rho)/7)`; the published overall
/// SDs are 0.232/0.172 (emphasis) and 0.262/0.198 (growth).
pub fn wave_params(wave: Wave) -> WaveParams {
    // Published overall SDs (Tables 2 and 3); element SDs are chosen at
    // a plausible survey spread, slightly inflated to offset the small
    // variance shrinkage the 1–5 clamp introduces.
    let (overall_e, overall_g, sd_e, sd_g) = match wave {
        1 => (0.232_416, 0.262_204, 0.40, 0.47),
        2 => (0.172_052, 0.198_497, 0.35, 0.41),
        w => panic!("wave must be 1 or 2, got {w}"),
    };
    let emphasis_rho = rho_for(overall_e, sd_e);
    // The growth side's cross-element correlation has two sources: the
    // coupling to emphasis (r_e r_f · rho_E) and the shared growth
    // factor. Solve for the factor loading that lands the total on the
    // published overall growth SD.
    let rs: Vec<f64> = ALL_ELEMENTS
        .iter()
        .map(|&e| targets(e, wave).correlation)
        .collect();
    let n = rs.len() as f64;
    let sum_r: f64 = rs.iter().sum();
    let sum_r2: f64 = rs.iter().map(|r| r * r).sum();
    let mean_rr = (sum_r * sum_r - sum_r2) / (n * (n - 1.0));
    let ss: Vec<f64> = rs.iter().map(|r| (1.0 - r * r).sqrt()).collect();
    let sum_s: f64 = ss.iter().sum();
    let sum_s2: f64 = ss.iter().map(|s| s * s).sum();
    let mean_ss = (sum_s * sum_s - sum_s2) / (n * (n - 1.0));
    let needed = rho_for(overall_g, sd_g);
    let growth_rho = ((needed - mean_rr * emphasis_rho) / mean_ss).clamp(0.0, 1.0);
    WaveParams {
        emphasis_sd: sd_e,
        growth_sd: sd_g,
        emphasis_rho,
        growth_rho,
    }
}

/// Solves `sd_overall² = sd_elem² (rho + (1 − rho)/7)` for rho.
fn rho_for(sd_overall: f64, sd_elem: f64) -> f64 {
    let ratio = (sd_overall / sd_elem).powi(2);
    ((ratio * 7.0 - 1.0) / 6.0).clamp(0.0, 1.0)
}

/// The paper's planned Spring-2019 intervention (§IV–V): "incorporate
/// one or two more tasks about Teamwork basics in assignments two to
/// five" to strengthen the weak Teamwork emphasis↔growth relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Intervention {
    /// Extra teamwork tasks added to each of Assignments 2–5 (the paper
    /// plans "one or two").
    pub extra_teamwork_tasks: u8,
}

impl Intervention {
    /// The plan as stated: two extra tasks.
    pub fn spring2019() -> Self {
        Intervention {
            extra_teamwork_tasks: 2,
        }
    }

    /// Adjusts an element's targets: repeated teamwork practice couples
    /// teamwork growth more tightly to its emphasis (the correlation the
    /// paper wants to move from "low" toward "moderate") and nudges the
    /// teamwork means up. Other elements are untouched.
    pub fn adjust(&self, element: Element, targets: ElementTargets) -> ElementTargets {
        if element != Element::Teamwork {
            return targets;
        }
        let boost = self.extra_teamwork_tasks as f64;
        ElementTargets {
            emphasis_mean: (targets.emphasis_mean + 0.02 * boost).min(4.7),
            growth_mean: (targets.growth_mean + 0.03 * boost).min(4.6),
            correlation: (targets.correlation + 0.08 * boost).min(0.85),
        }
    }
}

/// Mean over elements of a per-element statistic — the consistency the
/// paper's tables exhibit (Tables 5/6 means average to Tables 2/3's).
pub fn overall_mean(wave: Wave, pick: impl Fn(ElementTargets) -> f64) -> f64 {
    ALL_ELEMENTS
        .iter()
        .map(|&e| pick(targets(e, wave)))
        .sum::<f64>()
        / ALL_ELEMENTS.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_means_average_to_the_published_overall_means() {
        // Table 5 ↔ Table 2 consistency.
        assert!((overall_mean(1, |t| t.emphasis_mean) - 4.023).abs() < 0.001);
        assert!((overall_mean(2, |t| t.emphasis_mean) - 4.124).abs() < 0.002);
        // Table 6 ↔ Table 3 consistency.
        assert!((overall_mean(1, |t| t.growth_mean) - 3.81).abs() < 0.01);
        assert!((overall_mean(2, |t| t.growth_mean) - 4.01).abs() < 0.005);
    }

    #[test]
    fn every_element_improves_from_wave1_to_wave2() {
        for e in ALL_ELEMENTS {
            let t1 = targets(e, 1);
            let t2 = targets(e, 2);
            assert!(t2.emphasis_mean >= t1.emphasis_mean, "{e:?} emphasis");
            assert!(t2.growth_mean > t1.growth_mean, "{e:?} growth");
        }
    }

    #[test]
    fn emphasis_exceeds_growth_except_where_the_paper_notes() {
        // "students' perception of course emphasis is almost always
        // higher than perceived growth"; Implementation wave 2 is the
        // near-exception (gap 0.03).
        for e in ALL_ELEMENTS {
            for wave in [1, 2] {
                let t = targets(e, wave);
                assert!(t.emphasis_mean >= t.growth_mean, "{e:?} wave {wave}");
            }
        }
        let impl2 = targets(Element::Implementation, 2);
        assert!((impl2.emphasis_mean - impl2.growth_mean - 0.03).abs() < 1e-9);
    }

    #[test]
    fn correlation_targets_match_guilfords_bands_as_described() {
        // Teamwork wave 1 is the only "low" (< 0.40); EDM is "high".
        assert!(targets(Element::Teamwork, 1).correlation < 0.40);
        assert!(targets(Element::EvaluationAndDecisionMaking, 1).correlation >= 0.70);
        assert!(targets(Element::EvaluationAndDecisionMaking, 2).correlation >= 0.70);
        for e in ALL_ELEMENTS {
            for wave in [1, 2] {
                let r = targets(e, wave).correlation;
                assert!((0.2..0.9).contains(&r));
            }
        }
    }

    #[test]
    fn wave_params_are_sane_probabilities() {
        for wave in [1, 2] {
            let p = wave_params(wave);
            assert!(p.emphasis_sd > 0.0 && p.growth_sd > 0.0);
            assert!((0.0..=1.0).contains(&p.emphasis_rho), "{p:?}");
            assert!((0.0..=1.0).contains(&p.growth_rho), "{p:?}");
        }
    }

    #[test]
    fn rho_solver_recovers_the_overall_sd() {
        for (overall, elem) in [(0.232, 0.40), (0.172, 0.35), (0.262, 0.45)] {
            let rho = rho_for(overall, elem);
            let implied = elem * (rho + (1.0 - rho) / 7.0).sqrt();
            assert!((implied - overall).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "wave must be 1 or 2")]
    fn bad_wave_panics() {
        let _ = targets(Element::Teamwork, 3);
    }

    #[test]
    fn intervention_moves_only_teamwork() {
        let i = Intervention::spring2019();
        let before = targets(Element::Teamwork, 1);
        let after = i.adjust(Element::Teamwork, before);
        assert!(after.correlation > before.correlation);
        assert!(after.growth_mean > before.growth_mean);
        // The boost lifts Teamwork out of Guilford's "low" band.
        assert!(after.correlation >= 0.40);
        let other = targets(Element::Communication, 1);
        assert_eq!(i.adjust(Element::Communication, other), other);
    }

    #[test]
    fn intervention_boost_is_capped() {
        let i = Intervention {
            extra_teamwork_tasks: 50,
        };
        let after = i.adjust(Element::Teamwork, targets(Element::Teamwork, 2));
        assert!(after.correlation <= 0.85);
        assert!(after.emphasis_mean <= 4.7);
        assert!(after.growth_mean <= 4.6);
    }
}
