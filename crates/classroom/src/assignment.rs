//! The five two-week assignments: focus, materials, tasks,
//! deliverables, and the grading / peer-rating policy (§II of the
//! paper).

/// The six learning materials handed out with the assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Material {
    /// MIT Sloan "Teamwork Basics" notes.
    TeamworkBasics,
    /// CSinParallel Raspberry Pi multicore architecture workshop.
    PiMulticoreArchitecture,
    /// CSinParallel "Shared Memory Parallel Patternlets in OpenMP".
    OpenMpPatternlets,
    /// Barney, "Introduction to Parallel Computing" (LLNL).
    IntroParallelComputing,
    /// Zlatanov, "CPU vs. SOC — the battle for the future of computing".
    CpuVsSoc,
    /// Google, "Introduction to Parallel Programming and MapReduce".
    IntroMapReduce,
}

/// What an assignment primarily develops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Focus {
    /// Teamwork, communication, planning (Assignment 1).
    SoftSkills,
    /// Parallel programming concepts and practice (Assignments 2–5).
    TechnicalSkills,
}

/// The deliverables every assignment requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deliverable {
    /// Work-breakdown structure: assignee, task, duration, dependency,
    /// due date.
    PlanningAndScheduling,
    /// Evidence of collaboration (Slack/GitHub/Docs activity).
    Collaboration,
    /// The written report with screenshots, code, and explanations.
    WrittenReport,
    /// The 5–10-minute YouTube video with every member presenting.
    VideoPresentation,
}

/// One of the five assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Assignment number, 1–5.
    pub number: u8,
    /// Primary skill focus.
    pub focus: Focus,
    /// Materials provided.
    pub materials: Vec<Material>,
    /// Headline tasks (programs to write or questions to answer).
    pub tasks: Vec<&'static str>,
}

/// Required length of the video presentation, minutes.
pub const VIDEO_MINUTES: std::ops::RangeInclusive<u8> = 5..=10;

/// All four deliverables, required of every assignment.
pub fn required_deliverables() -> [Deliverable; 4] {
    [
        Deliverable::PlanningAndScheduling,
        Deliverable::Collaboration,
        Deliverable::WrittenReport,
        Deliverable::VideoPresentation,
    ]
}

/// Builds the five assignments as the paper describes them.
pub fn assignments() -> Vec<Assignment> {
    vec![
        Assignment {
            number: 1,
            focus: Focus::SoftSkills,
            materials: vec![Material::TeamworkBasics],
            tasks: vec![
                "learn and apply team ground rules: work, facilitator, communication, and meeting norms",
                "handle difficult behaviour and group problems",
                "set up and report on Slack, GitHub, Google Docs, and a YouTube channel",
            ],
        },
        Assignment {
            number: 2,
            focus: Focus::TechnicalSkills,
            materials: vec![
                Material::PiMulticoreArchitecture,
                Material::OpenMpPatternlets,
                Material::IntroParallelComputing,
            ],
            tasks: vec![
                "identify the Raspberry Pi components and core count",
                "install RASPBIAN on microSD and set up the Pi",
                "run and modify the fork-join patternlet",
                "run and modify the SPMD patternlet",
                "observe shared-memory concerns: variable scope and the data race",
            ],
        },
        Assignment {
            number: 3,
            focus: Focus::TechnicalSkills,
            materials: vec![
                Material::PiMulticoreArchitecture,
                Material::OpenMpPatternlets,
                Material::IntroParallelComputing,
                Material::CpuVsSoc,
            ],
            tasks: vec![
                "classify parallel computers by Flynn's taxonomy",
                "explain SoC vs discrete CPU/GPU/RAM",
                "run loops in parallel with equal chunks",
                "schedule parallel loops statically and dynamically with chunks 1, 2, 3",
                "parallelise a loop with dependencies using the reduction clause",
            ],
        },
        Assignment {
            number: 4,
            focus: Focus::TechnicalSkills,
            materials: vec![Material::OpenMpPatternlets, Material::IntroParallelComputing],
            tasks: vec![
                "explain the race condition, why it is hard to reproduce, and how to fix it",
                "compare barrier with reduction, and master-worker with fork-join",
                "integrate with the trapezoidal rule using private, shared, and reduction",
                "coordinate with a barrier, controlling the thread count from the command line",
                "implement the master-worker strategy",
            ],
        },
        Assignment {
            number: 5,
            focus: Focus::TechnicalSkills,
            materials: vec![Material::IntroMapReduce, Material::PiMulticoreArchitecture],
            tasks: vec![
                "explain MapReduce: map, reduce, execution model, and three example computations",
                "when to use OpenMP vs MPI vs MapReduce",
                "solve drug design sequentially, with OpenMP, and with C++11 threads",
                "measure running times; compare program sizes",
                "rerun with 5 threads and with maximum ligand length 7",
            ],
        },
    ]
}

/// Grading policy (§II "PBL Module evaluation").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradingPolicy {
    /// PBL module share of the course grade.
    pub module_weight: f64,
    /// Each assignment's share of the module.
    pub per_assignment_weight: f64,
    /// Grade assigned for refusing to cooperate on an assignment.
    pub non_cooperation_grade: f64,
}

impl Default for GradingPolicy {
    fn default() -> Self {
        GradingPolicy {
            module_weight: 0.25,
            per_assignment_weight: 0.05, // 25% split evenly over five
            non_cooperation_grade: 0.0,
        }
    }
}

/// A peer rating of one teammate's contribution, 0–100.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerRating {
    /// Who is rating.
    pub rater: usize,
    /// Who is being rated.
    pub ratee: usize,
    /// Contribution rating.
    pub rating: f64,
}

/// Applies the policy: each cooperating member receives the team grade;
/// a member whose mean peer rating is below `cooperation_threshold`
/// counts as non-cooperating and receives zero for the assignment.
pub fn individual_grades(
    team_grade: f64,
    members: &[usize],
    ratings: &[PeerRating],
    cooperation_threshold: f64,
) -> Vec<(usize, f64)> {
    members
        .iter()
        .map(|&member| {
            let about: Vec<f64> = ratings
                .iter()
                .filter(|r| r.ratee == member && r.rater != member)
                .map(|r| r.rating)
                .collect();
            let mean = if about.is_empty() {
                100.0
            } else {
                about.iter().sum::<f64>() / about.len() as f64
            };
            let grade = if mean < cooperation_threshold {
                GradingPolicy::default().non_cooperation_grade
            } else {
                team_grade
            };
            (member, grade)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_assignments_first_is_soft_skills() {
        let a = assignments();
        assert_eq!(a.len(), 5);
        assert_eq!(a[0].focus, Focus::SoftSkills);
        assert!(a[1..].iter().all(|x| x.focus == Focus::TechnicalSkills));
        for (i, x) in a.iter().enumerate() {
            assert_eq!(x.number as usize, i + 1);
            assert!(!x.tasks.is_empty());
            assert!(!x.materials.is_empty());
        }
    }

    #[test]
    fn materials_map_to_the_right_assignments() {
        let a = assignments();
        assert_eq!(a[0].materials, vec![Material::TeamworkBasics]);
        assert!(a[2].materials.contains(&Material::CpuVsSoc));
        assert!(a[4].materials.contains(&Material::IntroMapReduce));
        assert!(!a[4].materials.contains(&Material::TeamworkBasics));
    }

    #[test]
    fn grading_weights_sum_to_module_weight() {
        let p = GradingPolicy::default();
        assert!((p.per_assignment_weight * 5.0 - p.module_weight).abs() < 1e-12);
    }

    #[test]
    fn deliverables_are_the_four_components() {
        assert_eq!(required_deliverables().len(), 4);
        assert!(VIDEO_MINUTES.contains(&5) && VIDEO_MINUTES.contains(&10));
        assert!(!VIDEO_MINUTES.contains(&11));
    }

    #[test]
    fn cooperating_members_get_the_team_grade() {
        let ratings = vec![
            PeerRating {
                rater: 1,
                ratee: 0,
                rating: 90.0,
            },
            PeerRating {
                rater: 2,
                ratee: 0,
                rating: 80.0,
            },
            PeerRating {
                rater: 0,
                ratee: 1,
                rating: 95.0,
            },
            PeerRating {
                rater: 2,
                ratee: 1,
                rating: 85.0,
            },
            PeerRating {
                rater: 0,
                ratee: 2,
                rating: 20.0,
            },
            PeerRating {
                rater: 1,
                ratee: 2,
                rating: 10.0,
            },
        ];
        let grades = individual_grades(88.0, &[0, 1, 2], &ratings, 50.0);
        assert_eq!(grades[0], (0, 88.0));
        assert_eq!(grades[1], (1, 88.0));
        assert_eq!(grades[2], (2, 0.0), "non-cooperator zeroed");
    }

    #[test]
    fn self_ratings_are_ignored_and_missing_ratings_default_to_cooperating() {
        let ratings = vec![PeerRating {
            rater: 0,
            ratee: 0,
            rating: 100.0,
        }];
        let grades = individual_grades(75.0, &[0], &ratings, 50.0);
        assert_eq!(grades, vec![(0, 75.0)]);
    }
}
