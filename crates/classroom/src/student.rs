//! Students and their team-formation attributes.
//!
//! The paper forms teams on: gender, system and programming experience,
//! experience in group work, GPA, and technical writing experience.

/// Self-reported gender (the paper tracks male/female counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gender {
    /// Male (98 of 124 in the study).
    Male,
    /// Female (26 of 124 in the study).
    Female,
}

/// Experience on a coarse 0–3 scale (none / some / moderate / strong),
/// as a placement questionnaire would elicit.
pub type ExperienceLevel = u8;

/// Highest experience level.
pub const MAX_EXPERIENCE: ExperienceLevel = 3;

/// One enrolled student.
#[derive(Debug, Clone, PartialEq)]
pub struct Student {
    /// Stable id, 0-based across the whole cohort.
    pub id: usize,
    /// Course section (0 or 1).
    pub section: usize,
    /// Gender.
    pub gender: Gender,
    /// Grade-point average on the 4.0 scale.
    pub gpa: f64,
    /// Systems & programming experience (0–3).
    pub programming: ExperienceLevel,
    /// Prior group-work experience (0–3).
    pub group_work: ExperienceLevel,
    /// Technical-writing experience (0–3).
    pub writing: ExperienceLevel,
}

impl Student {
    /// The scalar "ability" used to balance teams: GPA normalised to
    /// 0–1 plus the three experience scores normalised to 0–1 each,
    /// averaged.
    pub fn ability(&self) -> f64 {
        let gpa = self.gpa / 4.0;
        let exp = |e: ExperienceLevel| e as f64 / MAX_EXPERIENCE as f64;
        (gpa + exp(self.programming) + exp(self.group_work) + exp(self.writing)) / 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn student(gpa: f64, p: u8, g: u8, w: u8) -> Student {
        Student {
            id: 0,
            section: 0,
            gender: Gender::Male,
            gpa,
            programming: p,
            group_work: g,
            writing: w,
        }
    }

    #[test]
    fn ability_is_zero_to_one() {
        assert_eq!(student(0.0, 0, 0, 0).ability(), 0.0);
        assert_eq!(student(4.0, 3, 3, 3).ability(), 1.0);
    }

    #[test]
    fn ability_orders_plausibly() {
        let strong = student(3.8, 3, 2, 2);
        let weak = student(2.4, 1, 1, 0);
        assert!(strong.ability() > weak.ability());
    }

    #[test]
    fn ability_midpoint() {
        let s = student(2.0, 2, 1, 1);
        // (0.5 + 2/3 + 1/3 + 1/3)/4 = 0.458…
        assert!((s.ability() - (0.5 + 2.0 / 3.0 + 1.0 / 3.0 + 1.0 / 3.0) / 4.0).abs() < 1e-12);
    }
}
