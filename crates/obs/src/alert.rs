//! Deterministic alerting over [`crate::timeseries`]: SLO burn-rate
//! rules and robust anomaly detection, emitting an ordered incident
//! timeline.
//!
//! Two rule families, both pure integer functions of the series set
//! (same series → same timeline, bit for bit):
//!
//! * **Multi-window burn rate** ([`BurnRateSlo`]) in the Google-SRE
//!   style: an objective grants an error budget (`budget_per_mille` of
//!   all events may be bad); the burn rate is how many times faster
//!   than budget the service is consuming it. A rule fires only when
//!   **both** a fast window (1 virtual day — catches the storm) and a
//!   slow window (7 virtual days — confirms it is not a blip) burn
//!   above their thresholds, which keeps single noisy windows from
//!   paging.
//! * **Seasonal MAD z-score** ([`AnomalyRule`]): each window is
//!   compared against the median of prior *same-phase* windows (stride
//!   `period`, e.g. prior Fridays for a Friday), deviation scaled by
//!   the median absolute deviation with a relative floor so flat
//!   baselines don't divide by ~zero. One-sided: only upward spikes
//!   fire. This is robust to the semester's weekly seasonality where a
//!   trailing mean would page every deadline Friday.
//!
//! The evaluator walks windows in ascending virtual time, tracks per
//! `(rule, series, shard)` firing state, and emits firing/resolved
//! edges with the offending window and the measured value — a
//! deterministic incident timeline ordered by
//! `(window, rule, series, shard)`.

use std::fmt::Write as _;

use crate::timeseries::{SeriesSet, TimeSeries};
use crate::trace::fnv1a;

/// A service-level objective with two-window burn-rate alerting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurnRateSlo {
    /// Rule name in the timeline (e.g. `deadline-storm`).
    pub name: String,
    /// Series counting bad events (e.g. `sem/rejected`).
    pub bad_series: String,
    /// Series counting all events (e.g. `sem/submitted`).
    pub total_series: String,
    /// Error budget: how many bad events per mille of total the
    /// objective tolerates.
    pub budget_per_mille: u64,
    /// Fast window length in windows (virtual days); catches spikes.
    pub fast_windows: u64,
    /// Slow window length in windows; confirms sustained burn.
    pub slow_windows: u64,
    /// Fast-window burn-rate threshold, in milli-burns (10_000 = 10x
    /// budget speed).
    pub fast_burn_milli: u64,
    /// Slow-window burn-rate threshold, in milli-burns.
    pub slow_burn_milli: u64,
}

impl BurnRateSlo {
    /// Burn rate over `[lo, hi]` in milli-burns: observed bad ratio
    /// divided by the budget ratio, times 1000. `None` when the window
    /// saw no events.
    fn burn_milli(&self, bad: &TimeSeries, total: &TimeSeries, lo: u64, hi: u64) -> Option<u64> {
        let total_sum = total.window_sum(lo, hi);
        if total_sum == 0 {
            return None;
        }
        let bad_sum = bad.window_sum(lo, hi);
        let num = bad_sum as u128 * 1_000_000;
        let den = total_sum as u128 * self.budget_per_mille.max(1) as u128;
        Some((num / den) as u64)
    }
}

/// A robust per-series anomaly rule: seasonal median-absolute-deviation
/// z-score, one-sided upward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyRule {
    /// Rule name in the timeline (e.g. `shard-hotspot`).
    pub name: String,
    /// Series to watch; every shard instance is evaluated separately.
    pub series: String,
    /// Seasonal stride in windows: a window's baseline is the prior
    /// windows at the same phase (7 = same weekday of prior weeks).
    pub period: u64,
    /// Minimum baseline samples before the rule evaluates at all —
    /// early windows with no history can never fire.
    pub min_baseline: usize,
    /// Firing threshold in milli-z (8000 = 8 robust standard
    /// deviations above the seasonal median).
    pub threshold_z_milli: u64,
}

impl AnomalyRule {
    /// Milli-z of `window`'s scalar against its seasonal baseline, or
    /// `None` when the baseline is too thin.
    fn z_milli(&self, series: &TimeSeries, window: u64) -> Option<u64> {
        let x = series.scalar(window)?;
        let mut baseline: Vec<u64> = Vec::new();
        let mut w = window;
        while w >= self.period {
            w -= self.period;
            if let Some(v) = series.scalar(w) {
                baseline.push(v);
            }
        }
        if baseline.len() < self.min_baseline {
            return None;
        }
        baseline.sort_unstable();
        let median = baseline[(baseline.len() - 1) / 2];
        let mut deviations: Vec<u64> = baseline.iter().map(|&v| v.abs_diff(median)).collect();
        deviations.sort_unstable();
        let mad = deviations[(deviations.len() - 1) / 2];
        // Relative floor: a near-constant baseline (MAD ~ 0) must not
        // make ordinary ramp-to-ramp drift look like an 8-sigma event.
        // A quarter of the median means z = 8000 demands roughly a 4x
        // spike over the seasonal median — day-to-day p99 noise on a
        // thin two-sample baseline stays well under that.
        let floor = mad.max(median / 4).max(1);
        let up = x.saturating_sub(median);
        Some(((up as u128 * 6_745) / (floor as u128 * 10)) as u64)
    }
}

/// The full rule set the evaluator runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AlertPolicy {
    /// Burn-rate objectives.
    pub slos: Vec<BurnRateSlo>,
    /// Anomaly rules.
    pub anomalies: Vec<AnomalyRule>,
}

/// Which way an incident edge points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IncidentEdge {
    /// The rule crossed its threshold at this window.
    Firing,
    /// The rule dropped back below its threshold at this window.
    Resolved,
}

impl IncidentEdge {
    /// Stable text label.
    pub fn label(self) -> &'static str {
        match self {
            IncidentEdge::Firing => "FIRING",
            IncidentEdge::Resolved => "resolved",
        }
    }
}

/// One edge in the incident timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// The offending (or recovering) window.
    pub window: u64,
    /// Rule name.
    pub rule: String,
    /// Series the rule evaluated.
    pub series: String,
    /// Shard instance of the series ([`crate::timeseries::CLUSTER_SHARD`]
    /// for cluster-level series).
    pub shard: u32,
    /// Edge direction.
    pub edge: IncidentEdge,
    /// Measured value at the edge (milli-burns or milli-z).
    pub value_milli: u64,
    /// The threshold the value is compared against.
    pub threshold_milli: u64,
}

/// The ordered incident timeline an evaluation produces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Incident edges ordered by `(window, rule, series, shard)`.
    pub incidents: Vec<Incident>,
}

impl Timeline {
    /// Number of firing edges (the gate's headline number).
    pub fn firing_count(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| i.edge == IncidentEdge::Firing)
            .count()
    }

    /// Firing edges of one rule.
    pub fn firing_of(&self, rule: &str) -> usize {
        self.incidents
            .iter()
            .filter(|i| i.edge == IncidentEdge::Firing && i.rule == rule)
            .count()
    }

    /// Byte-stable `"pbl-alert/v1"` JSON of the timeline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"pbl-alert/v1\",\n");
        let _ = writeln!(out, "  \"firing\": {},", self.firing_count());
        out.push_str("  \"incidents\": [\n");
        for (i, inc) in self.incidents.iter().enumerate() {
            let comma = if i + 1 == self.incidents.len() {
                ""
            } else {
                ","
            };
            let shard = if inc.shard == crate::timeseries::CLUSTER_SHARD {
                "cluster".to_string()
            } else {
                inc.shard.to_string()
            };
            let _ = writeln!(
                out,
                "    {{\"window\": {}, \"rule\": \"{}\", \"series\": \"{}\", \"shard\": \"{}\", \"edge\": \"{}\", \"value_milli\": {}, \"threshold_milli\": {}}}{comma}",
                inc.window,
                inc.rule,
                inc.series,
                shard,
                inc.edge.label(),
                inc.value_milli,
                inc.threshold_milli,
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// FNV-1a digest of [`Timeline::to_json`].
    pub fn digest(&self) -> u64 {
        fnv1a(self.to_json().as_bytes())
    }

    /// Human-readable timeline, one line per edge.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.incidents.is_empty() {
            out.push_str("no incidents: every rule stayed below threshold\n");
            return out;
        }
        for inc in &self.incidents {
            let shard = if inc.shard == crate::timeseries::CLUSTER_SHARD {
                "cluster".to_string()
            } else {
                format!("shard {}", inc.shard)
            };
            let _ = writeln!(
                out,
                "day {:>3}  {:<8}  {:<16}  {} ({})  value {} milli vs threshold {}",
                inc.window,
                inc.edge.label(),
                inc.rule,
                inc.series,
                shard,
                inc.value_milli,
                inc.threshold_milli,
            );
        }
        out
    }
}

/// Evaluates every rule of `policy` over `series` and returns the
/// ordered incident timeline. Pure: no clock, no randomness, no state
/// beyond the arguments.
pub fn evaluate(series: &SeriesSet, policy: &AlertPolicy) -> Timeline {
    let mut incidents: Vec<Incident> = Vec::new();

    for slo in &policy.slos {
        // Evaluate per shard carrying BOTH series of the objective.
        for shard in series.shards_of(&slo.total_series) {
            let Some(total) = series.get(&slo.total_series, shard) else {
                continue;
            };
            let Some(bad) = series.get(&slo.bad_series, shard) else {
                continue;
            };
            let mut firing = false;
            for point in total.points() {
                let w = point.window;
                let fast_lo = (w + 1).saturating_sub(slo.fast_windows);
                let slow_lo = (w + 1).saturating_sub(slo.slow_windows);
                let fast = slo.burn_milli(bad, total, fast_lo, w).unwrap_or(0);
                let slow = slo.burn_milli(bad, total, slow_lo, w).unwrap_or(0);
                let above = fast >= slo.fast_burn_milli && slow >= slo.slow_burn_milli;
                if above != firing {
                    firing = above;
                    incidents.push(Incident {
                        window: w,
                        rule: slo.name.clone(),
                        series: slo.bad_series.clone(),
                        shard,
                        edge: if above {
                            IncidentEdge::Firing
                        } else {
                            IncidentEdge::Resolved
                        },
                        value_milli: fast,
                        threshold_milli: slo.fast_burn_milli,
                    });
                }
            }
        }
    }

    for rule in &policy.anomalies {
        for shard in series.shards_of(&rule.series) {
            let Some(s) = series.get(&rule.series, shard) else {
                continue;
            };
            let mut firing = false;
            for point in s.points() {
                let w = point.window;
                let Some(z) = rule.z_milli(s, w) else {
                    continue;
                };
                let above = z >= rule.threshold_z_milli;
                if above != firing {
                    firing = above;
                    incidents.push(Incident {
                        window: w,
                        rule: rule.name.clone(),
                        series: rule.series.clone(),
                        shard,
                        edge: if above {
                            IncidentEdge::Firing
                        } else {
                            IncidentEdge::Resolved
                        },
                        value_milli: z,
                        threshold_milli: rule.threshold_z_milli,
                    });
                }
            }
        }
    }

    incidents.sort_by(|a, b| {
        (a.window, &a.rule, &a.series, a.shard).cmp(&(b.window, &b.rule, &b.series, b.shard))
    });
    Timeline { incidents }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::CLUSTER_SHARD;

    fn storm_series() -> SeriesSet {
        // 21 quiet days at 1000 events / 10 bad (1% — exactly budget),
        // then a 2-day storm at 60% bad.
        let mut set = SeriesSet::new(1, 64);
        for day in 0..21u64 {
            let (total, bad) = if day == 14 || day == 15 {
                (1_000, 600)
            } else {
                (1_000, 10)
            };
            set.counter("total", CLUSTER_SHARD, true).record(day, total);
            set.counter("bad", CLUSTER_SHARD, true).record(day, bad);
        }
        set
    }

    fn storm_policy() -> AlertPolicy {
        AlertPolicy {
            slos: vec![BurnRateSlo {
                name: "storm".into(),
                bad_series: "bad".into(),
                total_series: "total".into(),
                budget_per_mille: 20,
                fast_windows: 1,
                slow_windows: 7,
                fast_burn_milli: 10_000,
                slow_burn_milli: 3_000,
            }],
            anomalies: Vec::new(),
        }
    }

    #[test]
    fn burn_rate_fires_on_the_storm_and_resolves_after() {
        let tl = evaluate(&storm_series(), &storm_policy());
        assert_eq!(tl.firing_count(), 1, "{}", tl.render_text());
        let fire = &tl.incidents[0];
        assert_eq!((fire.window, fire.edge), (14, IncidentEdge::Firing));
        assert!(fire.value_milli >= 10_000);
        let resolve = &tl.incidents[1];
        assert_eq!((resolve.window, resolve.edge), (16, IncidentEdge::Resolved));
    }

    #[test]
    fn quiet_series_stays_quiet() {
        let mut set = SeriesSet::new(1, 64);
        for day in 0..21u64 {
            set.counter("total", CLUSTER_SHARD, true).record(day, 1_000);
            set.counter("bad", CLUSTER_SHARD, true).record(day, 10);
        }
        let tl = evaluate(&set, &storm_policy());
        assert_eq!(tl.firing_count(), 0, "{}", tl.render_text());
    }

    #[test]
    fn fast_spike_without_slow_burn_does_not_page() {
        // One bad day inside an otherwise clean week: fast window burns
        // hot but the 7-day window stays under its threshold.
        let mut set = SeriesSet::new(1, 64);
        for day in 0..21u64 {
            let bad = if day == 14 { 45 } else { 0 };
            set.counter("total", CLUSTER_SHARD, true).record(day, 1_000);
            set.counter("bad", CLUSTER_SHARD, true).record(day, bad);
        }
        let tl = evaluate(&set, &storm_policy());
        assert_eq!(tl.firing_count(), 0, "{}", tl.render_text());
    }

    fn weekly_series(spike_day: Option<u64>) -> SeriesSet {
        // Strong weekly seasonality: Fridays are 5x a weekday. The
        // seasonal baseline must absorb that.
        let mut set = SeriesSet::new(1, 64);
        for day in 0..28u64 {
            let base = if day % 7 == 4 { 5_000 } else { 1_000 };
            let v = if Some(day) == spike_day {
                base * 8
            } else {
                base
            };
            set.gauge("p99", 3, false).record(day, v);
        }
        set
    }

    fn anomaly_policy() -> AlertPolicy {
        AlertPolicy {
            slos: Vec::new(),
            anomalies: vec![AnomalyRule {
                name: "hotspot".into(),
                series: "p99".into(),
                period: 7,
                min_baseline: 2,
                threshold_z_milli: 8_000,
            }],
        }
    }

    #[test]
    fn seasonal_baseline_absorbs_weekly_pattern() {
        let tl = evaluate(&weekly_series(None), &anomaly_policy());
        assert_eq!(tl.firing_count(), 0, "{}", tl.render_text());
    }

    #[test]
    fn off_season_spike_fires_on_the_right_shard_and_window() {
        let tl = evaluate(&weekly_series(Some(25)), &anomaly_policy());
        assert_eq!(tl.firing_count(), 1, "{}", tl.render_text());
        let fire = &tl.incidents[0];
        assert_eq!((fire.window, fire.shard), (25, 3));
        assert_eq!(fire.rule, "hotspot");
    }

    #[test]
    fn early_windows_below_min_baseline_never_fire() {
        // A huge day-3 spike has no same-phase history yet.
        let mut set = SeriesSet::new(1, 64);
        for day in 0..7u64 {
            let v = if day == 3 { 1_000_000 } else { 100 };
            set.gauge("p99", 0, false).record(day, v);
        }
        let tl = evaluate(&set, &anomaly_policy());
        assert_eq!(tl.firing_count(), 0, "{}", tl.render_text());
    }

    #[test]
    fn evaluator_is_pure_and_timeline_json_is_stable() {
        let series = weekly_series(Some(25));
        let policy = anomaly_policy();
        let a = evaluate(&series, &policy);
        let b = evaluate(&series, &policy);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.digest(), b.digest());
        assert!(a.to_json().contains("\"schema\": \"pbl-alert/v1\""));
        assert!(a.render_text().contains("FIRING"));
    }
}
