//! Deterministic virtual-time series: windowed telemetry over the
//! cluster and the engines.
//!
//! A [`TimeSeries`] accumulates counter, gauge or histogram samples
//! into **fixed-width windows of virtual time** — a semester day, a
//! replicate-index span — inside a **bounded ring** of window points:
//! past the configured capacity the oldest window is evicted and
//! counted ([`TimeSeries::dropped`]), never silently lost. A
//! [`SeriesSet`] holds many series keyed by `(name, shard)`, merges
//! per-shard sets deterministically, rolls shards up into
//! cluster-level totals, and exports the whole thing as byte-stable
//! `"pbl-ts/v1"` JSON with an FNV-1a digest.
//!
//! ## The telemetry determinism contract
//!
//! Every window index is **virtual time** (day numbers, replicate
//! indices) — no wall clock may enter an exported series. Histogram
//! points use fixed bucket edges so p50/p95/p99 are integer bucket
//! values, not interpolations. Exports order every point by
//! `(window, shard, series)` — the same canonical merge order the
//! cluster uses for its dispatch plans — so two hosts producing the
//! same telemetry produce the same bytes.
//!
//! Two digests mirror the cluster's own pair:
//!
//! * [`SeriesSet::digest`] covers everything, including per-shard
//!   series — invariant under worker count for a fixed shard count;
//! * [`SeriesSet::invariant_digest`] covers only series flagged
//!   shard-invariant (admission-side counters) — one value across
//!   every (shards × workers) cell.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use crate::trace::fnv1a;

/// The pseudo-shard id of cluster-level (not per-shard) series;
/// rendered as `"cluster"` in exports and sorted after real shards.
pub const CLUSTER_SHARD: u32 = u32::MAX;

/// What a series accumulates per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Samples add within a window.
    Counter,
    /// Last sample in a window wins.
    Gauge,
    /// Samples land in fixed buckets; percentiles read off the edges.
    Histogram,
}

impl SeriesKind {
    /// Stable JSON label.
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// One window's accumulated value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowPoint {
    /// Window index (`virtual time / window width`).
    pub window: u64,
    /// Counter sum or gauge value (0 for histograms).
    pub value: u64,
    /// Histogram bucket counts (`edges.len() + 1`, trailing overflow);
    /// empty for counters and gauges.
    pub counts: Vec<u64>,
    /// Histogram observation count.
    pub count: u64,
    /// Histogram observation sum (saturating).
    pub sum: u64,
    /// Smallest histogram observation (0 when empty).
    pub min: u64,
    /// Largest histogram observation (0 when empty).
    pub max: u64,
}

impl WindowPoint {
    fn new(window: u64, buckets: usize) -> Self {
        WindowPoint {
            window,
            value: 0,
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

/// Nearest-rank percentile over fixed-edge buckets: the smallest edge
/// whose cumulative count reaches the `p_mille` rank (the overflow
/// bucket reports the observed max). Integer arithmetic only.
pub fn bucket_percentile(edges: &[u64], counts: &[u64], count: u64, max: u64, p_mille: u64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as u128 * p_mille as u128).div_ceil(1_000)).max(1) as u64;
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return if i < edges.len() { edges[i] } else { max };
        }
    }
    max
}

/// One named series on one shard: a bounded ring of window points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    /// Series name (`sem/accepted`, `shard/p99_sojourn_vt`, ...).
    pub name: String,
    /// Owning shard, or [`CLUSTER_SHARD`] for cluster-level series.
    pub shard: u32,
    /// True when the series is a pure function of admission-side
    /// state and therefore bit-identical across every
    /// (shards × workers) cell; these make up the invariant digest.
    pub invariant: bool,
    /// What the series accumulates.
    pub kind: SeriesKind,
    /// Virtual-time width of one window.
    pub width: u64,
    /// Ring capacity in windows.
    pub capacity: usize,
    /// Histogram bucket edges (empty for counters and gauges).
    pub edges: Vec<u64>,
    /// Window points evicted from the ring or too old to route — the
    /// counted (never silent) truncation.
    pub dropped: u64,
    points: VecDeque<WindowPoint>,
}

impl TimeSeries {
    fn new(
        name: &str,
        shard: u32,
        invariant: bool,
        kind: SeriesKind,
        width: u64,
        capacity: usize,
        edges: &[u64],
    ) -> Self {
        TimeSeries {
            name: name.to_string(),
            shard,
            invariant,
            kind,
            width: width.max(1),
            capacity: capacity.max(1),
            edges: edges.to_vec(),
            dropped: 0,
            points: VecDeque::new(),
        }
    }

    fn buckets(&self) -> usize {
        if matches!(self.kind, SeriesKind::Histogram) {
            self.edges.len() + 1
        } else {
            0
        }
    }

    /// The stored window points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &WindowPoint> {
        self.points.iter()
    }

    /// Records a sample at virtual time `vt`. Samples for the current
    /// (or any retained) window accumulate by kind; a new window past
    /// the ring capacity evicts the oldest (counted in `dropped`), and
    /// a sample older than the ring's oldest window is dropped.
    pub fn record(&mut self, vt: u64, value: u64) {
        let window = vt / self.width;
        let buckets = self.buckets();
        let at = match self.points.back() {
            None => {
                self.points.push_back(WindowPoint::new(window, buckets));
                self.points.len() - 1
            }
            Some(last) if window > last.window => {
                if self.points.len() == self.capacity {
                    self.points.pop_front();
                    self.dropped += 1;
                }
                self.points.push_back(WindowPoint::new(window, buckets));
                self.points.len() - 1
            }
            Some(_) => {
                // In-ring (possibly out-of-order) window: binary search
                // the sorted ring; older than the ring is a counted drop.
                match self
                    .points
                    .binary_search_by_key(&window, |point| point.window)
                {
                    Ok(at) => at,
                    Err(0) => {
                        self.dropped += 1;
                        return;
                    }
                    Err(at) => {
                        self.points.insert(at, WindowPoint::new(window, buckets));
                        at
                    }
                }
            }
        };
        let point = &mut self.points[at];
        match self.kind {
            SeriesKind::Counter => point.value = point.value.saturating_add(value),
            SeriesKind::Gauge => point.value = value,
            SeriesKind::Histogram => {
                let bucket = self.edges.partition_point(|&edge| edge < value);
                point.counts[bucket] += 1;
                if point.count == 0 || value < point.min {
                    point.min = value;
                }
                if value > point.max {
                    point.max = value;
                }
                point.count += 1;
                point.sum = point.sum.saturating_add(value);
            }
        }
    }

    /// The scalar a window contributes to alerting: counter sum, gauge
    /// value, or histogram p99.
    pub fn scalar(&self, window: u64) -> Option<u64> {
        let point = self
            .points
            .binary_search_by_key(&window, |p| p.window)
            .ok()
            .map(|at| &self.points[at])?;
        Some(match self.kind {
            SeriesKind::Counter | SeriesKind::Gauge => point.value,
            SeriesKind::Histogram => {
                bucket_percentile(&self.edges, &point.counts, point.count, point.max, 990)
            }
        })
    }

    /// Sum of the scalar over an inclusive window range, treating
    /// absent windows as zero — the burn-rate evaluator's integral.
    pub fn window_sum(&self, lo: u64, hi: u64) -> u64 {
        self.points
            .iter()
            .filter(|p| p.window >= lo && p.window <= hi)
            .map(|p| match self.kind {
                SeriesKind::Counter | SeriesKind::Gauge => p.value,
                SeriesKind::Histogram => p.count,
            })
            .sum()
    }

    /// Folds another ring of the same `(name, shard)` series into this
    /// one: counters and histograms add per window, gauges take the
    /// other side's value (later merge argument wins), drop counts add.
    fn absorb(&mut self, other: &TimeSeries) {
        assert_eq!(self.kind, other.kind, "merge of mismatched series kinds");
        assert_eq!(self.edges, other.edges, "merge of mismatched edges");
        self.dropped += other.dropped;
        for point in &other.points {
            match self
                .points
                .binary_search_by_key(&point.window, |p| p.window)
            {
                Ok(at) => {
                    let mine = &mut self.points[at];
                    match self.kind {
                        SeriesKind::Counter => mine.value = mine.value.saturating_add(point.value),
                        SeriesKind::Gauge => mine.value = point.value,
                        SeriesKind::Histogram => {
                            for (a, b) in mine.counts.iter_mut().zip(&point.counts) {
                                *a += b;
                            }
                            if point.count > 0 {
                                if mine.count == 0 || point.min < mine.min {
                                    mine.min = point.min;
                                }
                                mine.max = mine.max.max(point.max);
                            }
                            mine.count += point.count;
                            mine.sum = mine.sum.saturating_add(point.sum);
                        }
                    }
                }
                Err(at) => self.points.insert(at, point.clone()),
            }
        }
        while self.points.len() > self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
    }
}

/// A set of series keyed by `(name, shard)`, with one window width and
/// ring capacity policy for every series it creates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSet {
    width: u64,
    capacity: usize,
    series: BTreeMap<(String, u32), TimeSeries>,
}

impl SeriesSet {
    /// An empty set whose series use `width`-wide windows and retain
    /// `capacity` windows each.
    pub fn new(width: u64, capacity: usize) -> Self {
        SeriesSet {
            width: width.max(1),
            capacity: capacity.max(1),
            series: BTreeMap::new(),
        }
    }

    /// The configured window width.
    pub fn width(&self) -> u64 {
        self.width
    }

    fn entry(
        &mut self,
        name: &str,
        shard: u32,
        invariant: bool,
        kind: SeriesKind,
        edges: &[u64],
    ) -> &mut TimeSeries {
        let series = self
            .series
            .entry((name.to_string(), shard))
            .or_insert_with(|| {
                TimeSeries::new(
                    name,
                    shard,
                    invariant,
                    kind,
                    self.width,
                    self.capacity,
                    edges,
                )
            });
        assert_eq!(series.kind, kind, "series {name} re-opened as another kind");
        series
    }

    /// Get-or-create a counter series.
    pub fn counter(&mut self, name: &str, shard: u32, invariant: bool) -> &mut TimeSeries {
        self.entry(name, shard, invariant, SeriesKind::Counter, &[])
    }

    /// Get-or-create a gauge series.
    pub fn gauge(&mut self, name: &str, shard: u32, invariant: bool) -> &mut TimeSeries {
        self.entry(name, shard, invariant, SeriesKind::Gauge, &[])
    }

    /// Get-or-create a histogram series with fixed bucket `edges`.
    pub fn histogram(
        &mut self,
        name: &str,
        shard: u32,
        invariant: bool,
        edges: &[u64],
    ) -> &mut TimeSeries {
        self.entry(name, shard, invariant, SeriesKind::Histogram, edges)
    }

    /// Looks up one series.
    pub fn get(&self, name: &str, shard: u32) -> Option<&TimeSeries> {
        self.series.get(&(name.to_string(), shard))
    }

    /// All series in `(name, shard)` order.
    pub fn iter(&self) -> impl Iterator<Item = &TimeSeries> {
        self.series.values()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when the set holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The shards carrying a series of this name, ascending.
    pub fn shards_of(&self, name: &str) -> Vec<u32> {
        self.series
            .keys()
            .filter(|(n, _)| n == name)
            .map(|&(_, shard)| shard)
            .collect()
    }

    /// Total windows dropped across every series.
    pub fn total_dropped(&self) -> u64 {
        self.series.values().map(|s| s.dropped).sum()
    }

    /// Merges per-shard sets into one: series with the same
    /// `(name, shard)` key fold point-wise (counters and histograms
    /// add, gauges take the later part), disjoint keys concatenate.
    /// Argument order is the only order that matters, so the merge is
    /// deterministic by construction.
    pub fn merge(parts: Vec<SeriesSet>) -> SeriesSet {
        let width = parts.first().map_or(1, |p| p.width);
        let capacity = parts.first().map_or(1, |p| p.capacity);
        let mut merged = SeriesSet::new(width, capacity);
        for part in parts {
            for (key, series) in part.series {
                match merged.series.get_mut(&key) {
                    Some(mine) => mine.absorb(&series),
                    None => {
                        merged.series.insert(key, series);
                    }
                }
            }
        }
        merged
    }

    /// Rolls every shard of each series name up into one
    /// [`CLUSTER_SHARD`] series: counters, histograms and gauges all
    /// add per window (a queue-depth gauge summed over shards is the
    /// cluster queue depth). The result is a fresh set.
    pub fn rollup(&self) -> SeriesSet {
        let mut out = SeriesSet::new(self.width, self.capacity);
        for series in self.series.values() {
            let invariant = series.invariant;
            let entry = out.entry(
                &series.name,
                CLUSTER_SHARD,
                invariant,
                series.kind,
                &series.edges,
            );
            // Reuse the point-wise fold; gauges must add across shards
            // here (not last-wins), so fold them as counters.
            let mut part = series.clone();
            if matches!(series.kind, SeriesKind::Gauge) {
                part.kind = SeriesKind::Counter;
                entry.kind = SeriesKind::Counter;
                entry.absorb(&part);
                entry.kind = SeriesKind::Gauge;
            } else {
                entry.absorb(&part);
            }
        }
        out
    }

    fn shard_label(shard: u32) -> String {
        if shard == CLUSTER_SHARD {
            "cluster".to_string()
        } else {
            shard.to_string()
        }
    }

    fn json_of(&self, filter: impl Fn(&TimeSeries) -> bool) -> String {
        let picked: Vec<&TimeSeries> = self.series.values().filter(|s| filter(s)).collect();
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"pbl-ts/v1\",\n");
        out.push_str("  \"series\": [\n");
        for (i, s) in picked.iter().enumerate() {
            let comma = if i + 1 == picked.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"shard\": \"{}\", \"kind\": \"{}\", \"width\": {}, \"capacity\": {}, \"invariant\": {}, \"dropped\": {}, \"points\": {}}}{comma}",
                s.name,
                Self::shard_label(s.shard),
                s.kind.label(),
                s.width,
                s.capacity,
                s.invariant,
                s.dropped,
                s.points.len(),
            );
        }
        out.push_str("  ],\n");
        // Points in the canonical (window, shard, series) merge order.
        let mut rows: Vec<(u64, u32, &str, &TimeSeries, &WindowPoint)> = Vec::new();
        for s in &picked {
            for p in &s.points {
                rows.push((p.window, s.shard, s.name.as_str(), s, p));
            }
        }
        rows.sort_by_key(|&(window, shard, name, _, _)| (window, shard, name.to_string()));
        out.push_str("  \"points\": [\n");
        for (i, (window, shard, name, s, p)) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            let body = match s.kind {
                SeriesKind::Counter | SeriesKind::Gauge => format!("\"value\": {}", p.value),
                SeriesKind::Histogram => {
                    let pct =
                        |p_mille| bucket_percentile(&s.edges, &p.counts, p.count, p.max, p_mille);
                    let counts: Vec<String> = p.counts.iter().map(u64::to_string).collect();
                    format!(
                        "\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"counts\": [{}]",
                        p.count,
                        p.sum,
                        p.min,
                        p.max,
                        pct(500),
                        pct(950),
                        pct(990),
                        counts.join(", "),
                    )
                }
            };
            let _ = writeln!(
                out,
                "    {{\"window\": {window}, \"shard\": \"{}\", \"series\": \"{name}\", {body}}}{comma}",
                Self::shard_label(*shard),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serialises every series to the byte-stable `"pbl-ts/v1"` JSON:
    /// series metadata in `(name, shard)` order, then every window
    /// point in `(window, shard, series)` order.
    pub fn to_json(&self) -> String {
        self.json_of(|_| true)
    }

    /// FNV-1a digest of [`SeriesSet::to_json`] — worker-invariant for
    /// a fixed shard count when fed from the cluster.
    pub fn digest(&self) -> u64 {
        fnv1a(self.to_json().as_bytes())
    }

    /// The `"pbl-ts/v1"` JSON restricted to shard-invariant series.
    pub fn invariant_json(&self) -> String {
        self.json_of(|s| s.invariant)
    }

    /// FNV-1a digest of the invariant series alone — **the telemetry
    /// digest**: one value across every (shards × workers) cell.
    pub fn invariant_digest(&self) -> u64 {
        fnv1a(self.invariant_json().as_bytes())
    }

    /// [`SeriesSet::to_json`] with a `"digest"` line inserted under the
    /// schema stamp, mirroring the metrics snapshot convention.
    pub fn to_json_with_digest(&self) -> String {
        let digest = format!("  \"digest\": \"0x{:016x}\",\n", self.digest());
        let json = self.to_json();
        let Some(schema_end) = json.find(",\n") else {
            return json;
        };
        let mut out = String::with_capacity(json.len() + digest.len());
        out.push_str(&json[..schema_end + 2]);
        out.push_str(&digest);
        out.push_str(&json[schema_end + 2..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_windows_accumulate_by_kind() {
        let mut set = SeriesSet::new(10, 8);
        let c = set.counter("jobs", 0, true);
        c.record(0, 2);
        c.record(9, 3); // same window (0..10)
        c.record(10, 5); // next window
        let points: Vec<_> = set.get("jobs", 0).unwrap().points().collect();
        assert_eq!(points.len(), 2);
        assert_eq!((points[0].window, points[0].value), (0, 5));
        assert_eq!((points[1].window, points[1].value), (1, 5));

        let g = set.gauge("depth", 0, false);
        g.record(0, 7);
        g.record(5, 3); // same window: last wins
        assert_eq!(set.get("depth", 0).unwrap().scalar(0), Some(3));
    }

    #[test]
    fn histogram_percentiles_read_off_the_edges() {
        let mut set = SeriesSet::new(1, 8);
        let h = set.histogram("lat", 0, false, &[10, 100, 1_000]);
        for v in [5, 7, 50, 90, 4_000] {
            h.record(0, v);
        }
        let s = set.get("lat", 0).unwrap();
        let p = s.points().next().unwrap();
        assert_eq!(p.counts, vec![2, 2, 0, 1]);
        assert_eq!((p.count, p.min, p.max), (5, 5, 4_000));
        assert_eq!(
            bucket_percentile(&s.edges, &p.counts, p.count, p.max, 500),
            100
        );
        assert_eq!(
            bucket_percentile(&s.edges, &p.counts, p.count, p.max, 990),
            4_000
        );
        assert_eq!(s.scalar(0), Some(4_000), "histogram scalar is p99");
    }

    #[test]
    fn ring_bounds_storage_and_counts_drops() {
        let mut set = SeriesSet::new(1, 3);
        let c = set.counter("x", 0, false);
        for w in 0..5 {
            c.record(w, 1);
        }
        let s = set.get("x", 0).unwrap();
        assert_eq!(s.dropped, 2, "two windows evicted");
        let windows: Vec<u64> = s.points().map(|p| p.window).collect();
        assert_eq!(windows, vec![2, 3, 4]);
        // A record older than the ring is dropped, not resurrected.
        set.counter("x", 0, false).record(0, 1);
        assert_eq!(set.get("x", 0).unwrap().dropped, 3);
    }

    #[test]
    fn merge_folds_same_key_and_concatenates_disjoint() {
        let mut a = SeriesSet::new(1, 16);
        a.counter("jobs", 0, false).record(0, 2);
        a.counter("jobs", 0, false).record(1, 4);
        let mut b = SeriesSet::new(1, 16);
        b.counter("jobs", 0, false).record(1, 6);
        b.counter("jobs", 1, false).record(0, 9);
        let m = SeriesSet::merge(vec![a, b]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("jobs", 0).unwrap().scalar(1), Some(10));
        assert_eq!(m.get("jobs", 1).unwrap().scalar(0), Some(9));
        assert_eq!(m.shards_of("jobs"), vec![0, 1]);
    }

    #[test]
    fn rollup_sums_across_shards_per_window() {
        let mut set = SeriesSet::new(1, 16);
        set.counter("jobs", 0, false).record(0, 2);
        set.counter("jobs", 1, false).record(0, 3);
        set.gauge("depth", 0, false).record(0, 5);
        set.gauge("depth", 1, false).record(0, 7);
        let up = set.rollup();
        assert_eq!(up.get("jobs", CLUSTER_SHARD).unwrap().scalar(0), Some(5));
        assert_eq!(up.get("depth", CLUSTER_SHARD).unwrap().scalar(0), Some(12));
        assert_eq!(
            up.get("depth", CLUSTER_SHARD).unwrap().kind,
            SeriesKind::Gauge
        );
    }

    #[test]
    fn json_is_stable_ordered_and_digested() {
        let mut set = SeriesSet::new(1, 16);
        set.counter("b", 1, false).record(0, 1);
        set.counter("a", CLUSTER_SHARD, true).record(0, 2);
        set.counter("a", CLUSTER_SHARD, true).record(1, 3);
        let json = set.to_json();
        assert!(json.contains("\"schema\": \"pbl-ts/v1\""));
        // Points sorted by (window, shard, series): window 0 shard 1
        // before window 0 cluster, before window 1.
        let b_at = json.find("\"series\": \"b\"").unwrap();
        let a0_at = json.find("\"window\": 0, \"shard\": \"cluster\"").unwrap();
        let a1_at = json.find("\"window\": 1").unwrap();
        assert!(b_at < a0_at && a0_at < a1_at, "{json}");
        assert_eq!(set.digest(), set.clone().digest());
        // The invariant digest sees only the invariant series.
        assert!(set.invariant_json().contains("\"a\""));
        assert!(!set.invariant_json().contains("\"b\""));
        assert_ne!(set.invariant_digest(), set.digest());
        // The digest-decorated form embeds the plain digest.
        let with = set.to_json_with_digest();
        assert!(with.contains(&format!("\"digest\": \"0x{:016x}\"", set.digest())));
    }

    #[test]
    fn window_sum_treats_absent_windows_as_zero() {
        let mut set = SeriesSet::new(1, 16);
        let c = set.counter("r", CLUSTER_SHARD, true);
        c.record(2, 5);
        c.record(6, 7);
        let s = set.get("r", CLUSTER_SHARD).unwrap();
        assert_eq!(s.window_sum(0, 6), 12);
        assert_eq!(s.window_sum(3, 5), 0);
        assert_eq!(s.window_sum(6, 6), 7);
    }
}
