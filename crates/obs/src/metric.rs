//! The three metric instruments: counters, histograms, spans.
//!
//! All three are cheap `Arc` handles over atomic state, so instrumented
//! code clones them freely and records lock-free from any thread.
//! Every mutation commutes (saturating adds, bucket increments), which
//! is what makes the final values thread-count invariant when the
//! recorded multiset of values is.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Saturating add into an atomic: the counter sticks at `u64::MAX`
/// instead of wrapping, so an overflowing instrument reads as "pegged"
/// rather than corrupting the snapshot.
fn saturating_fetch_add(cell: &AtomicU64, delta: u64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(delta);
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct CounterState {
    value: AtomicU64,
}

/// A monotonic counter. Increments saturate at `u64::MAX`.
#[derive(Debug, Clone)]
pub struct Counter {
    state: Arc<CounterState>,
}

impl Counter {
    pub(crate) fn new() -> Self {
        Counter {
            state: Arc::new(CounterState::default()),
        }
    }

    /// Adds `delta`, saturating at `u64::MAX`.
    pub fn add(&self, delta: u64) {
        saturating_fetch_add(&self.state.value, delta);
    }

    /// Increments by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.state.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistogramState {
    /// Inclusive upper edges, strictly increasing; values above the
    /// last edge land in the overflow bucket.
    edges: Vec<u64>,
    /// One count per edge plus the trailing overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram over `u64` values (cycles, sizes, depths).
///
/// Bucket `i` counts values `v` with `v <= edges[i]` (and greater than
/// the previous edge); values above the last edge land in a dedicated
/// overflow bucket. The edge layout is fixed at registration, so two
/// runs always bucket identically.
#[derive(Debug, Clone)]
pub struct Histogram {
    state: Arc<HistogramState>,
}

impl Histogram {
    /// Builds a histogram with the given inclusive upper edges. Edges
    /// are sorted and deduplicated, so any non-empty list is valid; an
    /// empty list yields a single overflow bucket.
    pub(crate) fn new(edges: &[u64]) -> Self {
        let mut edges = edges.to_vec();
        edges.sort_unstable();
        edges.dedup();
        let counts = (0..edges.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            state: Arc::new(HistogramState {
                edges,
                counts,
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation of `value`.
    pub fn record(&self, value: u64) {
        let s = &self.state;
        let bucket = s.edges.partition_point(|&edge| edge < value);
        s.counts[bucket].fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&s.sum, value);
        s.min.fetch_min(value, Ordering::Relaxed);
        s.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The inclusive upper edges.
    pub fn edges(&self) -> &[u64] {
        &self.state.edges
    }

    /// Per-bucket counts: one per edge, then the overflow bucket.
    pub fn counts(&self) -> Vec<u64> {
        self.state
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.state.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        let m = self.state.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.state.max.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
pub(crate) struct SpanState {
    total: AtomicU64,
    entries: AtomicU64,
}

/// A hierarchical time accumulator: total duration and entry count for
/// one named region. Hierarchy is carried by the registered name — the
/// `/`-separated path nests in the text rendering (`pi_sim/core/0` is a
/// child of `pi_sim/core`), so related spans group without any runtime
/// parent bookkeeping.
///
/// Spans have no clock of their own: callers pass the duration they
/// measured, in whatever unit the span's [`crate::Domain`] implies
/// (virtual cycles for `Virtual`, nanoseconds for `Wall`).
#[derive(Debug, Clone)]
pub struct Span {
    state: Arc<SpanState>,
}

impl Span {
    pub(crate) fn new() -> Self {
        Span {
            state: Arc::new(SpanState::default()),
        }
    }

    /// Records one entry of `duration` time units.
    pub fn record(&self, duration: u64) {
        saturating_fetch_add(&self.state.total, duration);
        self.state.entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Times `f` on the wall clock and records the elapsed nanoseconds.
    /// Only meaningful for [`crate::Domain::Wall`] spans — virtual-time
    /// spans must be fed measured virtual durations via [`Span::record`].
    pub fn time_wall<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        out
    }

    /// Accumulated duration across all entries.
    pub fn total(&self) -> u64 {
        self.state.total.load(Ordering::Relaxed)
    }

    /// Number of recorded entries.
    pub fn entries(&self) -> u64 {
        self.state.entries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_increments() {
        let c = Counter::new();
        c.add(5);
        c.incr();
        assert_eq!(c.value(), 6);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.value(), u64::MAX, "pegged at the ceiling");
        c.incr();
        assert_eq!(c.value(), u64::MAX, "stays pegged");
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[10, 20, 30]);
        h.record(0); // <= 10 → bucket 0
        h.record(10); // == 10 → bucket 0 (inclusive)
        h.record(11); // bucket 1
        h.record(20); // bucket 1
        h.record(30); // bucket 2
        h.record(31); // overflow
        h.record(u64::MAX); // overflow
        assert_eq!(h.counts(), vec![2, 2, 1, 2]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_edges_are_sorted_and_deduped() {
        let h = Histogram::new(&[30, 10, 20, 10]);
        assert_eq!(h.edges(), &[10, 20, 30]);
        assert_eq!(h.counts().len(), 4, "3 edges + overflow");
    }

    #[test]
    fn empty_edge_list_is_one_overflow_bucket() {
        let h = Histogram::new(&[]);
        h.record(42);
        assert_eq!(h.counts(), vec![1]);
    }

    #[test]
    fn histogram_sum_saturates() {
        let h = Histogram::new(&[1]);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let h = Histogram::new(&[5]);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn span_accumulates() {
        let s = Span::new();
        s.record(100);
        s.record(250);
        assert_eq!(s.total(), 350);
        assert_eq!(s.entries(), 2);
    }

    #[test]
    fn span_time_wall_records_an_entry() {
        let s = Span::new();
        let out = s.time_wall(|| 7);
        assert_eq!(out, 7);
        assert_eq!(s.entries(), 1);
    }

    #[test]
    fn concurrent_counter_adds_are_exact() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 40_000);
    }
}
