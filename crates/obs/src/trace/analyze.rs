//! Trace analysis: critical path, per-lane utilization, and the
//! time-attribution table ("where did the cycles go").
//!
//! The analyzer reconstructs spans from the merged event stream and
//! answers the question aggregates cannot: *why* is the 4-thread run
//! only 3.1× faster. The per-lane attribution is an identity, not an
//! estimate — for every lane, attributed category cycles plus idle
//! equal the lane's process-group makespan exactly (top-level spans
//! recorded by the layers never overlap within a lane).

use std::collections::BTreeMap;

use super::{EventKind, Trace, VirtualTime};

/// A reconstructed span (a matched Begin/End pair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Lane the span lives on.
    pub lane: u32,
    /// Name from the Begin event.
    pub name: String,
    /// Category from the Begin event.
    pub category: &'static str,
    /// Open time.
    pub start: VirtualTime,
    /// Close time (an unclosed span is clipped to its group makespan).
    pub end: VirtualTime,
    /// Begin event's sequence number (deterministic tiebreaker).
    pub seq: u64,
    /// Payload of the Begin event.
    pub value: u64,
    /// True when no span on the same lane was open underneath.
    pub top_level: bool,
}

impl SpanRec {
    fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// Per-lane attribution row.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSummary {
    /// Lane id.
    pub lane: u32,
    /// Lane name.
    pub name: String,
    /// Process group.
    pub pid: u32,
    /// Cycles covered by top-level spans, per category, sorted by
    /// category name.
    pub busy: Vec<(String, u64)>,
    /// Cycles not covered by any top-level span.
    pub idle: u64,
    /// The lane's process-group makespan (`busy + idle` sums to this).
    pub makespan: u64,
    /// Events this lane's ring buffer dropped on overflow: nonzero
    /// means the lane's attribution is a truncated view.
    pub dropped: u64,
}

impl LaneSummary {
    /// Total attributed (non-idle) cycles.
    pub fn attributed(&self) -> u64 {
        self.busy.iter().map(|(_, c)| c).sum()
    }

    /// Fraction of the makespan covered by top-level spans, in [0, 1].
    pub fn utilization(&self) -> f64 {
        utilization_ratio(self.attributed(), self.makespan)
    }
}

/// One step of the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalStep {
    /// Lane the step ran on.
    pub lane: u32,
    /// Lane name.
    pub lane_name: String,
    /// Span name.
    pub name: String,
    /// Span category.
    pub category: &'static str,
    /// Step start.
    pub start: VirtualTime,
    /// Step end.
    pub end: VirtualTime,
}

/// An aggregated counter/instant stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSummary {
    /// `category/name` key.
    pub key: String,
    /// Number of samples.
    pub samples: u64,
    /// Sum of sample values.
    pub total: u64,
    /// Last sampled value (in merged order).
    pub last: u64,
}

/// One happens-before race report found in the event stream (an
/// Instant with category [`super::category::RACE`], as emitted by the
/// schedule-space explorer's vector-clock detector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceRec {
    /// Lane whose access completed the racy pair.
    pub lane: u32,
    /// Virtual time (scheduler step index) of the report.
    pub time: VirtualTime,
    /// Event name ("race v0", ...).
    pub name: String,
    /// Schedule-independent race signature (the event value).
    pub signature: u64,
}

/// Everything the `report -- trace` consumer prints.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Global makespan across all process groups.
    pub makespan: VirtualTime,
    /// Total events analyzed.
    pub events: usize,
    /// Events dropped by full ring buffers.
    pub dropped: u64,
    /// Spans clipped because their End was never recorded.
    pub unclosed_spans: u64,
    /// Per-lane attribution rows, in lane order.
    pub lanes: Vec<LaneSummary>,
    /// The longest dependency-free chain of non-overlapping spans.
    pub critical_path: Vec<CriticalStep>,
    /// Summed duration of the critical path.
    pub critical_cycles: u64,
    /// Aggregated instant/counter streams, sorted by key.
    pub counters: Vec<CounterSummary>,
    /// Race reports in merged event order (empty for traces that did
    /// not run under the explorer's race detector).
    pub races: Vec<RaceRec>,
    /// FNV-1a digest of the trace's Chrome JSON.
    pub digest: u64,
}

/// Total length of a set of `(start, end)` intervals — the one shared
/// implementation of "busy cycles" (pi-sim's `ExecutionTrace` view
/// delegates here instead of re-deriving it).
pub fn intervals_total(intervals: impl IntoIterator<Item = (u64, u64)>) -> u64 {
    intervals
        .into_iter()
        .map(|(s, e)| e.saturating_sub(s))
        .sum()
}

/// `busy / makespan`, 0 when the makespan is 0.
pub fn utilization_ratio(busy: u64, makespan: u64) -> f64 {
    if makespan == 0 {
        0.0
    } else {
        busy as f64 / makespan as f64
    }
}

/// Reconstructs spans lane by lane. Events are already in the stable
/// merged order, so a per-lane stack suffices: Begin pushes, End pops.
/// Unmatched Ends are ignored; unclosed Begins clip to `clip_end` of
/// their lane and are counted.
fn reconstruct_spans(trace: &Trace, clip_end: &BTreeMap<u32, u64>) -> (Vec<SpanRec>, u64) {
    let mut stacks: BTreeMap<u32, Vec<SpanRec>> = BTreeMap::new();
    let mut spans: Vec<SpanRec> = Vec::new();
    let mut unclosed = 0u64;
    for ev in &trace.events {
        match ev.kind {
            EventKind::Begin => {
                let stack = stacks.entry(ev.lane).or_default();
                let top_level = stack.is_empty();
                stack.push(SpanRec {
                    lane: ev.lane,
                    name: ev.name.clone(),
                    category: ev.category,
                    start: ev.time,
                    end: ev.time,
                    seq: ev.seq,
                    value: ev.value,
                    top_level,
                });
            }
            EventKind::End => {
                if let Some(mut span) = stacks.entry(ev.lane).or_default().pop() {
                    span.end = ev.time.max(span.start);
                    spans.push(span);
                }
            }
            EventKind::Instant | EventKind::Counter => {}
        }
    }
    for (lane, stack) in stacks {
        let clip = clip_end.get(&lane).copied().unwrap_or(0);
        for mut span in stack {
            span.end = clip.max(span.start);
            unclosed += 1;
            spans.push(span);
        }
    }
    spans.sort_by_key(|s| (s.start, s.end, s.lane, s.seq));
    (spans, unclosed)
}

/// Longest chain of non-overlapping spans (next.start ≥ prev.end),
/// maximising summed duration — the critical path through the event
/// DAG. O(n log n), deterministic: ties resolve to the earliest span
/// in `(end, start, lane, seq)` order.
fn critical_path(spans: &[SpanRec]) -> (Vec<usize>, u64) {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].end, spans[i].start, spans[i].lane, spans[i].seq));
    // Frontier of (end, best_chain_cycles, span_index), strictly
    // increasing in both end and chain length.
    let mut frontier: Vec<(u64, u64, usize)> = Vec::new();
    let mut chain = vec![0u64; spans.len()];
    let mut parent = vec![usize::MAX; spans.len()];
    let mut best = (0u64, usize::MAX);
    for &i in &order {
        let span = &spans[i];
        // Best chain ending no later than this span starts.
        let pred = match frontier.partition_point(|&(end, _, _)| end <= span.start) {
            0 => None,
            p => Some(frontier[p - 1]),
        };
        let base = pred.map_or(0, |(_, cycles, _)| cycles);
        chain[i] = base + span.duration();
        parent[i] = pred.map_or(usize::MAX, |(_, _, idx)| idx);
        if chain[i] > best.0 {
            best = (chain[i], i);
        }
        if frontier
            .last()
            .is_none_or(|&(_, cycles, _)| chain[i] > cycles)
        {
            frontier.push((span.end, chain[i], i));
        }
    }
    let mut path = Vec::new();
    let mut at = best.1;
    while at != usize::MAX {
        path.push(at);
        at = parent[at];
    }
    path.reverse();
    (path, best.0)
}

/// Analyzes a merged trace: span reconstruction, critical path,
/// per-lane attribution, counter aggregation, digest.
pub fn analyze(trace: &Trace) -> TraceAnalysis {
    let group_makespan: BTreeMap<u32, u64> = trace
        .processes
        .iter()
        .map(|p| (p.pid, trace.makespan_of(p.pid)))
        .collect();
    let lane_makespan: BTreeMap<u32, u64> = trace
        .lanes
        .iter()
        .map(|l| (l.id, group_makespan.get(&l.pid).copied().unwrap_or(0)))
        .collect();
    let (spans, unclosed_spans) = reconstruct_spans(trace, &lane_makespan);
    let (path_idx, critical_cycles) = critical_path(&spans);

    let mut lanes = Vec::new();
    for lane in &trace.lanes {
        let makespan = lane_makespan.get(&lane.id).copied().unwrap_or(0);
        let mut busy: BTreeMap<String, u64> = BTreeMap::new();
        let mut attributed = 0u64;
        for span in spans.iter().filter(|s| s.lane == lane.id && s.top_level) {
            *busy.entry(span.category.to_string()).or_default() += span.duration();
            attributed += span.duration();
        }
        lanes.push(LaneSummary {
            lane: lane.id,
            name: lane.name.clone(),
            pid: lane.pid,
            busy: busy.into_iter().collect(),
            idle: makespan.saturating_sub(attributed),
            makespan,
            dropped: lane.dropped,
        });
    }

    let mut counters: BTreeMap<String, CounterSummary> = BTreeMap::new();
    let mut races = Vec::new();
    for ev in &trace.events {
        if matches!(ev.kind, EventKind::Instant) && ev.category == super::category::RACE {
            races.push(RaceRec {
                lane: ev.lane,
                time: ev.time,
                name: ev.name.clone(),
                signature: ev.value,
            });
        }
        if matches!(ev.kind, EventKind::Instant | EventKind::Counter) {
            let key = format!("{}/{}", ev.category, ev.name);
            let entry = counters.entry(key.clone()).or_insert(CounterSummary {
                key,
                samples: 0,
                total: 0,
                last: 0,
            });
            entry.samples += 1;
            entry.total = entry.total.saturating_add(ev.value);
            entry.last = ev.value;
        }
    }

    let lane_name = |id: u32| -> String {
        trace
            .lanes
            .iter()
            .find(|l| l.id == id)
            .map(|l| l.name.clone())
            .unwrap_or_else(|| format!("lane/{id}"))
    };
    let critical_path = path_idx
        .iter()
        .map(|&i| CriticalStep {
            lane: spans[i].lane,
            lane_name: lane_name(spans[i].lane),
            name: spans[i].name.clone(),
            category: spans[i].category,
            start: spans[i].start,
            end: spans[i].end,
        })
        .collect();

    TraceAnalysis {
        makespan: trace.makespan(),
        events: trace.events.len(),
        dropped: trace.dropped,
        unclosed_spans,
        lanes,
        critical_path,
        critical_cycles,
        counters: counters.into_values().collect(),
        races,
        digest: trace.digest(),
    }
}

impl TraceAnalysis {
    /// Sorted distinct race signatures across all reports.
    pub fn distinct_race_signatures(&self) -> Vec<u64> {
        let mut sigs: Vec<u64> = self.races.iter().map(|r| r.signature).collect();
        sigs.sort_unstable();
        sigs.dedup();
        sigs
    }

    /// True when every lane's attribution is exact: category cycles
    /// plus idle equal the lane's makespan.
    pub fn attribution_is_exact(&self) -> bool {
        self.lanes
            .iter()
            .all(|l| l.attributed() + l.idle == l.makespan)
    }

    /// Context-switch totals derived from the OS layer's
    /// [`super::category::PREEMPT`] instants: `(total context switches,
    /// involuntary preemptions)`. `None` when the trace carries no
    /// preempt events (traces from the non-OS layers).
    pub fn context_switches(&self) -> Option<(u64, u64)> {
        let samples = |name: &str| {
            let key = format!("{}/{name}", super::category::PREEMPT);
            self.counters
                .iter()
                .find(|c| c.key == key)
                .map_or(0, |c| c.samples)
        };
        let involuntary = samples("preempt");
        let voluntary = samples("switch");
        let total = involuntary + voluntary;
        (total > 0).then_some((total, involuntary))
    }

    /// Renders the critical path and the time-attribution table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace analysis: makespan {} cycles, {} lanes, {} events ({} dropped, {} unclosed), digest 0x{:016x}",
            self.makespan,
            self.lanes.len(),
            self.events,
            self.dropped,
            self.unclosed_spans,
            self.digest
        );
        let pct = 100.0 * utilization_ratio(self.critical_cycles, self.makespan);
        let _ = writeln!(
            out,
            "critical path: {} steps, {} cycles ({pct:.1}% of makespan)",
            self.critical_path.len(),
            self.critical_cycles
        );
        for step in &self.critical_path {
            let _ = writeln!(
                out,
                "  [{}] {} ({}) {}..{} +{}",
                step.lane_name,
                step.name,
                step.category,
                step.start,
                step.end,
                step.end - step.start
            );
        }
        // Attribution table over the union of categories.
        let mut categories: Vec<String> = Vec::new();
        for lane in &self.lanes {
            for (cat, _) in &lane.busy {
                if !categories.contains(cat) {
                    categories.push(cat.clone());
                }
            }
        }
        categories.sort();
        let _ = writeln!(
            out,
            "time attribution (virtual cycles; categories + idle = lane makespan):"
        );
        let mut header = format!("  {:<24}", "lane");
        for cat in &categories {
            header.push_str(&format!(" {cat:>14}"));
        }
        header.push_str(&format!(
            " {:>14} {:>14} {:>6}",
            "idle", "makespan", "util%"
        ));
        let _ = writeln!(out, "{header}");
        for lane in &self.lanes {
            let mut row = format!("  {:<24}", lane.name);
            for cat in &categories {
                let cycles = lane
                    .busy
                    .iter()
                    .find(|(c, _)| c == cat)
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                row.push_str(&format!(" {cycles:>14}"));
            }
            row.push_str(&format!(
                " {:>14} {:>14} {:>6.1}",
                lane.idle,
                lane.makespan,
                100.0 * lane.utilization()
            ));
            let _ = writeln!(out, "{row}");
        }
        let _ = writeln!(
            out,
            "attribution identity: {}",
            if self.attribution_is_exact() {
                "exact (categories + idle = makespan on every lane)"
            } else {
                "INEXACT (overlapping top-level spans)"
            }
        );
        if let Some((total, involuntary)) = self.context_switches() {
            let _ = writeln!(
                out,
                "context switches: {total} total, {involuntary} involuntary preemptions"
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for c in &self.counters {
                let _ = writeln!(
                    out,
                    "  {:<32} {:>8} samples, total {}, last {}",
                    c.key, c.samples, c.total, c.last
                );
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "TRUNCATED: {} events dropped by full ring buffers; busy/idle above undercount the affected lanes:",
                self.dropped
            );
            for lane in self.lanes.iter().filter(|l| l.dropped > 0) {
                let _ = writeln!(out, "  {:<24} {:>8} dropped", lane.name, lane.dropped);
            }
        }
        if !self.races.is_empty() {
            let _ = writeln!(
                out,
                "races: {} reports, {} distinct signatures",
                self.races.len(),
                self.distinct_race_signatures().len()
            );
            for r in &self.races {
                let _ = writeln!(
                    out,
                    "  step {:>6} lane {} {} sig 0x{:016x}",
                    r.time, r.lane, r.name, r.signature
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{category, TraceBuffer, TraceConfig, TraceRecorder};

    #[test]
    fn truncated_lanes_are_called_out_per_lane() {
        let mut full = TraceBuffer::new(0, "tiny", 2);
        for i in 0..6 {
            full.instant(i, "e", category::BUS, i);
        }
        let mut ok = TraceBuffer::new(1, "roomy", 64);
        ok.instant(0, "e", category::BUS, 0);
        let a = analyze(&Trace::from_buffers(vec![full, ok]));
        assert_eq!(a.dropped, 4);
        assert_eq!(a.lanes[0].dropped, 4);
        assert_eq!(a.lanes[1].dropped, 0);
        let text = a.render_text();
        assert!(text.contains("TRUNCATED: 4 events dropped"), "{text}");
        assert!(text.contains("tiny"), "{text}");
        let warned: Vec<&str> = text
            .lines()
            .skip_while(|l| !l.starts_with("TRUNCATED"))
            .skip(1)
            .collect();
        assert!(warned.iter().any(|l| l.contains("tiny")));
        assert!(!warned.iter().any(|l| l.contains("roomy")), "{text}");
    }

    /// Two cores: core 0 runs 0..60 and 70..100, core 1 runs 0..40.
    fn sample() -> Trace {
        let mut rec = TraceRecorder::new(&TraceConfig::default());
        let c0 = rec.lane("core/0");
        let c1 = rec.lane("core/1");
        rec.buf(c0).begin(0, "t0", category::SLICE, 0);
        rec.buf(c0).end(60);
        rec.buf(c0).begin(70, "t2", category::SLICE, 2);
        rec.buf(c0).end(100);
        rec.buf(c1).begin(0, "t1", category::SLICE, 1);
        rec.buf(c1).end(40);
        rec.buf(c1).instant(20, "contention", category::BUS, 18);
        rec.finish()
    }

    #[test]
    fn syscall_and_preempt_categories_keep_attribution_exact() {
        // A core lane as the OS layer records it: slice, trap (syscall
        // span), slice again, with a preempt instant at the quantum
        // boundary and a voluntary switch at the block. The syscall
        // cycles must show up as their own attribution column and the
        // identity must still hold exactly.
        let mut rec = TraceRecorder::new(&TraceConfig::default());
        let c0 = rec.lane("core/0");
        rec.buf(c0).begin(0, "pid/1", category::SLICE, 1);
        rec.buf(c0).end(50);
        rec.buf(c0).begin(50, "sleep", category::SYSCALL, 1);
        rec.buf(c0).end(60);
        rec.buf(c0).instant(60, "switch", category::PREEMPT, 1);
        rec.buf(c0).begin(60, "pid/2", category::SLICE, 2);
        rec.buf(c0).end(90);
        rec.buf(c0).instant(90, "preempt", category::PREEMPT, 2);
        let a = analyze(&rec.finish());
        assert!(a.attribution_is_exact());
        let busy = &a.lanes[0].busy;
        assert!(busy.contains(&("syscall".to_string(), 10)));
        assert!(busy.contains(&("slice".to_string(), 80)));
        assert_eq!(a.context_switches(), Some((2, 1)));
        let text = a.render_text();
        assert!(
            text.contains("context switches: 2 total, 1 involuntary preemptions"),
            "{text}"
        );
    }

    #[test]
    fn traces_without_preempt_events_have_no_context_switch_row() {
        let a = analyze(&sample());
        assert_eq!(a.context_switches(), None);
        assert!(!a.render_text().contains("context switches:"));
    }

    #[test]
    fn attribution_sums_to_makespan_per_lane() {
        let a = analyze(&sample());
        assert_eq!(a.makespan, 100);
        assert!(a.attribution_is_exact());
        let c0 = &a.lanes[0];
        assert_eq!(c0.busy, vec![("slice".to_string(), 90)]);
        assert_eq!(c0.idle, 10);
        assert!((c0.utilization() - 0.9).abs() < 1e-12);
        let c1 = &a.lanes[1];
        assert_eq!(c1.attributed(), 40);
        assert_eq!(c1.idle, 60);
    }

    #[test]
    fn critical_path_picks_longest_nonoverlapping_chain() {
        let a = analyze(&sample());
        // 0..60 then 70..100 on core 0 = 90 cycles beats core 1's 40.
        assert_eq!(a.critical_cycles, 90);
        assert_eq!(a.critical_path.len(), 2);
        assert_eq!(a.critical_path[0].name, "t0");
        assert_eq!(a.critical_path[1].name, "t2");
    }

    #[test]
    fn counters_aggregate_instants() {
        let a = analyze(&sample());
        assert_eq!(a.counters.len(), 1);
        assert_eq!(a.counters[0].key, "bus/contention");
        assert_eq!(a.counters[0].samples, 1);
        assert_eq!(a.counters[0].total, 18);
    }

    #[test]
    fn unclosed_spans_clip_to_makespan() {
        let mut rec = TraceRecorder::new(&TraceConfig::default());
        let lane = rec.lane("core/0");
        rec.buf(lane).begin(10, "open", category::SLICE, 0);
        rec.buf(lane).instant(50, "tick", category::BUS, 0);
        let a = analyze(&rec.finish());
        assert_eq!(a.unclosed_spans, 1);
        assert_eq!(a.lanes[0].attributed(), 40, "clipped to makespan 50");
        assert!(a.attribution_is_exact());
    }

    #[test]
    fn nested_spans_attribute_only_top_level() {
        let mut rec = TraceRecorder::new(&TraceConfig::default());
        let lane = rec.lane("worker");
        rec.buf(lane).begin(0, "outer", category::CHUNK, 0);
        rec.buf(lane).begin(10, "inner", category::PHASE, 0);
        rec.buf(lane).end(20);
        rec.buf(lane).end(100);
        let a = analyze(&rec.finish());
        assert_eq!(
            a.lanes[0].attributed(),
            100,
            "inner span not double-counted"
        );
        assert!(a.attribution_is_exact());
    }

    #[test]
    fn render_text_contains_table_and_path() {
        let text = analyze(&sample()).render_text();
        assert!(text.contains("critical path: 2 steps, 90 cycles"));
        assert!(text.contains("time attribution"));
        assert!(text.contains("core/0"));
        assert!(text.contains("attribution identity: exact"));
        assert!(text.contains("bus/contention"));
    }

    #[test]
    fn race_instants_are_collected_and_rendered() {
        let mut rec = TraceRecorder::new(&TraceConfig::default());
        let l0 = rec.lane("lane/0");
        let l1 = rec.lane("lane/1");
        rec.buf(l0).instant(0, "store v0", category::STEP, 1);
        rec.buf(l1).instant(1, "race v0", category::RACE, 0xABCD);
        rec.buf(l1).instant(2, "race v0", category::RACE, 0xABCD);
        rec.buf(l0).instant(3, "race v1", category::RACE, 0x1234);
        let a = analyze(&rec.finish());
        assert_eq!(a.races.len(), 3);
        assert_eq!(a.races[0].lane, 1);
        assert_eq!(a.races[0].signature, 0xABCD);
        assert_eq!(a.distinct_race_signatures(), vec![0x1234, 0xABCD]);
        let text = a.render_text();
        assert!(text.contains("races: 3 reports, 2 distinct signatures"));
        assert!(text.contains("race v1"));
    }

    #[test]
    fn race_free_traces_report_no_races() {
        let a = analyze(&sample());
        assert!(a.races.is_empty());
        assert!(a.distinct_race_signatures().is_empty());
        assert!(!a.render_text().contains("races:"));
    }

    #[test]
    fn empty_trace_analyzes_cleanly() {
        let rec = TraceRecorder::new(&TraceConfig::default());
        let a = analyze(&rec.finish());
        assert_eq!(a.makespan, 0);
        assert!(a.critical_path.is_empty());
        assert!(a.attribution_is_exact());
    }
}
