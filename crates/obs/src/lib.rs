//! # pbl-obs — the deterministic observability layer
//!
//! The simulated substrate (pi-sim SoC, parallel-rt, mapreduce, the
//! replication engine) produces numbers CI must be able to gate on, so
//! this crate provides the metrics surface every layer records into:
//!
//! * [`Counter`] — monotonic, saturating `u64` counters.
//! * [`Histogram`] — fixed-bucket histograms with explicit upper edges.
//! * [`Span`] — hierarchical time accumulators keyed by `/`-separated
//!   paths (parents are implied by the path, `pi_sim/core/0` nests
//!   under `pi_sim/core`).
//! * [`Registry`] — the insertion-ordered, thread-safe home of all
//!   three, exporting a [`MetricsSnapshot`] to pretty text and to a
//!   stable JSON schema.
//!
//! ## The determinism contract
//!
//! Metrics are recorded against **virtual time where one exists**
//! (pi-sim cycles, parallel-rt's simulated clock) and wall time
//! elsewhere. Every metric carries a [`Domain`] tag at registration:
//!
//! * [`Domain::Virtual`] metrics are part of the determinism contract —
//!   two runs of the same seed must produce byte-identical values, and
//!   [`Registry::snapshot`] exports exactly these.
//! * [`Domain::Wall`] metrics (barrier spin waits, replicate chunk
//!   latencies) are host-dependent diagnostics; they appear only in
//!   [`Registry::snapshot_all`] and never in the deterministic export.
//!
//! There is no ambient clock anywhere in this crate: callers pass the
//! durations and values they measured, so the registry itself cannot
//! smuggle `Date::now`-style nondeterminism into a snapshot.
//!
//! Registration is panic-free: registering a name twice returns the
//! existing handle, and a kind collision (a counter re-registered as a
//! histogram) degrades to a detached handle rather than aborting a
//! simulation mid-run.
//!
//! ```
//! use obs::{Domain, Registry};
//!
//! let registry = Registry::new();
//! let hits = registry.counter("cache/l1_hits", Domain::Virtual);
//! let depth = registry.histogram("events/queue_depth", Domain::Virtual, &[1, 2, 4, 8]);
//! let core0 = registry.span("core/0/busy", Domain::Virtual);
//! hits.add(3);
//! depth.record(2);
//! core0.record(1_500);
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.metrics.len(), 3);
//! assert!(snapshot.to_json().contains("\"cache/l1_hits\""));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alert;
mod metric;
mod registry;
mod snapshot;
pub mod timeseries;
pub mod trace;

pub use alert::{AlertPolicy, AnomalyRule, BurnRateSlo, Incident, IncidentEdge, Timeline};
pub use metric::{Counter, Histogram, Span};
pub use registry::{Domain, Registry};
pub use snapshot::{MetricData, MetricSample, MetricsSnapshot};
pub use timeseries::{SeriesKind, SeriesSet, TimeSeries, WindowPoint, CLUSTER_SHARD};
