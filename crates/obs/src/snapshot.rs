//! The exported form of a registry: a stable, diffable snapshot.

use std::fmt::Write as _;

use crate::registry::Domain;

/// The value part of one exported metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricData {
    /// A monotonic counter's value.
    Counter {
        /// Current (saturating) count.
        value: u64,
    },
    /// A histogram's buckets and moments.
    Histogram {
        /// Inclusive upper edges.
        edges: Vec<u64>,
        /// Per-bucket counts; one per edge plus the trailing overflow
        /// bucket.
        counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Saturating sum of observations.
        sum: u64,
        /// Smallest observation (0 when empty).
        min: u64,
        /// Largest observation (0 when empty).
        max: u64,
    },
    /// A span's accumulated time.
    Span {
        /// Total accumulated duration.
        total: u64,
        /// Number of entries.
        entries: u64,
    },
}

/// One metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Registered name (a `/`-separated path for spans).
    pub name: String,
    /// Time domain the metric was recorded against.
    pub domain: Domain,
    /// The exported value.
    pub data: MetricData,
}

/// An ordered snapshot of a [`crate::Registry`] — the stable JSON
/// schema CI diffs and the bench bins embed.
///
/// Two snapshots of the same metrics are byte-identical in both
/// exports: order is registration order, numbers are plain `u64`s, and
/// nothing host-dependent is interpolated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Exported metrics in registration order.
    pub metrics: Vec<MetricSample>,
}

fn json_u64_array(values: &[u64]) -> String {
    let inner: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", inner.join(", "))
}

impl MetricsSnapshot {
    /// Schema version of the JSON export; bump on any layout change so
    /// downstream diffs fail loudly instead of silently comparing
    /// different shapes.
    pub const SCHEMA_VERSION: u32 = 1;

    /// Serialises to the stable JSON schema:
    ///
    /// ```json
    /// {
    ///   "schema": "pbl-obs/v1",
    ///   "metrics": [
    ///     {"name": "...", "kind": "counter", "domain": "virtual", "value": 7},
    ///     {"name": "...", "kind": "histogram", "domain": "virtual",
    ///      "edges": [..], "counts": [..], "count": 3, "sum": 9, "min": 1, "max": 5},
    ///     {"name": "...", "kind": "span", "domain": "virtual", "total": 40, "entries": 2}
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"pbl-obs/v{}\",", Self::SCHEMA_VERSION);
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let body = match &m.data {
                MetricData::Counter { value } => {
                    format!("\"kind\": \"counter\", \"domain\": \"{}\", \"value\": {value}", m.domain.label())
                }
                MetricData::Histogram {
                    edges,
                    counts,
                    count,
                    sum,
                    min,
                    max,
                } => format!(
                    "\"kind\": \"histogram\", \"domain\": \"{}\", \"edges\": {}, \"counts\": {}, \"count\": {count}, \"sum\": {sum}, \"min\": {min}, \"max\": {max}",
                    m.domain.label(),
                    json_u64_array(edges),
                    json_u64_array(counts),
                ),
                MetricData::Span { total, entries } => format!(
                    "\"kind\": \"span\", \"domain\": \"{}\", \"total\": {total}, \"entries\": {entries}",
                    m.domain.label()
                ),
            };
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            let _ = writeln!(out, "    {{\"name\": \"{}\", {body}}}{comma}", m.name);
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders a human-readable listing, indenting each metric by the
    /// depth of its `/`-separated path so span hierarchies read as a
    /// tree.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "metrics snapshot ({} metrics)", self.metrics.len());
        for m in &self.metrics {
            let depth = m.name.matches('/').count();
            let pad = "  ".repeat(depth + 1);
            let leaf = m.name.rsplit('/').next().unwrap_or(&m.name);
            match &m.data {
                MetricData::Counter { value } => {
                    let _ = writeln!(out, "{pad}{leaf:<28} {value:>14}  [counter] ({})", m.name);
                }
                MetricData::Histogram {
                    edges,
                    counts,
                    count,
                    sum,
                    min,
                    max,
                } => {
                    let _ = writeln!(
                        out,
                        "{pad}{leaf:<28} n={count} sum={sum} min={min} max={max}  [histogram] ({})",
                        m.name
                    );
                    for (j, c) in counts.iter().enumerate() {
                        if *c == 0 {
                            continue;
                        }
                        let label = if j < edges.len() {
                            format!("<= {}", edges[j])
                        } else {
                            "overflow".to_string()
                        };
                        let _ = writeln!(out, "{pad}  {label:>12}: {c}");
                    }
                }
                MetricData::Span { total, entries } => {
                    let _ = writeln!(
                        out,
                        "{pad}{leaf:<28} total={total} entries={entries}  [span] ({})",
                        m.name
                    );
                }
            }
        }
        out
    }

    /// FNV-1a digest of the JSON bytes — two snapshots are bit-identical
    /// iff their digests match, the currency of the CI determinism
    /// smokes.
    pub fn digest(&self) -> u64 {
        crate::trace::fnv1a(self.to_json().as_bytes())
    }

    /// Like [`MetricsSnapshot::to_json`] with one extra field: a
    /// `"digest"` line (the FNV-1a fingerprint of the undecorated
    /// JSON) inserted after the schema header. This is the form the
    /// bench bins embed, so committed BENCH files carry a
    /// determinism fingerprint `bench_gate` can insist on.
    pub fn to_json_with_digest(&self) -> String {
        let digest = format!("  \"digest\": \"0x{:016x}\",\n", self.digest());
        let json = self.to_json();
        let Some(schema_end) = json.find(",\n") else {
            return json;
        };
        let mut out = String::with_capacity(json.len() + digest.len());
        out.push_str(&json[..schema_end + 2]);
        out.push_str(&digest);
        out.push_str(&json[schema_end + 2..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Domain, Registry};

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("cache/l1_hits", Domain::Virtual).add(12);
        let h = r.histogram("events/queue_depth", Domain::Virtual, &[1, 4]);
        h.record(1);
        h.record(3);
        h.record(9);
        r.span("core/0/busy", Domain::Virtual).record(500);
        r
    }

    #[test]
    fn json_is_stable_and_complete() {
        let json = sample_registry().snapshot().to_json();
        assert!(json.contains("\"schema\": \"pbl-obs/v1\""));
        assert!(json.contains(
            "{\"name\": \"cache/l1_hits\", \"kind\": \"counter\", \"domain\": \"virtual\", \"value\": 12}"
        ));
        assert!(json.contains("\"edges\": [1, 4], \"counts\": [1, 1, 1], \"count\": 3"));
        assert!(json.contains(
            "{\"name\": \"core/0/busy\", \"kind\": \"span\", \"domain\": \"virtual\", \"total\": 500, \"entries\": 1}"
        ));
    }

    #[test]
    fn identical_recordings_give_byte_identical_json_and_equal_digests() {
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
    }

    #[test]
    fn json_with_digest_embeds_the_plain_digest() {
        let snap = sample_registry().snapshot();
        let with = snap.to_json_with_digest();
        assert!(with.contains(&format!("\"digest\": \"0x{:016x}\"", snap.digest())));
        // Removing the digest line recovers the plain JSON byte-for-byte.
        let stripped: String = with
            .lines()
            .filter(|l| !l.contains("\"digest\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, snap.to_json());
    }

    #[test]
    fn digest_is_sensitive_to_values() {
        let r = sample_registry();
        let before = r.snapshot().digest();
        r.counter("cache/l1_hits", Domain::Virtual).incr();
        assert_ne!(before, r.snapshot().digest());
    }

    #[test]
    fn text_rendering_nests_by_path_depth() {
        let text = sample_registry().snapshot().render_text();
        assert!(text.contains("metrics snapshot (3 metrics)"));
        assert!(text.contains("l1_hits"));
        assert!(text.contains("overflow"), "9 > last edge 4");
        // core/0/busy sits two levels deep → three pads of indent.
        assert!(text.contains("      busy"));
    }
}
