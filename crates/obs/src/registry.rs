//! The insertion-ordered metric registry.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::metric::{Counter, Histogram, Span};
use crate::snapshot::{MetricData, MetricSample, MetricsSnapshot};

/// The time domain a metric is recorded against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Virtual time (pi-sim cycles, parallel-rt's simulated clock) or
    /// pure event counts — deterministic for a given seed, part of the
    /// determinism contract, included in [`Registry::snapshot`].
    Virtual,
    /// Host wall time (barrier spins, worker chunk latencies) —
    /// diagnostics only, excluded from the deterministic snapshot.
    Wall,
}

impl Domain {
    /// Stable lowercase label used in the JSON export.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Virtual => "virtual",
            Domain::Wall => "wall",
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Histogram(Histogram),
    Span(Span),
}

#[derive(Debug)]
struct Entry {
    name: String,
    domain: Domain,
    instrument: Instrument,
}

#[derive(Debug, Default)]
struct Inner {
    /// Insertion order is the export order — no ambient state, no
    /// hashing order, so two runs that register in the same sequence
    /// export in the same sequence.
    entries: Vec<Entry>,
    index: HashMap<String, usize>,
}

/// A deterministic, thread-safe metric registry.
///
/// Cloning a `Registry` clones the handle, not the metrics: clones
/// share one underlying store, so a registry threaded through several
/// layers accumulates into a single snapshot.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        domain: Domain,
        make: impl FnOnce() -> (T, Instrument),
        reuse: impl Fn(&Instrument) -> Option<T>,
        detached: impl FnOnce() -> T,
    ) -> T {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(&i) = inner.index.get(name) {
            return match reuse(&inner.entries[i].instrument) {
                // Duplicate name, same kind: hand back the existing
                // instrument so both call sites feed one metric.
                Some(existing) => existing,
                // Kind collision: a live simulation must not abort over
                // a metric name, so the caller gets a working but
                // unregistered instrument (recorded values are simply
                // not exported).
                None => detached(),
            };
        }
        let (handle, instrument) = make();
        let at = inner.entries.len();
        inner.entries.push(Entry {
            name: name.to_string(),
            domain,
            instrument,
        });
        inner.index.insert(name.to_string(), at);
        handle
    }

    /// Registers (or retrieves) the counter `name`.
    pub fn counter(&self, name: &str, domain: Domain) -> Counter {
        self.register(
            name,
            domain,
            || {
                let c = Counter::new();
                (c.clone(), Instrument::Counter(c))
            },
            |existing| match existing {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Counter::new,
        )
    }

    /// Registers (or retrieves) the histogram `name` with the given
    /// inclusive upper bucket edges. On a duplicate name the existing
    /// histogram is returned and `edges` is ignored — the first
    /// registration fixes the geometry.
    pub fn histogram(&self, name: &str, domain: Domain, edges: &[u64]) -> Histogram {
        self.register(
            name,
            domain,
            || {
                let h = Histogram::new(edges);
                (h.clone(), Instrument::Histogram(h))
            },
            |existing| match existing {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || Histogram::new(edges),
        )
    }

    /// Registers (or retrieves) the span `name`. Hierarchy is the
    /// `/`-separated path: `pi_sim/core/0` renders nested under
    /// `pi_sim/core`.
    pub fn span(&self, name: &str, domain: Domain) -> Span {
        self.register(
            name,
            domain,
            || {
                let s = Span::new();
                (s.clone(), Instrument::Span(s))
            },
            |existing| match existing {
                Instrument::Span(s) => Some(s.clone()),
                _ => None,
            },
            Span::new,
        )
    }

    fn snapshot_where(&self, keep: impl Fn(Domain) -> bool) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry lock");
        let metrics = inner
            .entries
            .iter()
            .filter(|e| keep(e.domain))
            .map(|e| MetricSample {
                name: e.name.clone(),
                domain: e.domain,
                data: match &e.instrument {
                    Instrument::Counter(c) => MetricData::Counter { value: c.value() },
                    Instrument::Histogram(h) => MetricData::Histogram {
                        edges: h.edges().to_vec(),
                        counts: h.counts(),
                        count: h.count(),
                        sum: h.sum(),
                        min: h.min(),
                        max: h.max(),
                    },
                    Instrument::Span(s) => MetricData::Span {
                        total: s.total(),
                        entries: s.entries(),
                    },
                },
            })
            .collect();
        MetricsSnapshot { metrics }
    }

    /// The deterministic snapshot: every [`Domain::Virtual`] metric, in
    /// registration order. Byte-identical across runs of the same seed —
    /// this is what CI gates diff.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_where(|d| d == Domain::Virtual)
    }

    /// Every metric including wall-time diagnostics. Not deterministic;
    /// never feed this to a gate that diffs bytes.
    pub fn snapshot_all(&self) -> MetricsSnapshot {
        self.snapshot_where(|_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_counter_returns_the_existing_handle() {
        let r = Registry::new();
        let a = r.counter("hits", Domain::Virtual);
        a.add(3);
        let b = r.counter("hits", Domain::Virtual);
        b.add(4);
        assert_eq!(a.value(), 7, "both handles feed one counter");
        assert_eq!(r.snapshot().metrics.len(), 1);
    }

    #[test]
    fn duplicate_histogram_keeps_first_geometry() {
        let r = Registry::new();
        let a = r.histogram("depth", Domain::Virtual, &[1, 2]);
        let b = r.histogram("depth", Domain::Virtual, &[100, 200, 300]);
        assert_eq!(b.edges(), &[1, 2], "first registration wins");
        a.record(1);
        b.record(2);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn kind_collision_is_panic_free_and_detached() {
        let r = Registry::new();
        let c = r.counter("x", Domain::Virtual);
        c.add(5);
        // Re-registering "x" as a histogram must not panic and must not
        // disturb the registered counter.
        let h = r.histogram("x", Domain::Virtual, &[10]);
        h.record(3);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 1);
        assert!(matches!(
            snap.metrics[0].data,
            MetricData::Counter { value: 5 }
        ));
        // The detached handle still works locally.
        assert_eq!(h.count(), 1);
        // And a span collision likewise.
        let s = r.span("x", Domain::Virtual);
        s.record(9);
        assert_eq!(r.snapshot().metrics.len(), 1);
    }

    #[test]
    fn snapshot_preserves_insertion_order() {
        let r = Registry::new();
        r.counter("z_last_alphabetically_first_registered", Domain::Virtual);
        r.counter("a_first_alphabetically", Domain::Virtual);
        r.span("middle", Domain::Virtual);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "z_last_alphabetically_first_registered",
                "a_first_alphabetically",
                "middle"
            ]
        );
    }

    #[test]
    fn wall_metrics_are_excluded_from_the_deterministic_snapshot() {
        let r = Registry::new();
        r.counter("deterministic", Domain::Virtual).add(1);
        r.span("barrier_wait", Domain::Wall).record(123);
        assert_eq!(r.snapshot().metrics.len(), 1);
        assert_eq!(r.snapshot_all().metrics.len(), 2);
    }

    #[test]
    fn clones_share_the_store() {
        let r = Registry::new();
        let r2 = r.clone();
        r2.counter("shared", Domain::Virtual).add(2);
        assert_eq!(r.snapshot().metrics.len(), 1);
    }
}
