//! Deterministic virtual-time event tracing.
//!
//! Where the metrics side of this crate answers "how much", the trace
//! side answers "when, in what order": a stream of [`TraceEvent`]s
//! (span begin/end, instants, counter samples) timestamped in **virtual
//! time** — simulated cycles for pi-sim, replicate indices for the
//! replication engine, pair counts for mapreduce — so an export is
//! byte-identical across hosts and across host thread counts.
//!
//! Events are recorded into per-worker [`TraceBuffer`]s (bounded
//! memory: past the configured capacity new events are dropped and
//! counted, never silently lost) and merged into a single [`Trace`] by
//! a stable `(virtual_time, lane, seq)` sort. Two consumers live next
//! door:
//!
//! * [`Trace::to_chrome_json`] — Chrome trace-event JSON, loadable in
//!   Perfetto / `chrome://tracing`.
//! * [`crate::trace::analyze`] — critical path, per-lane utilization
//!   and a time-attribution table, plus an FNV-1a digest for CI gating.

use std::fmt::Write as _;

pub mod analyze;

/// Virtual timestamps: simulated cycles, replicate indices, pair
/// counts — whatever deterministic clock the recording layer owns.
pub type VirtualTime = u64;

/// Well-known event categories shared by the instrumented layers. The
/// analyzer groups attribution columns by category, so layers reuse
/// these instead of inventing spellings.
pub mod category {
    /// A core executing a scheduled slice of a thread.
    pub const SLICE: &str = "slice";
    /// A thread blocked at a barrier.
    pub const BARRIER_WAIT: &str = "barrier_wait";
    /// A thread blocked acquiring a lock.
    pub const LOCK_WAIT: &str = "lock_wait";
    /// A thread runnable but waiting for a core.
    pub const SCHED_WAIT: &str = "sched_wait";
    /// Bus-contention instants (extra cycles in the event value).
    pub const BUS: &str = "bus";
    /// Cache counter samples (hits/misses per core).
    pub const CACHE: &str = "cache";
    /// Chunk dispatch/lifecycle events of a work queue.
    pub const CHUNK: &str = "chunk";
    /// A whole engine phase (map, shuffle, reduce).
    pub const PHASE: &str = "phase";
    /// A scheduled job occupying its tenant's virtual-time lane in the
    /// serve layer.
    pub const JOB: &str = "job";
    /// Admission-queue depth samples of the serve layer.
    pub const QUEUE: &str = "queue";
    /// One controlled-scheduler step of the schedule-space explorer
    /// (event value = index of the lane that stepped).
    pub const STEP: &str = "step";
    /// A happens-before race report from the explorer's vector-clock
    /// detector (event value = schedule-independent race signature).
    pub const RACE: &str = "race";
    /// Kernel time spent inside an OS trap — the explicit syscall step
    /// on a core lane, or a process lane blocked in a syscall
    /// (sleep/wait). Span cycles count toward the lane's attribution.
    pub const SYSCALL: &str = "syscall";
    /// A context switch on a core lane: instants named `preempt`
    /// (involuntary, quantum expiry — event value = descheduled pid) or
    /// `switch` (voluntary — yield, block, exit). The analyzer's
    /// context-switch summary row counts these.
    pub const PREEMPT: &str = "preempt";
}

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens on the event's lane.
    Begin,
    /// The innermost open span on the lane closes.
    End,
    /// A point event.
    Instant,
    /// A counter sample; the sampled value is in [`TraceEvent::value`].
    Counter,
}

impl EventKind {
    /// Chrome trace-event phase letter.
    fn phase(self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
        }
    }
}

/// One event in the virtual-time stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual timestamp.
    pub time: VirtualTime,
    /// Recording lane (a core, a software thread, a queue — one row in
    /// the viewer).
    pub lane: u32,
    /// Per-lane record sequence number; the tiebreaker that makes the
    /// merged order total and therefore byte-stable.
    pub seq: u64,
    /// Event name ([`EventKind::End`] events leave it empty).
    pub name: String,
    /// Category from [`category`] (attribution column in the analyzer).
    pub category: &'static str,
    /// Kind of mark.
    pub kind: EventKind,
    /// Payload: counter value, thread id of a slice, extra contention
    /// cycles — whatever the emitting layer documents.
    pub value: u64,
}

/// A bounded per-worker ring of events. Recording past `capacity`
/// drops the new event and counts it ([`TraceBuffer::dropped`]) — the
/// kept prefix stays exactly interpretable and memory stays bounded.
#[derive(Debug)]
pub struct TraceBuffer {
    lane: u32,
    name: String,
    capacity: usize,
    seq: u64,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer recording onto `lane`, holding at most
    /// `capacity` events.
    pub fn new(lane: u32, name: impl Into<String>, capacity: usize) -> Self {
        TraceBuffer {
            lane,
            name: name.into(),
            capacity,
            seq: 0,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// The lane this buffer records onto.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn record(
        &mut self,
        time: VirtualTime,
        name: impl Into<String>,
        category: &'static str,
        kind: EventKind,
        value: u64,
    ) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        self.events.push(TraceEvent {
            time,
            lane: self.lane,
            seq,
            name: name.into(),
            category,
            kind,
            value,
        });
    }

    /// Opens a span at `time`.
    pub fn begin(
        &mut self,
        time: VirtualTime,
        name: impl Into<String>,
        category: &'static str,
        value: u64,
    ) {
        self.record(time, name, category, EventKind::Begin, value);
    }

    /// Closes the innermost open span at `time`.
    pub fn end(&mut self, time: VirtualTime) {
        self.record(time, "", "", EventKind::End, 0);
    }

    /// Records a point event at `time`.
    pub fn instant(
        &mut self,
        time: VirtualTime,
        name: impl Into<String>,
        category: &'static str,
        value: u64,
    ) {
        self.record(time, name, category, EventKind::Instant, value);
    }

    /// Records a counter sample at `time`.
    pub fn counter(
        &mut self,
        time: VirtualTime,
        name: impl Into<String>,
        category: &'static str,
        value: u64,
    ) {
        self.record(time, name, category, EventKind::Counter, value);
    }
}

/// One lane of a merged [`Trace`]: a row in the viewer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneInfo {
    /// Lane id ([`TraceEvent::lane`] refers to this).
    pub id: u32,
    /// Human name ("core/0", "thread/3", "replicate/queue").
    pub name: String,
    /// Process group the lane belongs to (viewer `pid`); [`Trace::merge`]
    /// gives each merged source its own group.
    pub pid: u32,
    /// Events this lane's ring buffer dropped on overflow — kept per
    /// lane so the analyzer can say *which* rows are truncated, not
    /// just that something somewhere overflowed.
    pub dropped: u64,
}

/// A process group in a merged trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessInfo {
    /// Group id (viewer `pid`).
    pub pid: u32,
    /// Human name of the source layer ("pi-sim", "mapreduce", ...).
    pub name: String,
}

/// Configuration for a tracing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum events held per lane before counted drops start.
    pub capacity_per_lane: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity_per_lane: 1 << 16,
        }
    }
}

/// Allocates lanes and their buffers for one recording layer, then
/// merges everything into a [`Trace`].
#[derive(Debug)]
pub struct TraceRecorder {
    capacity: usize,
    buffers: Vec<TraceBuffer>,
}

impl TraceRecorder {
    /// Creates a recorder; every lane gets `config.capacity_per_lane`.
    pub fn new(config: &TraceConfig) -> Self {
        TraceRecorder {
            capacity: config.capacity_per_lane,
            buffers: Vec::new(),
        }
    }

    /// Allocates the next lane. Allocation order is lane-id order, so
    /// callers that allocate deterministically get deterministic ids.
    pub fn lane(&mut self, name: impl Into<String>) -> u32 {
        let id = self.buffers.len() as u32;
        self.buffers.push(TraceBuffer::new(id, name, self.capacity));
        id
    }

    /// The buffer recording onto `lane`.
    pub fn buf(&mut self, lane: u32) -> &mut TraceBuffer {
        &mut self.buffers[lane as usize]
    }

    /// Merges all lanes into a [`Trace`].
    pub fn finish(self) -> Trace {
        Trace::from_buffers(self.buffers)
    }
}

/// A merged, stably ordered event stream — the unit both consumers
/// (Chrome export, analyzer) operate on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Events sorted by `(time, lane, seq)`.
    pub events: Vec<TraceEvent>,
    /// Lanes in id order.
    pub lanes: Vec<LaneInfo>,
    /// Process groups in pid order (a single-source trace has one).
    pub processes: Vec<ProcessInfo>,
    /// Total events dropped across all lanes.
    pub dropped: u64,
}

impl Trace {
    /// Merges per-worker buffers by the stable `(time, lane, seq)` sort.
    pub fn from_buffers(buffers: Vec<TraceBuffer>) -> Trace {
        let mut trace = Trace {
            events: Vec::new(),
            lanes: Vec::new(),
            processes: vec![ProcessInfo {
                pid: 0,
                name: "trace".to_string(),
            }],
            dropped: 0,
        };
        for buf in buffers {
            trace.absorb(buf);
        }
        trace
    }

    /// Folds one more buffer into the merged stream, keeping the stable
    /// sort order.
    pub fn absorb(&mut self, buf: TraceBuffer) {
        self.dropped += buf.dropped;
        self.lanes.push(LaneInfo {
            id: buf.lane,
            name: buf.name,
            pid: 0,
            dropped: buf.dropped,
        });
        self.lanes.sort_by_key(|l| l.id);
        self.events.extend(buf.events);
        self.events.sort_by_key(|e| (e.time, e.lane, e.seq));
    }

    /// The smallest lane id not yet in use — where a caller layering
    /// extra lanes on top of a machine trace should start.
    pub fn next_lane(&self) -> u32 {
        self.lanes.iter().map(|l| l.id + 1).max().unwrap_or(0)
    }

    /// Merges traces from different layers into one export. Each source
    /// becomes its own process group (its own `pid` row block in
    /// Perfetto) and its lanes are renumbered into a shared id space,
    /// in argument order — deterministic input, deterministic output.
    pub fn merge(parts: Vec<(&str, Trace)>) -> Trace {
        let mut merged = Trace {
            events: Vec::new(),
            lanes: Vec::new(),
            processes: Vec::new(),
            dropped: 0,
        };
        let mut lane_base = 0u32;
        for (pid, (name, part)) in parts.into_iter().enumerate() {
            let pid = pid as u32;
            merged.processes.push(ProcessInfo {
                pid,
                name: name.to_string(),
            });
            merged.dropped += part.dropped;
            // Renumber this part's lanes to sit after everything merged
            // so far; events follow their lanes.
            let part_span = part.lanes.iter().map(|l| l.id + 1).max().unwrap_or(0);
            for lane in part.lanes {
                merged.lanes.push(LaneInfo {
                    id: lane_base + lane.id,
                    name: lane.name,
                    pid,
                    dropped: lane.dropped,
                });
            }
            for mut ev in part.events {
                ev.lane += lane_base;
                merged.events.push(ev);
            }
            lane_base += part_span;
        }
        merged.events.sort_by_key(|e| (e.time, e.lane, e.seq));
        merged.lanes.sort_by_key(|l| l.id);
        merged
    }

    /// Largest event timestamp (0 for an empty trace): the makespan of
    /// the traced run in its virtual clock.
    pub fn makespan(&self) -> VirtualTime {
        self.events.iter().map(|e| e.time).max().unwrap_or(0)
    }

    /// Largest timestamp among events of one process group. Merged
    /// traces mix clocks (cycles, indices, pairs), so per-group
    /// makespans are what utilization is measured against.
    pub fn makespan_of(&self, pid: u32) -> VirtualTime {
        let in_pid: Vec<u32> = self
            .lanes
            .iter()
            .filter(|l| l.pid == pid)
            .map(|l| l.id)
            .collect();
        self.events
            .iter()
            .filter(|e| in_pid.contains(&e.lane))
            .map(|e| e.time)
            .max()
            .unwrap_or(0)
    }

    /// Serialises to Chrome trace-event JSON (the `traceEvents` array
    /// format), loadable in Perfetto or `chrome://tracing`. Timestamps
    /// are virtual-time units verbatim, metadata events name every
    /// process group and lane, and the rendering is byte-stable: the
    /// same trace always serialises to the same bytes.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"displayTimeUnit\": \"ns\",\n");
        let _ = writeln!(
            out,
            "  \"otherData\": {{\"schema\": \"pbl-trace/v{}\", \"dropped\": {}}},",
            Self::SCHEMA_VERSION,
            self.dropped
        );
        out.push_str("  \"traceEvents\": [\n");
        let mut lines: Vec<String> = Vec::new();
        for p in &self.processes {
            lines.push(format!(
                "{{\"ph\": \"M\", \"pid\": {}, \"tid\": 0, \"name\": \"process_name\", \"args\": {{\"name\": \"{}\"}}}}",
                p.pid,
                escape(&p.name)
            ));
        }
        for lane in &self.lanes {
            lines.push(format!(
                "{{\"ph\": \"M\", \"pid\": {}, \"tid\": {}, \"name\": \"thread_name\", \"args\": {{\"name\": \"{}\"}}}}",
                lane.pid,
                lane.id,
                escape(&lane.name)
            ));
        }
        let pid_of: Vec<(u32, u32)> = self.lanes.iter().map(|l| (l.id, l.pid)).collect();
        for ev in &self.events {
            let pid = pid_of
                .iter()
                .find(|(id, _)| *id == ev.lane)
                .map(|(_, pid)| *pid)
                .unwrap_or(0);
            let mut line = format!(
                "{{\"ph\": \"{}\", \"pid\": {}, \"tid\": {}, \"ts\": {}",
                ev.kind.phase(),
                pid,
                ev.lane,
                ev.time
            );
            match ev.kind {
                EventKind::End => {}
                EventKind::Begin | EventKind::Counter => {
                    let _ = write!(
                        line,
                        ", \"name\": \"{}\", \"cat\": \"{}\", \"args\": {{\"v\": {}}}",
                        escape(&ev.name),
                        ev.category,
                        ev.value
                    );
                }
                EventKind::Instant => {
                    let _ = write!(
                        line,
                        ", \"name\": \"{}\", \"cat\": \"{}\", \"s\": \"t\", \"args\": {{\"v\": {}}}",
                        escape(&ev.name),
                        ev.category,
                        ev.value
                    );
                }
            }
            line.push('}');
            lines.push(line);
        }
        for (i, line) in lines.iter().enumerate() {
            let comma = if i + 1 == lines.len() { "" } else { "," };
            let _ = writeln!(out, "    {line}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Schema version stamped into `otherData`; bump on layout changes
    /// so golden-digest comparisons fail loudly.
    pub const SCHEMA_VERSION: u32 = 1;

    /// FNV-1a digest of the Chrome JSON bytes — two traces are
    /// byte-identical iff their digests match.
    pub fn digest(&self) -> u64 {
        fnv1a(self.to_chrome_json().as_bytes())
    }
}

/// FNV-1a over a byte string: the workspace's shared determinism
/// fingerprint (the same algorithm fingerprints metrics snapshots and
/// replication reports).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_time_then_lane_then_seq() {
        let mut a = TraceBuffer::new(0, "a", 16);
        let mut b = TraceBuffer::new(1, "b", 16);
        a.instant(10, "x", category::BUS, 0);
        a.instant(5, "y", category::BUS, 0);
        b.instant(5, "z", category::BUS, 0);
        let t = Trace::from_buffers(vec![a, b]);
        let order: Vec<(u64, u32, u64)> =
            t.events.iter().map(|e| (e.time, e.lane, e.seq)).collect();
        assert_eq!(order, vec![(5, 0, 1), (5, 1, 0), (10, 0, 0)]);
    }

    #[test]
    fn overflow_counts_drops_and_keeps_prefix() {
        let mut b = TraceBuffer::new(0, "tiny", 3);
        for i in 0..10 {
            b.instant(i, "e", category::BUS, i);
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.dropped(), 7);
        let t = Trace::from_buffers(vec![b]);
        assert_eq!(t.dropped, 7);
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.events.last().unwrap().value, 2, "earliest events kept");
    }

    #[test]
    fn chrome_json_is_byte_stable() {
        let build = || {
            let mut rec = TraceRecorder::new(&TraceConfig::default());
            let lane = rec.lane("core/0");
            rec.buf(lane).begin(0, "t0", category::SLICE, 0);
            rec.buf(lane).instant(7, "contention", category::BUS, 18);
            rec.buf(lane).end(50);
            rec.buf(lane).counter(50, "l1_hits", category::CACHE, 4);
            rec.finish()
        };
        let a = build();
        let b = build();
        assert_eq!(a.to_chrome_json(), b.to_chrome_json());
        assert_eq!(a.digest(), b.digest());
        let json = a.to_chrome_json();
        assert!(json.contains("\"schema\": \"pbl-trace/v1\""));
        assert!(json.contains("\"ph\": \"B\""));
        assert!(json.contains("\"ph\": \"E\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"ph\": \"C\""));
        assert!(json.contains("\"thread_name\""));
        // Valid JSON shape: no trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn merge_renumbers_lanes_per_process() {
        let mut a = TraceBuffer::new(0, "core/0", 8);
        a.begin(0, "t0", category::SLICE, 0);
        a.end(10);
        let mut b = TraceBuffer::new(0, "queue", 8);
        b.instant(3, "chunk", category::CHUNK, 16);
        let merged = Trace::merge(vec![
            ("pi-sim", Trace::from_buffers(vec![a])),
            ("replicate", Trace::from_buffers(vec![b])),
        ]);
        assert_eq!(merged.processes.len(), 2);
        assert_eq!(merged.lanes[0].pid, 0);
        assert_eq!(merged.lanes[1].pid, 1);
        assert_eq!(merged.lanes[1].id, 1, "renumbered past pi-sim's lanes");
        assert_eq!(merged.makespan(), 10);
        assert_eq!(merged.makespan_of(1), 3);
        assert!(merged.to_chrome_json().contains("\"replicate\""));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
