//! # drugsim — the drug-design and DNA exemplar (Assignment 5)
//!
//! CSinParallel's drug-design exemplar: candidate ligands (short random
//! character strings) are scored against a protein (a long string) by
//! the length of the longest common subsequence; the task is to find the
//! maximum-scoring ligands. Assignment 5 has teams implement it three
//! ways — sequential, OpenMP, and C++11 threads — then measure:
//!
//! * Which approach is fastest?
//! * How many lines is each program (size vs performance)?
//! * What happens with 5 threads (on the 4-core Pi)?
//! * What happens when the maximum ligand length grows from 5 to 7?
//!
//! This crate reproduces all three implementations ([`runner`]) on the
//! [`parallel_rt`] runtime and raw `std::thread`, measures real wall
//! time, and — because this build host has one core — also lowers the
//! workload onto the [`pi_sim`] virtual quad-core Pi ([`harness`]) so
//! the speedup shapes are reproducible. The DNA variant ([`dna`]) scores
//! reads against a reference genome with the same kernel.
//!
//! ```
//! use drugsim::{run, Approach, DrugDesignConfig};
//!
//! let config = DrugDesignConfig { num_ligands: 30, ..Default::default() };
//! let seq = run(&config, Approach::Sequential, 1);
//! let par = run(&config, Approach::OpenMp, 4);
//! assert_eq!(seq.best_score, par.best_score);
//! assert_eq!(seq.best_ligands, par.best_ligands);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dna;
pub mod harness;
pub mod ligand;
pub mod runner;
pub mod score;

pub use harness::{assignment5_report, Assignment5Row};
pub use ligand::{generate_ligands, DrugDesignConfig, DEFAULT_PROTEIN};
pub use runner::{run, Approach, DrugDesignResult};
pub use score::score;
