//! The Assignment 5 measurement harness.
//!
//! Real wall-clock numbers on this build host are meaningless for the
//! speedup questions (one core), so each configuration is additionally
//! lowered onto the simulated quad-core Pi: every ligand costs
//! `work_cells(ligand, protein)` DP cells, one virtual cycle per cell,
//! and the three implementations map to machine programs the way the
//! real ones map to hardware:
//!
//! * sequential — one thread, all ligands;
//! * OpenMP — dynamic(4) chunks over the team (plus fork overhead);
//! * C++11 threads — self-scheduled single-ligand grabs with a slightly
//!   higher per-grab overhead (thread pool without a runtime's tuned
//!   chunking), which is why the exemplar's students usually measure
//!   OpenMP a whisker ahead.

use parallel_rt::sim::SimOptions;
use parallel_rt::Schedule;
use pi_sim::event::Cycles;
use pi_sim::machine::Machine;
use pi_sim::program::Program;

use crate::ligand::{generate_ligands, DrugDesignConfig};
use crate::runner::{run, Approach};
use crate::score::work_cells;

/// Virtual cycles charged per DP cell: one LCS cell is a handful of
/// loads, compares, and stores on a real in-order Cortex-A53.
const CYCLES_PER_CELL: Cycles = 32;

/// One row of the Assignment 5 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment5Row {
    /// Implementation measured.
    pub approach: Approach,
    /// Threads used.
    pub threads: usize,
    /// Maximum ligand length of the workload.
    pub max_ligand_len: usize,
    /// Virtual cycles on the simulated Pi.
    pub sim_cycles: Cycles,
    /// Speedup vs the same workload's sequential row.
    pub speedup_vs_sequential: f64,
    /// Best score found (sanity: identical across implementations).
    pub best_score: usize,
    /// Source lines of the implementation (the assignment's program-size
    /// question).
    pub lines_of_code: usize,
}

/// Source lines of each implementation in this crate, measured from the
/// actual module text (the assignment asks "what are the number of lines
/// in each file").
pub fn lines_of_code(approach: Approach) -> usize {
    let src = include_str!("runner.rs");
    // Count the lines of the function body implementing each approach;
    // a simple, honest proxy: sequential is the match arm + kernel,
    // OpenMP adds the runtime call, threads adds the worker pool.
    let kernel = include_str!("score.rs")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .take_while(|l| !l.contains("#[cfg(test)]"))
        .count();
    let pool_lines = src
        .lines()
        .skip_while(|l| !l.contains("fn parallel_fold_raw_threads"))
        .take_while(|l| !l.trim_start().starts_with("#[cfg(test)]"))
        .filter(|l| !l.trim().is_empty())
        .count();
    match approach {
        Approach::Sequential => kernel + 8,
        Approach::OpenMp => kernel + 14,
        Approach::CxxThreads => kernel + 14 + pool_lines,
    }
}

/// Simulates one configuration on the virtual Pi, returning the
/// makespan in cycles.
pub fn simulate(config: &DrugDesignConfig, approach: Approach, threads: usize) -> Cycles {
    let ligands = generate_ligands(config);
    let costs: Vec<Cycles> = ligands
        .iter()
        .map(|l| (work_cells(l, &config.protein) * CYCLES_PER_CELL).max(1))
        .collect();
    let opts = SimOptions::default();
    match approach {
        Approach::Sequential => {
            let total: Cycles = costs.iter().sum();
            Machine::new(pi_sim::machine::MachineConfig {
                cores: 1,
                ..opts.machine
            })
            .run_sequential(Program::new().compute(total))
            .total_cycles
        }
        Approach::OpenMp | Approach::CxxThreads => {
            // Both self-schedule; OpenMP grabs chunks of 4, the thread
            // pool grabs single ligands (more queue traffic).
            let (schedule, per_grab_overhead) = match approach {
                Approach::OpenMp => (Schedule::Dynamic(4), 30u64),
                _ => (Schedule::Dynamic(1), 120u64),
            };
            let prefix = prefix_costs(&costs);
            let plan = plan_with_costs(&costs, schedule, threads);
            let programs: Vec<Program> = plan
                .into_iter()
                .map(|chunks| {
                    let mut p = Program::new().compute(opts.fork_overhead);
                    for chunk in chunks {
                        let work =
                            (prefix[chunk.end] - prefix[chunk.start]) as Cycles + per_grab_overhead;
                        p = p.compute(work).atomic_rmw(0xD00D_0000);
                    }
                    p
                })
                .collect();
            Machine::new(opts.machine).run(programs).total_cycles
        }
    }
}

/// Prefix sums of per-ligand costs: `prefix[i]` is the cost of ligands
/// `0..i`, so any chunk's cost is one subtraction instead of an O(chunk)
/// sum.
fn prefix_costs(costs: &[Cycles]) -> Vec<u128> {
    let mut prefix = Vec::with_capacity(costs.len() + 1);
    let mut acc = 0u128;
    prefix.push(acc);
    for &c in costs {
        acc += c as u128;
        prefix.push(acc);
    }
    prefix
}

/// Greedy least-loaded chunk assignment using the true per-ligand costs
/// (public for the bench crate's scheduling ablation).
pub fn plan_with_costs(
    costs: &[Cycles],
    schedule: Schedule,
    threads: usize,
) -> Vec<Vec<std::ops::Range<usize>>> {
    let chunk = schedule.chunk().unwrap_or(1);
    let prefix = prefix_costs(costs);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    while start < costs.len() {
        chunks.push(start..(start + chunk).min(costs.len()));
        start += chunk;
    }
    let mut load = vec![0u128; threads];
    let mut out = vec![Vec::new(); threads];
    for c in chunks {
        let cost = prefix[c.end] - prefix[c.start];
        let (t, _) = load
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .expect("threads > 0");
        load[t] += cost;
        out[t].push(c);
    }
    out
}

/// The full Assignment 5 sweep: every approach at 4 threads, the
/// 5-thread variants, and the max-ligand-length 5 → 7 rerun — the rows
/// the student report tabulates.
pub fn assignment5_report(base: &DrugDesignConfig) -> Vec<Assignment5Row> {
    let mut rows = Vec::new();
    for config in [base.clone(), base.with_max_len(7)] {
        let seq_cycles = simulate(&config, Approach::Sequential, 1);
        let best = run(&config, Approach::Sequential, 1).best_score;
        for (approach, threads) in [
            (Approach::Sequential, 1usize),
            (Approach::OpenMp, 4),
            (Approach::CxxThreads, 4),
            (Approach::OpenMp, 5),
            (Approach::CxxThreads, 5),
        ] {
            let sim_cycles = simulate(&config, approach, threads);
            rows.push(Assignment5Row {
                approach,
                threads,
                max_ligand_len: config.max_ligand_len,
                sim_cycles,
                speedup_vs_sequential: seq_cycles as f64 / sim_cycles as f64,
                best_score: best,
                lines_of_code: lines_of_code(approach),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DrugDesignConfig {
        DrugDesignConfig {
            num_ligands: 120,
            max_ligand_len: 5,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_beats_sequential_on_the_virtual_pi() {
        let c = cfg();
        let seq = simulate(&c, Approach::Sequential, 1);
        let omp = simulate(&c, Approach::OpenMp, 4);
        let cxx = simulate(&c, Approach::CxxThreads, 4);
        assert!(omp < seq, "OpenMP {omp} < sequential {seq}");
        assert!(cxx < seq, "threads {cxx} < sequential {seq}");
        let s = seq as f64 / omp as f64;
        assert!(s > 2.0, "speedup {s} should be well above 2 on 4 cores");
    }

    #[test]
    fn openmp_and_threads_are_close() {
        let c = cfg();
        let omp = simulate(&c, Approach::OpenMp, 4) as f64;
        let cxx = simulate(&c, Approach::CxxThreads, 4) as f64;
        // Chunk-1 self-scheduling balances a bit better, chunk-4 pays
        // less queue traffic; the two land within a few percent, which
        // is what the exemplar's students observe.
        let ratio = cxx / omp;
        assert!(ratio > 0.9 && ratio < 1.1, "ratio {ratio}");
    }

    #[test]
    fn five_threads_do_not_beat_four() {
        let c = cfg();
        for approach in [Approach::OpenMp, Approach::CxxThreads] {
            let four = simulate(&c, approach, 4);
            let five = simulate(&c, approach, 5);
            assert!(
                five as f64 >= four as f64 * 0.98,
                "{approach:?}: 5 threads {five} vs 4 threads {four}"
            );
        }
    }

    #[test]
    fn ligand_length_seven_costs_more_than_five() {
        let c = cfg();
        let c7 = c.with_max_len(7);
        for (approach, threads) in [
            (Approach::Sequential, 1usize),
            (Approach::OpenMp, 4),
            (Approach::CxxThreads, 4),
        ] {
            let t5 = simulate(&c, approach, threads);
            let t7 = simulate(&c7, approach, threads);
            assert!(t7 > t5, "{approach:?}: len7 {t7} vs len5 {t5}");
        }
    }

    #[test]
    fn report_has_all_ten_rows_with_consistent_scores() {
        let rows = assignment5_report(&cfg());
        assert_eq!(rows.len(), 10);
        let len5: Vec<_> = rows.iter().filter(|r| r.max_ligand_len == 5).collect();
        let len7: Vec<_> = rows.iter().filter(|r| r.max_ligand_len == 7).collect();
        assert_eq!(len5.len(), 5);
        assert_eq!(len7.len(), 5);
        // Within a workload, all implementations find the same best score.
        assert!(len5.windows(2).all(|w| w[0].best_score == w[1].best_score));
        // Sequential rows have speedup 1.
        assert!((len5[0].speedup_vs_sequential - 1.0).abs() < 1e-12);
        // Parallel rows are faster than sequential.
        assert!(len5[1].speedup_vs_sequential > 2.0);
    }

    #[test]
    fn program_size_ranks_threads_longest() {
        // The assignment's observation: the C++11 threads version is the
        // longest program, sequential the shortest.
        let seq = lines_of_code(Approach::Sequential);
        let omp = lines_of_code(Approach::OpenMp);
        let cxx = lines_of_code(Approach::CxxThreads);
        assert!(seq < omp, "{seq} < {omp}");
        assert!(omp < cxx, "{omp} < {cxx}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let c = cfg();
        assert_eq!(
            simulate(&c, Approach::OpenMp, 4),
            simulate(&c, Approach::OpenMp, 4)
        );
    }
}
