//! The scoring kernel: longest common subsequence between a ligand and
//! the protein, exactly the CSinParallel exemplar's match score.

/// Length of the longest common subsequence of `ligand` and `protein`
/// (classic O(m·n) dynamic program with a rolling row).
pub fn score(ligand: &str, protein: &str) -> usize {
    let a: Vec<u8> = ligand.bytes().collect();
    let b: Vec<u8> = protein.bytes().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut curr = vec![0usize; b.len() + 1];
    for &ca in &a {
        for (j, &cb) in b.iter().enumerate() {
            curr[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Number of DP cells the kernel evaluates — the cost model the
/// simulated harness charges per ligand.
pub fn work_cells(ligand: &str, protein: &str) -> u64 {
    ligand.len() as u64 * protein.len() as u64
}

/// Scores every ligand and returns `(max score, indices of ligands that
/// achieve it)` — the exemplar's final answer.
pub fn best_ligands(ligands: &[String], protein: &str) -> (usize, Vec<usize>) {
    let mut best = 0usize;
    let mut winners = Vec::new();
    for (i, ligand) in ligands.iter().enumerate() {
        let s = score(ligand, protein);
        if s > best {
            best = s;
            winners.clear();
            winners.push(i);
        } else if s == best && s > 0 {
            winners.push(i);
        }
    }
    (best, winners)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_reference_cases() {
        assert_eq!(score("abc", "abc"), 3);
        assert_eq!(score("axc", "abc"), 2);
        assert_eq!(score("xyz", "abc"), 0);
        assert_eq!(score("abcde", "ace"), 3);
        assert_eq!(score("", "abc"), 0);
        assert_eq!(score("abc", ""), 0);
    }

    #[test]
    fn subsequence_need_not_be_contiguous() {
        assert_eq!(score("tca", "the cat"), 3); // t…c…a in order
    }

    #[test]
    fn score_is_symmetric() {
        for (a, b) in [("hello", "world"), ("par", "allel"), ("abcd", "dcba")] {
            assert_eq!(score(a, b), score(b, a));
        }
    }

    #[test]
    fn score_bounded_by_shorter_string() {
        let protein = "the quick brown fox";
        for ligand in ["q", "qk", "quick", "zzzzzzz"] {
            assert!(score(ligand, protein) <= ligand.len());
        }
    }

    #[test]
    fn work_cells_product() {
        assert_eq!(work_cells("abc", "defgh"), 15);
        assert_eq!(work_cells("", "defgh"), 0);
    }

    #[test]
    fn best_ligands_finds_the_max_and_ties() {
        let ligands = vec![
            "xyz".to_string(), // score 0 vs "abcab"? x,y,z absent
            "ab".to_string(),  // 2
            "ba".to_string(),  // 2 ("b","a" in order? a-b-c-a-b: b then a yes) = 2
            "q".to_string(),   // 0
        ];
        let (best, winners) = best_ligands(&ligands, "abcab");
        assert_eq!(best, 2);
        assert_eq!(winners, vec![1, 2]);
    }

    #[test]
    fn best_of_empty_is_zero() {
        let (best, winners) = best_ligands(&[], "protein");
        assert_eq!(best, 0);
        assert!(winners.is_empty());
    }

    #[test]
    fn zero_scores_produce_no_winners() {
        let ligands = vec!["x".to_string(), "y".to_string()];
        let (best, winners) = best_ligands(&ligands, "abc");
        assert_eq!(best, 0);
        assert!(winners.is_empty());
    }
}
