//! The DNA variant of the exemplar: score sequencing reads against a
//! reference genome with the same LCS kernel, sequentially and in
//! parallel.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use parallel_rt::reduction::Max;
use parallel_rt::{Schedule, Team};

use crate::score::score;

/// The four DNA bases.
pub const BASES: [char; 4] = ['A', 'C', 'G', 'T'];

/// DNA workload configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnaConfig {
    /// Reference genome length.
    pub reference_len: usize,
    /// Number of reads to score.
    pub num_reads: usize,
    /// Length of each read.
    pub read_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DnaConfig {
    fn default() -> Self {
        // Reads are long relative to the reference (50 vs 200) so a
        // random read cannot fully embed as a subsequence — true
        // fragments then score visibly higher than random ones.
        DnaConfig {
            reference_len: 200,
            num_reads: 80,
            read_len: 50,
            seed: 42,
        }
    }
}

/// A generated DNA workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnaWorkload {
    /// The reference genome.
    pub reference: String,
    /// The reads to score.
    pub reads: Vec<String>,
}

/// Generates the reference and reads. Half the reads are genuine
/// fragments of the reference (with one mutation), half are random —
/// so alignment scores separate the populations.
pub fn generate(config: &DnaConfig) -> DnaWorkload {
    assert!(
        config.reference_len >= config.read_len,
        "reads longer than reference"
    );
    assert!(config.read_len >= 1, "reads need at least one base");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let reference: String = (0..config.reference_len)
        .map(|_| BASES[rng.gen_range(0..4)])
        .collect();
    let reads = (0..config.num_reads)
        .map(|i| {
            if i % 2 == 0 {
                // A true fragment with a single point mutation.
                let start = rng.gen_range(0..=config.reference_len - config.read_len);
                let mut read: Vec<char> =
                    reference[start..start + config.read_len].chars().collect();
                let pos = rng.gen_range(0..config.read_len);
                read[pos] = BASES[rng.gen_range(0..4)];
                read.into_iter().collect()
            } else {
                (0..config.read_len)
                    .map(|_| BASES[rng.gen_range(0..4)])
                    .collect()
            }
        })
        .collect();
    DnaWorkload { reference, reads }
}

/// Scores every read sequentially; returns per-read scores.
pub fn score_reads_sequential(workload: &DnaWorkload) -> Vec<usize> {
    workload
        .reads
        .iter()
        .map(|r| score(r, &workload.reference))
        .collect()
}

/// Scores every read on a parallel team; returns per-read scores.
pub fn score_reads_parallel(workload: &DnaWorkload, threads: usize) -> Vec<usize> {
    let team = Team::new(threads);
    let mut out = vec![0usize; workload.reads.len()];
    parallel_rt::forloop::parallel_fill(&team, &mut out, Schedule::StaticBlock, |i| {
        score(&workload.reads[i], &workload.reference)
    });
    out
}

/// The best alignment score over all reads, computed with a parallel
/// max-reduction.
pub fn best_alignment(workload: &DnaWorkload, threads: usize) -> usize {
    let team = Team::new(threads);
    team.parallel_for_reduce(0..workload.reads.len(), Schedule::Dynamic(2), Max, |i| {
        score(&workload.reads[i], &workload.reference)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_well_formed() {
        let cfg = DnaConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.reference.len(), 200);
        assert_eq!(a.reads.len(), 80);
        assert!(a.reference.chars().all(|c| BASES.contains(&c)));
        assert!(a.reads.iter().all(|r| r.len() == 50));
    }

    #[test]
    fn parallel_scores_match_sequential() {
        let w = generate(&DnaConfig::default());
        let seq = score_reads_sequential(&w);
        for threads in [2usize, 4] {
            assert_eq!(score_reads_parallel(&w, threads), seq);
        }
    }

    #[test]
    fn true_fragments_score_higher_than_random_reads() {
        let w = generate(&DnaConfig::default());
        let scores = score_reads_sequential(&w);
        let fragment_mean: f64 =
            scores.iter().step_by(2).map(|&s| s as f64).sum::<f64>() / (scores.len() / 2) as f64;
        let random_mean: f64 = scores
            .iter()
            .skip(1)
            .step_by(2)
            .map(|&s| s as f64)
            .sum::<f64>()
            / (scores.len() / 2) as f64;
        assert!(
            fragment_mean > random_mean,
            "fragments {fragment_mean:.1} vs random {random_mean:.1}"
        );
    }

    #[test]
    fn fragments_score_near_read_length() {
        let w = generate(&DnaConfig::default());
        let scores = score_reads_sequential(&w);
        // A fragment with one mutation has LCS >= read_len − 1.
        assert!(scores.iter().step_by(2).all(|&s| s >= 49));
    }

    #[test]
    fn best_alignment_is_the_max() {
        let w = generate(&DnaConfig::default());
        let seq_max = *score_reads_sequential(&w).iter().max().unwrap();
        assert_eq!(best_alignment(&w, 4), seq_max);
    }

    #[test]
    #[should_panic(expected = "reads longer than reference")]
    fn read_longer_than_reference_panics() {
        let _ = generate(&DnaConfig {
            reference_len: 5,
            read_len: 10,
            ..Default::default()
        });
    }
}
