//! Ligand generation: deterministic random candidate strings, as in the
//! CSinParallel exemplar (each ligand is a short lowercase string; its
//! length is drawn so longer ligands are rarer).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The default protein the exemplar scores against.
pub const DEFAULT_PROTEIN: &str = "the quick brown fox jumps over the lazy dog while the \
     impatient students assemble their raspberry pi cluster and compile \
     openmp programs that search for promising drug candidates in parallel";

/// Workload configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrugDesignConfig {
    /// Number of candidate ligands.
    pub num_ligands: usize,
    /// Maximum ligand length (the assignment sweeps 5 → 7).
    pub max_ligand_len: usize,
    /// Protein string to score against.
    pub protein: String,
    /// RNG seed (fixed so every implementation scores the same ligands).
    pub seed: u64,
}

impl Default for DrugDesignConfig {
    fn default() -> Self {
        DrugDesignConfig {
            num_ligands: 120,
            max_ligand_len: 5,
            protein: DEFAULT_PROTEIN.to_string(),
            seed: 2019, // the paper's publication year
        }
    }
}

impl DrugDesignConfig {
    /// Copy of this configuration with a different maximum length.
    pub fn with_max_len(&self, max_ligand_len: usize) -> Self {
        DrugDesignConfig {
            max_ligand_len,
            ..self.clone()
        }
    }
}

/// Generates the candidate ligands for a configuration. Lengths are
/// skewed toward short strings (`len = max * u²`, clamped to ≥ 1), so a
/// few expensive candidates dominate the work — the property that makes
/// dynamic scheduling worthwhile.
pub fn generate_ligands(config: &DrugDesignConfig) -> Vec<String> {
    assert!(
        config.max_ligand_len >= 1,
        "ligands need at least one character"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    (0..config.num_ligands)
        .map(|_| {
            let u: f64 = rng.gen();
            let len = ((config.max_ligand_len as f64 * u * u).ceil() as usize)
                .clamp(1, config.max_ligand_len);
            (0..len)
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = DrugDesignConfig::default();
        assert_eq!(generate_ligands(&cfg), generate_ligands(&cfg));
        let other = DrugDesignConfig {
            seed: 7,
            ..cfg.clone()
        };
        assert_ne!(generate_ligands(&cfg), generate_ligands(&other));
    }

    #[test]
    fn respects_count_and_length_bounds() {
        let cfg = DrugDesignConfig {
            num_ligands: 500,
            max_ligand_len: 7,
            ..Default::default()
        };
        let ligands = generate_ligands(&cfg);
        assert_eq!(ligands.len(), 500);
        assert!(ligands.iter().all(|l| (1..=7).contains(&l.len())));
        assert!(ligands.iter().any(|l| l.len() == 7), "long ligands occur");
        assert!(ligands.iter().any(|l| l.len() <= 2), "short ligands occur");
    }

    #[test]
    fn lengths_skew_short() {
        let cfg = DrugDesignConfig {
            num_ligands: 2_000,
            max_ligand_len: 7,
            ..Default::default()
        };
        let ligands = generate_ligands(&cfg);
        let short = ligands.iter().filter(|l| l.len() <= 3).count();
        let long = ligands.iter().filter(|l| l.len() >= 6).count();
        assert!(short > long, "short {short} vs long {long}");
    }

    #[test]
    fn all_lowercase_ascii() {
        let ligands = generate_ligands(&DrugDesignConfig::default());
        assert!(ligands
            .iter()
            .all(|l| l.bytes().all(|b| b.is_ascii_lowercase())));
    }

    #[test]
    fn with_max_len_only_changes_length() {
        let base = DrugDesignConfig::default();
        let wider = base.with_max_len(7);
        assert_eq!(wider.max_ligand_len, 7);
        assert_eq!(wider.num_ligands, base.num_ligands);
        assert_eq!(wider.seed, base.seed);
    }

    #[test]
    #[should_panic(expected = "at least one character")]
    fn zero_max_len_panics() {
        let cfg = DrugDesignConfig {
            max_ligand_len: 0,
            ..Default::default()
        };
        let _ = generate_ligands(&cfg);
    }
}
