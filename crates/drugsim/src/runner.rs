//! The three implementations Assignment 5 compares: sequential, OpenMP
//! (our [`parallel_rt`] runtime with a dynamic-schedule parallel for),
//! and "C++11 threads" (raw `std::thread` workers pulling from a shared
//! atomic work index, like the exemplar's thread version).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parallel_rt::reduction::{Custom, Reduction};
use parallel_rt::{Schedule, Team};

use crate::ligand::{generate_ligands, DrugDesignConfig};
use crate::score::score;

/// Which implementation ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Plain `for` loop, one thread.
    Sequential,
    /// `#pragma omp parallel for schedule(dynamic)` equivalent.
    OpenMp,
    /// `std::thread` workers with a shared work queue (the exemplar's
    /// C++11 version).
    CxxThreads,
}

impl Approach {
    /// Display name matching the assignment's wording.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::Sequential => "sequential",
            Approach::OpenMp => "OpenMP",
            Approach::CxxThreads => "C++11 threads",
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct DrugDesignResult {
    /// Which implementation produced it.
    pub approach: Approach,
    /// Threads used (1 for sequential).
    pub threads: usize,
    /// The maximum score found.
    pub best_score: usize,
    /// Indices of the ligands achieving it, ascending.
    pub best_ligands: Vec<usize>,
    /// Real wall-clock time of the scoring loop.
    pub wall_time: Duration,
}

/// The per-key result the reduction combines: (best score, winners).
type Best = (usize, Vec<usize>);

fn merge_best(mut a: Best, b: Best) -> Best {
    use std::cmp::Ordering::*;
    match b.0.cmp(&a.0) {
        Greater => b,
        Less => a,
        Equal => {
            if a.0 == 0 {
                return (0, Vec::new());
            }
            a.1.extend(b.1);
            a
        }
    }
}

fn best_of_one(idx: usize, s: usize) -> Best {
    if s == 0 {
        (0, Vec::new())
    } else {
        (s, vec![idx])
    }
}

/// Runs the configured workload with `approach` on `threads` threads
/// (ignored for [`Approach::Sequential`]).
pub fn run(config: &DrugDesignConfig, approach: Approach, threads: usize) -> DrugDesignResult {
    let ligands = generate_ligands(config);
    let protein = config.protein.as_str();
    let start = Instant::now();
    let (best_score, mut best) = match approach {
        Approach::Sequential => {
            let mut acc: Best = (0, Vec::new());
            for (i, ligand) in ligands.iter().enumerate() {
                acc = merge_best(acc, best_of_one(i, score(ligand, protein)));
            }
            acc
        }
        Approach::OpenMp => {
            let team = Team::new(threads);
            let reduction = Custom::new(|| (0usize, Vec::new()), merge_best);
            team.parallel_for_reduce(0..ligands.len(), Schedule::Dynamic(4), reduction, |i| {
                best_of_one(i, score(&ligands[i], protein))
            })
        }
        Approach::CxxThreads => {
            let next = AtomicUsize::new(0);
            let partials = parallel_fold_raw_threads(&ligands, protein, threads, &next);
            let reduction = Custom::new(|| (0usize, Vec::new()), merge_best);
            reduction.fold(partials)
        }
    };
    best.sort_unstable();
    DrugDesignResult {
        approach,
        threads: if approach == Approach::Sequential {
            1
        } else {
            threads
        },
        best_score,
        best_ligands: best,
        wall_time: start.elapsed(),
    }
}

/// The raw-threads worker pool: each thread pulls the next ligand index
/// from a shared atomic counter (self-scheduling, like the exemplar).
fn parallel_fold_raw_threads(
    ligands: &[String],
    protein: &str,
    threads: usize,
    next: &AtomicUsize,
) -> Vec<Best> {
    assert!(threads > 0, "need at least one thread");
    let mut partials: Vec<Best> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(move || {
                let mut acc: Best = (0, Vec::new());
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ligands.len() {
                        break;
                    }
                    acc = merge_best(acc, best_of_one(i, score(&ligands[i], protein)));
                }
                acc
            }));
        }
        for h in handles {
            partials.push(h.join().expect("worker thread panicked"));
        }
    });
    partials
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DrugDesignConfig {
        DrugDesignConfig {
            num_ligands: 60,
            max_ligand_len: 5,
            ..Default::default()
        }
    }

    #[test]
    fn all_three_approaches_agree() {
        let cfg = small_config();
        let seq = run(&cfg, Approach::Sequential, 1);
        let omp = run(&cfg, Approach::OpenMp, 4);
        let cxx = run(&cfg, Approach::CxxThreads, 4);
        assert_eq!(seq.best_score, omp.best_score);
        assert_eq!(seq.best_score, cxx.best_score);
        assert_eq!(seq.best_ligands, omp.best_ligands);
        assert_eq!(seq.best_ligands, cxx.best_ligands);
        assert!(seq.best_score > 0, "the workload finds some match");
    }

    #[test]
    fn agreement_holds_for_longer_ligands_and_more_threads() {
        let cfg = small_config().with_max_len(7);
        let seq = run(&cfg, Approach::Sequential, 1);
        for threads in [2usize, 4, 5] {
            let omp = run(&cfg, Approach::OpenMp, threads);
            let cxx = run(&cfg, Approach::CxxThreads, threads);
            assert_eq!(seq.best_ligands, omp.best_ligands, "omp t={threads}");
            assert_eq!(seq.best_ligands, cxx.best_ligands, "cxx t={threads}");
        }
    }

    #[test]
    fn sequential_reports_one_thread() {
        let r = run(&small_config(), Approach::Sequential, 4);
        assert_eq!(r.threads, 1);
        assert_eq!(r.approach, Approach::Sequential);
    }

    #[test]
    fn winners_are_sorted_and_consistent_with_score() {
        let cfg = small_config();
        let r = run(&cfg, Approach::OpenMp, 3);
        let ligands = generate_ligands(&cfg);
        let mut sorted = r.best_ligands.clone();
        sorted.sort_unstable();
        assert_eq!(r.best_ligands, sorted);
        for &i in &r.best_ligands {
            assert_eq!(score(&ligands[i], &cfg.protein), r.best_score);
        }
    }

    #[test]
    fn merge_best_prefers_higher_and_unions_ties() {
        assert_eq!(merge_best((2, vec![1]), (3, vec![5])), (3, vec![5]));
        assert_eq!(merge_best((3, vec![1]), (2, vec![5])), (3, vec![1]));
        assert_eq!(merge_best((3, vec![1]), (3, vec![5])), (3, vec![1, 5]));
        assert_eq!(merge_best((0, vec![]), (0, vec![])), (0, vec![]));
    }

    #[test]
    fn approach_names() {
        assert_eq!(Approach::Sequential.name(), "sequential");
        assert_eq!(Approach::OpenMp.name(), "OpenMP");
        assert_eq!(Approach::CxxThreads.name(), "C++11 threads");
    }
}
